//! Cross-implementation equivalence: six implementations of the same
//! dictionary contract — sequential, Solution 1, Solution 2, global-lock,
//! the B-link tree, and the distributed cluster — replay one operation
//! tape and must agree on every single outcome.

use std::time::Duration;

use ceh_btree::{BLinkTree, BLinkTreeConfig};
use ceh_core::{ConcurrentHashFile, GlobalLockFile, Solution1, Solution2};
use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::LatencyModel;
use ceh_sequential::SequentialHashFile;
use ceh_types::{DeleteOutcome, HashFileConfig, InsertOutcome, Key, Value};
use ceh_workload::{KeyDist, Op, OpMix, WorkloadGen};

/// A uniform facade over every implementation.
enum Impl {
    Seq(SequentialHashFile),
    S1(Solution1),
    S2(Solution2),
    Global(GlobalLockFile),
    BTree(BLinkTree),
    Dist(Cluster, ceh_dist::DistClient),
}

impl Impl {
    fn name(&self) -> &'static str {
        match self {
            Impl::Seq(_) => "sequential",
            Impl::S1(_) => "solution1",
            Impl::S2(_) => "solution2",
            Impl::Global(_) => "global-lock",
            Impl::BTree(_) => "blink-tree",
            Impl::Dist(..) => "distributed",
        }
    }

    fn find(&self, k: Key) -> Option<Value> {
        match self {
            Impl::Seq(f) => f.find(k).unwrap(),
            Impl::S1(f) => f.find(k).unwrap(),
            Impl::S2(f) => f.find(k).unwrap(),
            Impl::Global(f) => f.find(k).unwrap(),
            Impl::BTree(f) => f.find(k).unwrap(),
            Impl::Dist(_, c) => c.find(k).unwrap(),
        }
    }

    fn insert(&mut self, k: Key, v: Value) -> InsertOutcome {
        match self {
            Impl::Seq(f) => f.insert(k, v).unwrap(),
            Impl::S1(f) => f.insert(k, v).unwrap(),
            Impl::S2(f) => f.insert(k, v).unwrap(),
            Impl::Global(f) => f.insert(k, v).unwrap(),
            Impl::BTree(f) => f.insert(k, v).unwrap(),
            Impl::Dist(_, c) => c.insert(k, v).unwrap(),
        }
    }

    fn delete(&mut self, k: Key) -> DeleteOutcome {
        match self {
            Impl::Seq(f) => f.delete(k).unwrap(),
            Impl::S1(f) => f.delete(k).unwrap(),
            Impl::S2(f) => f.delete(k).unwrap(),
            Impl::Global(f) => f.delete(k).unwrap(),
            Impl::BTree(f) => f.delete(k).unwrap(),
            Impl::Dist(_, c) => c.delete(k).unwrap(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Impl::Seq(f) => f.len(),
            Impl::S1(f) => ConcurrentHashFile::len(f),
            Impl::S2(f) => ConcurrentHashFile::len(f),
            Impl::Global(f) => ConcurrentHashFile::len(f),
            Impl::BTree(f) => f.len(),
            Impl::Dist(c, _) => {
                assert!(c.quiesce(Duration::from_secs(20)));
                c.total_records().unwrap()
            }
        }
    }
}

fn all_impls() -> Vec<Impl> {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(3);
    let cluster = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: cfg.clone(),
        page_quota: Some(10),
        latency: LatencyModel::none(),
        data_dir: None,
        ..Default::default()
    })
    .unwrap();
    let client = cluster.client();
    vec![
        Impl::Seq(SequentialHashFile::new(cfg.clone()).unwrap()),
        Impl::S1(Solution1::new(cfg.clone()).unwrap()),
        Impl::S2(Solution2::new(cfg.clone()).unwrap()),
        Impl::Global(GlobalLockFile::new(cfg).unwrap()),
        Impl::BTree(BLinkTree::new(BLinkTreeConfig { fanout: 6 })),
        Impl::Dist(cluster, client),
    ]
}

#[test]
fn one_tape_six_implementations() {
    let mut impls = all_impls();
    let mut gen = WorkloadGen::new(0x7A9E, KeyDist::Uniform, 80, OpMix::BALANCED);
    for (step, op) in gen.batch(1200).into_iter().enumerate() {
        match op {
            Op::Find(k) => {
                let expected = impls[0].find(k);
                for i in impls.iter().skip(1) {
                    assert_eq!(
                        i.find(k),
                        expected,
                        "step {step}: find {k:?} on {}",
                        i.name()
                    );
                }
            }
            Op::Insert(k, v) => {
                let expected = impls[0].insert(k, v);
                for i in impls.iter_mut().skip(1) {
                    let name = i.name();
                    assert_eq!(
                        i.insert(k, v),
                        expected,
                        "step {step}: insert {k:?} on {name}"
                    );
                }
            }
            Op::Delete(k) => {
                let expected = impls[0].delete(k);
                for i in impls.iter_mut().skip(1) {
                    let name = i.name();
                    assert_eq!(i.delete(k), expected, "step {step}: delete {k:?} on {name}");
                }
            }
        }
    }
    let expected_len = impls[0].len();
    for i in impls.iter().skip(1) {
        assert_eq!(i.len(), expected_len, "final size on {}", i.name());
    }
    // Tear the cluster down cleanly.
    for i in impls {
        if let Impl::Dist(c, client) = i {
            drop(client);
            c.shutdown();
        }
    }
}

#[test]
fn grow_only_tape_all_agree() {
    let mut impls = all_impls();
    for k in 0..200u64 {
        let v = Value(k * 7);
        let expected = impls[0].insert(Key(k), v);
        assert_eq!(expected, InsertOutcome::Inserted);
        for i in impls.iter_mut().skip(1) {
            let name = i.name();
            assert_eq!(i.insert(Key(k), v), expected, "{name}");
        }
    }
    for k in 0..200u64 {
        let expected = impls[0].find(Key(k));
        assert_eq!(expected, Some(Value(k * 7)));
        for i in impls.iter().skip(1) {
            assert_eq!(i.find(Key(k)), expected, "{}", i.name());
        }
    }
    for i in impls {
        if let Impl::Dist(c, client) = i {
            drop(client);
            c.shutdown();
        }
    }
}
