//! Distributed end-to-end scenarios, including the Figure 10 structural
//! properties (prev links, versions, replica convergence) and the §3
//! garbage-collection safety argument.

use std::sync::Arc;
use std::time::Duration;

use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::LatencyModel;
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, HashFileConfig, Key, Value};

/// Figure 10's structure: replicated directories whose entry versions
/// match the buckets they point to, and buckets carrying `prev` links to
/// the bucket they split from.
#[test]
fn figure10_distributed_structure() {
    let c = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: HashFileConfig::tiny().with_bucket_capacity(3),
        page_quota: Some(6),
        latency: LatencyModel::none(),
        data_dir: None,
        ..Default::default()
    })
    .unwrap();
    let client = c.client();
    for k in 0..120u64 {
        client.insert(Key(k), Value(k)).unwrap();
    }
    assert!(c.quiesce(Duration::from_secs(20)));
    assert!(
        c.replicas_converged(),
        "both directory copies identical at rest"
    );

    let statuses = c.dir_statuses();
    assert_eq!(statuses.len(), 2);
    assert!(statuses[0].depth >= 3, "120 keys / capacity 3 needs depth");

    // "The version number in each directory entry should match the
    // version of the bucket it points to when the directory is
    // completely up to date." — we verify via a find per entry group and
    // by decoding the sites' pages directly through the cluster's
    // accessors: every tombstone collected, every record reachable.
    assert_eq!(c.tombstone_count().unwrap(), 0);
    assert_eq!(c.total_records().unwrap(), 120);
    for k in 0..120u64 {
        assert_eq!(client.find(Key(k)).unwrap(), Some(Value(k)), "key {k}");
    }

    // Buckets spread over both sites (the quota forces remote splits),
    // and next/prev links cross sites — Figure 10's inter-manager arrows.
    let pages = c.pages_per_site();
    assert!(
        pages.iter().all(|&p| p > 0),
        "both sites hold buckets: {pages:?}"
    );
    c.check_invariants().unwrap();
    c.shutdown();
}

/// Directory-entry versions equal bucket versions at quiescence.
#[test]
fn entry_versions_match_bucket_versions() {
    let c = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 1,
        file: HashFileConfig::tiny(),
        page_quota: None,
        latency: LatencyModel::none(),
        data_dir: None,
        ..Default::default()
    })
    .unwrap();
    let client = c.client();
    for k in 0..80u64 {
        client.insert(Key(k), Value(k)).unwrap();
    }
    for k in 0..40u64 {
        client.delete(Key(k)).unwrap();
    }
    assert!(c.quiesce(Duration::from_secs(20)));
    assert!(c.replicas_converged());
    c.check_invariants().unwrap();

    // Re-drive every surviving key and make sure no wrongbucket
    // recovery is needed any more: fully-applied replicas route exactly.
    let before = c.msg_stats();
    for k in 40..80u64 {
        assert_eq!(client.find(Key(k)).unwrap(), Some(Value(k)));
    }
    let after = c.msg_stats();
    assert_eq!(
        after.get("wrongbucket"),
        before.get("wrongbucket"),
        "an up-to-date directory never misroutes"
    );
    c.shutdown();
}

/// The §3 GC safety story: garbage pages are deallocated only after all
/// replicas ack, so no request ever faults on a reclaimed page — even
/// with replicas that lag behind under jitter.
#[test]
fn garbage_collection_is_safe_under_jitter_and_churn() {
    let c = Arc::new(
        Cluster::start(ClusterConfig {
            dir_managers: 3,
            bucket_managers: 2,
            file: HashFileConfig::tiny(),
            page_quota: None,
            latency: LatencyModel::jittered(
                Duration::from_micros(50),
                Duration::from_micros(400),
                99,
            ),
            data_dir: None,
            ..Default::default()
        })
        .unwrap(),
    );
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let client = c.client();
                // Churn hard on a small key range: splits and merges of
                // the same buckets race each other's copyupdates.
                for i in 0..400u64 {
                    let k = (i % 16) * 4 + t;
                    if i % 2 == 0 {
                        client.insert(Key(k), Value(i)).unwrap();
                    } else {
                        client.delete(Key(k)).unwrap();
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    assert!(c.quiesce(Duration::from_secs(30)));
    assert!(c.replicas_converged());
    c.check_invariants().unwrap();
    assert_eq!(c.tombstone_count().unwrap(), 0, "all garbage collected");
    match Arc::try_unwrap(c) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("workers joined"),
    }
}

/// Stale directories still route correctly: a replica that has not yet
/// heard about a split serves requests via wrongbucket forwarding and
/// next-link recovery ("obsolete directory entries … always point to a
/// bucket from which the correct bucket is reachable via next links").
#[test]
fn stale_replicas_recover_via_next_links() {
    let c = Cluster::start(ClusterConfig {
        dir_managers: 3,
        bucket_managers: 2,
        file: HashFileConfig::tiny(),
        page_quota: Some(4),
        latency: LatencyModel::jittered(Duration::ZERO, Duration::from_millis(2), 5),
        data_dir: None,
        ..Default::default()
    })
    .unwrap();
    let client = c.client();
    // Insert and immediately read back through rotating replicas: with
    // 2ms jitter on copyupdates, many reads hit a stale replica.
    for k in 0..150u64 {
        client.insert(Key(k), Value(k + 1)).unwrap();
        assert_eq!(
            client.find(Key(k)).unwrap(),
            Some(Value(k + 1)),
            "read-your-write {k}"
        );
    }
    assert!(c.quiesce(Duration::from_secs(30)));
    c.check_invariants().unwrap();
    c.shutdown();
}

/// Deterministic routing sanity: the same pseudokey computation drives
/// both the directory managers and the bucket slaves, so every key is
/// found where its low bits say.
#[test]
fn pseudokey_routing_is_consistent() {
    let c = Cluster::start(ClusterConfig::default()).unwrap();
    let client = c.client();
    let keys: Vec<Key> = (0..64u64).map(Key).collect();
    for &k in &keys {
        client.insert(k, Value(hash_key(k).0)).unwrap();
    }
    for &k in &keys {
        assert_eq!(client.find(k).unwrap(), Some(Value(hash_key(k).0)));
    }
    assert!(c.quiesce(Duration::from_secs(20)));

    // Structural sanity at each site: every non-deleted bucket's records
    // match its commonbits (the distributed invariant mirror).
    // (Accessed through the public page/bucket codec only.)
    assert!(c.total_records().unwrap() == 64);
    let _ = Bucket::capacity_for(128); // codec link sanity
    c.check_invariants().unwrap();
    c.shutdown();
}
