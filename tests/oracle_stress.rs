//! Oracle stress: concurrent runs whose surviving state must equal a
//! sequential replay.
//!
//! Threads own disjoint key slices, so the final key set is the union of
//! deterministic per-thread histories. We replay each history against the
//! sequential (Fagin 79) file — the oracle — and demand the concurrent
//! file agree key for key.

use std::sync::Arc;

use ceh_core::{invariants, ConcurrentHashFile, GlobalLockFile, Solution1, Solution2};
use ceh_sequential::SequentialHashFile;
use ceh_types::{HashFileConfig, Key, Value};
use ceh_workload::{KeyDist, Op, OpMix, WorkloadGen};

const THREADS: u64 = 8;
const OPS: usize = 3000;

/// Generate thread `t`'s deterministic op stream, with keys striped so
/// threads never collide.
fn thread_ops(t: u64, mix: OpMix) -> Vec<Op> {
    let mut gen = WorkloadGen::new(0x0AC1E + t, KeyDist::Uniform, 48, mix);
    gen.batch(OPS)
        .into_iter()
        .map(|op| match op {
            Op::Find(k) => Op::Find(stripe(k, t)),
            Op::Insert(k, v) => Op::Insert(stripe(k, t), v),
            Op::Delete(k) => Op::Delete(stripe(k, t)),
        })
        .collect()
}

fn stripe(k: Key, t: u64) -> Key {
    Key(k.0 * THREADS + t)
}

fn run_concurrently<F: ConcurrentHashFile + 'static>(file: &Arc<F>, mix: OpMix) {
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let file = Arc::clone(file);
            std::thread::spawn(move || {
                for op in thread_ops(t, mix) {
                    match op {
                        Op::Find(k) => {
                            file.find(k).unwrap();
                        }
                        Op::Insert(k, v) => {
                            file.insert(k, v).unwrap();
                        }
                        Op::Delete(k) => {
                            file.delete(k).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// The oracle: replay every thread's stream sequentially (interleaving
/// across threads is irrelevant because key slices are disjoint).
fn oracle(mix: OpMix) -> SequentialHashFile {
    let mut file = SequentialHashFile::new(HashFileConfig::tiny()).unwrap();
    for t in 0..THREADS {
        for op in thread_ops(t, mix) {
            match op {
                Op::Find(_) => {}
                Op::Insert(k, v) => {
                    file.insert(k, v).unwrap();
                }
                Op::Delete(k) => {
                    file.delete(k).unwrap();
                }
            }
        }
    }
    file
}

fn compare<F: ConcurrentHashFile>(file: &F, oracle: &SequentialHashFile) {
    assert_eq!(file.len(), oracle.len(), "{}: record count", file.name());
    let snap = oracle.snapshot().unwrap();
    for key in snap.all_keys() {
        let expect = oracle.find(key).unwrap();
        assert_eq!(
            file.find(key).unwrap(),
            expect,
            "{}: key {key:?}",
            file.name()
        );
    }
    // And nothing extra: spot-check absent keys.
    for k in 0..(48 * THREADS) {
        let key = Key(k);
        assert_eq!(
            file.find(key).unwrap(),
            oracle.find(key).unwrap(),
            "{}: key {k}",
            file.name()
        );
    }
}

#[test]
fn solution1_matches_oracle_balanced() {
    let mix = OpMix::BALANCED;
    let f = Arc::new(Solution1::new(HashFileConfig::tiny()).unwrap());
    run_concurrently(&f, mix);
    let oracle = oracle(mix);
    compare(&*f, &oracle);
    invariants::check_concurrent_file(f.core()).unwrap();
}

#[test]
fn solution2_matches_oracle_balanced() {
    let mix = OpMix::BALANCED;
    let f = Arc::new(Solution2::new(HashFileConfig::tiny()).unwrap());
    run_concurrently(&f, mix);
    let oracle = oracle(mix);
    compare(&*f, &oracle);
    invariants::check_concurrent_file(f.core()).unwrap();
}

#[test]
fn solution2_matches_oracle_churn() {
    let mix = OpMix::CHURN;
    let f = Arc::new(Solution2::new(HashFileConfig::tiny()).unwrap());
    run_concurrently(&f, mix);
    let oracle = oracle(mix);
    compare(&*f, &oracle);
    invariants::check_concurrent_file(f.core()).unwrap();
}

#[test]
fn global_lock_matches_oracle_balanced() {
    let mix = OpMix::BALANCED;
    let f = Arc::new(GlobalLockFile::new(HashFileConfig::tiny()).unwrap());
    run_concurrently(&f, mix);
    let oracle = oracle(mix);
    compare(&*f, &oracle);
    f.with_inner(|inner| inner.check_invariants()).unwrap();
}

#[test]
fn all_three_agree_with_each_other() {
    let mix = OpMix::UPDATE_HEAVY;
    let s1 = Arc::new(Solution1::new(HashFileConfig::tiny()).unwrap());
    let s2 = Arc::new(Solution2::new(HashFileConfig::tiny()).unwrap());
    let gl = Arc::new(GlobalLockFile::new(HashFileConfig::tiny()).unwrap());
    run_concurrently(&s1, mix);
    run_concurrently(&s2, mix);
    run_concurrently(&gl, mix);
    assert_eq!(s1.len(), s2.len());
    assert_eq!(s2.len(), gl.len());
    for k in 0..(48 * THREADS) {
        let key = Key(k);
        let a = s1.find(key).unwrap();
        assert_eq!(a, s2.find(key).unwrap(), "key {k}");
        assert_eq!(a, gl.find(key).unwrap(), "key {k}");
    }
}

#[test]
fn values_are_never_torn() {
    // Each key's value is a function of the key; any torn read or
    // misfiled record would surface as a mismatched value.
    let f = Arc::new(Solution2::new(HashFileConfig::tiny()).unwrap());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let k = (i % 64) * THREADS + t;
                    match i % 3 {
                        0 => {
                            f.insert(Key(k), Value(k.wrapping_mul(0x5DEECE66D)))
                                .unwrap();
                        }
                        1 => {
                            if let Some(v) = f.find(Key(k)).unwrap() {
                                assert_eq!(v.0, k.wrapping_mul(0x5DEECE66D), "torn value for {k}");
                            }
                        }
                        _ => {
                            f.delete(Key(k)).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    invariants::check_concurrent_file(f.core()).unwrap();
}
