//! Golden tests reproducing the paper's structure figures (1–4).
//!
//! All use the identity pseudokey function so keys land exactly where the
//! paper's binary-suffix examples place them, and tiny buckets so the
//! depicted splits/merges fire at the depicted moments.

use std::sync::Arc;

use ceh_core::{invariants, ConcurrentHashFile, FileCore, Solution1, Solution2};
use ceh_locks::LockManager;
use ceh_sequential::SequentialHashFile;
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{identity_pseudokey, HashFileConfig, Key, PageId, Value};

fn seq_file(capacity: usize) -> SequentialHashFile {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(capacity);
    let store = PageStore::new_shared(PageStoreConfig {
        page_size: Bucket::page_size_for(capacity),
        ..Default::default()
    });
    SequentialHashFile::with_store(cfg, store, identity_pseudokey).unwrap()
}

fn concurrent_core(capacity: usize) -> FileCore {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(capacity);
    let store = PageStore::new_shared(PageStoreConfig {
        page_size: Bucket::page_size_for(capacity),
        ..Default::default()
    });
    FileCore::with_parts(
        cfg,
        store,
        Arc::new(LockManager::default()),
        identity_pseudokey,
    )
    .unwrap()
}

/// Figure 1: a depth-2 sequential file. "The i-th entry points to the
/// bucket that holds all the records whose pseudokeys end in the
/// [depth]-bit binary representation of i."
#[test]
fn figure1_sequential_layout() {
    let mut f = seq_file(3);
    for k in [0b000u64, 0b100, 0b010, 0b001, 0b101, 0b011, 0b111, 0b110] {
        f.insert(Key(k), Value(k)).unwrap();
    }
    let snap = f.snapshot().unwrap();
    assert_eq!(snap.depth, 2);
    assert_eq!(snap.entries.len(), 4);
    // Every directory entry points at a bucket whose records all share
    // the entry's low bits — the figure's defining property.
    for (i, page) in snap.entries.iter().enumerate() {
        let b = &snap.buckets[page];
        for r in &b.records {
            assert_eq!(
                r.key.0 & ceh_types::mask(snap.depth),
                i as u64,
                "key {:?} filed under entry {i:02b}",
                r.key
            );
        }
    }
    // The paper's worked find: pseudokey "...101" at depth 2 uses suffix
    // "01" and lands in that bucket.
    assert_eq!(f.find(Key(0b101)).unwrap(), Some(Value(0b101)));
    f.check_invariants().unwrap();
}

/// Figure 2: the caption's update sequence — an insert that splits a
/// full bucket at full depth doubles the directory; deleting down to a
/// lone record merges partners and halves it back.
#[test]
fn figure2_update_sequence() {
    let mut f = seq_file(2);
    // Depth 0 → inserts force splits up to depth 2.
    for k in [0b00u64, 0b10, 0b01, 0b11] {
        f.insert(Key(k), Value(k)).unwrap();
    }
    let d0 = f.depth();
    assert!(d0 >= 1);

    // Insert two more keys with suffix 00: the 00-bucket fills and
    // splits; when its localdepth equals the directory depth, the
    // directory doubles first.
    let before = f.depth();
    f.insert(Key(0b100), Value(4)).unwrap();
    f.insert(Key(0b1000), Value(8)).unwrap();
    assert!(
        f.depth() >= before,
        "splitting at full depth may not shrink the directory"
    );
    f.check_invariants().unwrap();

    // Delete back down: every deletion that empties a bucket merges it
    // with its partner; when no bucket remains at full depth the
    // directory halves.
    let peak = f.depth();
    for k in [0b1000u64, 0b100, 0b00, 0b10, 0b01, 0b11] {
        f.delete(Key(k)).unwrap();
        f.check_invariants().unwrap();
    }
    assert!(f.is_empty());
    assert!(f.depth() < peak, "deletes must have halved the directory");
}

/// Figure 3: the concurrent structure — same buckets as Figure 1 plus
/// `next` links threading every bucket into one chain.
#[test]
fn figure3_concurrent_structure_next_links() {
    let file = Solution1::from_core(concurrent_core(3));
    for k in [0b000u64, 0b100, 0b010, 0b001, 0b101, 0b011, 0b111, 0b110] {
        file.insert(Key(k), Value(k)).unwrap();
    }
    let snap = invariants::snapshot_core(file.core()).unwrap();
    assert_eq!(snap.depth, 2);

    // Walk the chain from the 00-bucket: it must visit all four buckets
    // in bit-reversed commonbits order (00 → 10 → 01 → 11) and end with
    // a null next — exactly Figure 3's arrows.
    let mut order = Vec::new();
    let mut page = snap.entries[0];
    loop {
        let b = &snap.buckets[&page];
        order.push(b.commonbits);
        if b.next.is_null() {
            break;
        }
        page = b.next;
    }
    assert_eq!(order, vec![0b00, 0b10, 0b01, 0b11]);
    invariants::check_concurrent_file(file.core()).unwrap();
}

/// Figure 4: "when a bucket splits, the next link of the original bucket
/// is reassigned to point to the newly created bucket. The new bucket
/// gets the original bucket's old next pointer."
#[test]
fn figure4_split_relinks_chain() {
    let file = Solution2::from_core(concurrent_core(2));
    for k in [0b00u64, 0b10, 0b01, 0b11] {
        file.insert(Key(k), Value(k)).unwrap();
    }
    let before = invariants::snapshot_core(file.core()).unwrap();
    let target_page: PageId = before.entries[0];
    let old_next = before.buckets[&target_page].next;
    let old_ld = before.buckets[&target_page].localdepth;

    // Split the 0…0 bucket by overfilling it.
    let mut k = 0b100u64;
    let splits0 = file.core().stats().snapshot().splits;
    while file.core().stats().snapshot().splits == splits0 {
        file.insert(Key(k), Value(k)).unwrap();
        k += 0b1000;
    }

    let after = invariants::snapshot_core(file.core()).unwrap();
    let b = &after.buckets[&target_page];
    assert_eq!(b.localdepth, old_ld + 1, "split deepened the bucket");
    let new_page = b.next;
    assert_ne!(
        new_page, old_next,
        "next reassigned to the newly created bucket"
    );
    let new_bucket = &after.buckets[&new_page];
    assert_eq!(
        new_bucket.next, old_next,
        "new bucket inherited the old next pointer"
    );
    assert_eq!(
        new_bucket.commonbits,
        b.commonbits | ceh_types::partner_bit(b.localdepth),
        "new bucket is the '1' partner"
    );
    invariants::check_concurrent_file(file.core()).unwrap();
}

/// The paper's recovery narrative made concrete: a reader that captured a
/// bucket pointer *before* a split still finds its key afterwards by
/// chasing `next` (the commonbits test routes it).
#[test]
fn wrong_bucket_recovery_after_split() {
    let file = Solution2::from_core(concurrent_core(2));
    for k in [0b00u64, 0b10] {
        file.insert(Key(k), Value(k)).unwrap();
    }
    // Key 0b110 will live in the "1" half once the 0-bucket splits.
    file.insert(Key(0b110), Value(6)).unwrap();
    // Force enough splits that early directory snapshots would misroute.
    for k in [0b100u64, 0b1000, 0b1100, 0b10000] {
        file.insert(Key(k), Value(k)).unwrap();
    }
    assert_eq!(file.find(Key(0b110)).unwrap(), Some(Value(6)));
    invariants::check_concurrent_file(file.core()).unwrap();
}
