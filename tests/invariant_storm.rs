//! Invariant storms: randomized mixed workloads over every configuration
//! axis (implementation × bucket capacity × merge threshold × key
//! distribution), with the full structural invariant sweep at quiescence.

use std::sync::Arc;

use ceh_core::{invariants, ConcurrentHashFile, Solution1, Solution1Options, Solution2};
use ceh_types::{HashFileConfig, Key, Value};
use ceh_workload::{KeyDist, Op, OpMix, WorkloadGen};

fn storm<F: ConcurrentHashFile + 'static>(
    file: Arc<F>,
    threads: u64,
    ops: usize,
    dist: KeyDist,
    mix: OpMix,
    seed: u64,
) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let file = Arc::clone(&file);
            std::thread::spawn(move || {
                let mut gen = WorkloadGen::new(seed + t, dist, 256, mix);
                for _ in 0..ops {
                    match gen.next_op() {
                        Op::Find(k) => {
                            file.find(k).unwrap();
                        }
                        Op::Insert(k, v) => {
                            file.insert(k, v).unwrap();
                        }
                        Op::Delete(k) => {
                            file.delete(k).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn storm_matrix_solution1() {
    for (cap, thr) in [(2usize, 0usize), (4, 1), (8, 2)] {
        for dist in [KeyDist::Uniform, KeyDist::Zipf { theta: 0.9 }] {
            let cfg = HashFileConfig::tiny()
                .with_bucket_capacity(cap)
                .with_merge_threshold(thr);
            let f = Arc::new(Solution1::new(cfg).unwrap());
            storm(
                Arc::clone(&f),
                6,
                1200,
                dist,
                OpMix::BALANCED,
                0x100 + cap as u64,
            );
            invariants::check_concurrent_file(f.core())
                .unwrap_or_else(|e| panic!("cap {cap} thr {thr} {dist:?}: {e}"));
        }
    }
}

#[test]
fn storm_matrix_solution2() {
    for (cap, thr) in [(2usize, 0usize), (4, 1), (8, 2)] {
        for dist in [KeyDist::Uniform, KeyDist::Zipf { theta: 0.9 }] {
            let cfg = HashFileConfig::tiny()
                .with_bucket_capacity(cap)
                .with_merge_threshold(thr);
            let f = Arc::new(Solution2::new(cfg).unwrap());
            storm(
                Arc::clone(&f),
                6,
                1200,
                dist,
                OpMix::BALANCED,
                0x200 + cap as u64,
            );
            invariants::check_concurrent_file(f.core())
                .unwrap_or_else(|e| panic!("cap {cap} thr {thr} {dist:?}: {e}"));
        }
    }
}

#[test]
fn storm_update_heavy_churn() {
    for mix in [OpMix::UPDATE_HEAVY, OpMix::CHURN] {
        let f = Arc::new(Solution2::new(HashFileConfig::tiny()).unwrap());
        storm(Arc::clone(&f), 8, 1500, KeyDist::Uniform, mix, 0x300);
        invariants::check_concurrent_file(f.core()).unwrap();
        let s = f.core().stats().snapshot();
        assert!(s.splits > 0, "churn must split");
        assert!(s.merges > 0, "churn must merge");
    }
}

#[test]
fn storm_pessimistic_find_variant() {
    let f = Arc::new(
        Solution1::with_options(
            HashFileConfig::tiny(),
            Solution1Options {
                pessimistic_find: true,
            },
        )
        .unwrap(),
    );
    storm(
        Arc::clone(&f),
        6,
        1000,
        KeyDist::Uniform,
        OpMix::BALANCED,
        0x400,
    );
    invariants::check_concurrent_file(f.core()).unwrap();
    let s = f.core().stats().snapshot();
    assert_eq!(
        s.wrong_bucket_recoveries, 0,
        "holding the directory ρ-lock precludes wrong buckets for readers"
    );
}

#[test]
fn storm_sequential_keys_exercise_hash_avalanche() {
    let f = Arc::new(Solution2::new(HashFileConfig::tiny()).unwrap());
    storm(
        Arc::clone(&f),
        4,
        2000,
        KeyDist::Sequential,
        OpMix::READ_MOSTLY,
        0x500,
    );
    invariants::check_concurrent_file(f.core()).unwrap();
    // Sequential keys must still spread across many buckets.
    let snap = invariants::snapshot_core(f.core()).unwrap();
    if f.len() > 32 {
        assert!(snap.bucket_count() > 4, "hash must spread sequential keys");
    }
}

#[test]
fn repeated_grow_shrink_cycles_reach_a_steady_state() {
    // The paper's merging is deletion-triggered, so emptied buckets whose
    // partners were deeper at their last delete legitimately persist
    // (nothing ever deletes from them again). What must NOT happen is
    // unbounded growth across grow/shrink cycles: merges and halving
    // keep the structure's footprint at a steady state.
    let f = Solution2::new(HashFileConfig::tiny()).unwrap();
    let mut pages_after_round = Vec::new();
    for round in 0..10u64 {
        for k in 0..150u64 {
            f.insert(Key(k * 10 + round), Value(k)).unwrap();
        }
        for k in 0..150u64 {
            f.delete(Key(k * 10 + round)).unwrap();
        }
        invariants::check_concurrent_file(f.core()).unwrap();
        pages_after_round.push(f.core().store().allocated_pages());
    }
    assert!(f.is_empty());
    let first = pages_after_round[0];
    let last = *pages_after_round.last().unwrap();
    assert!(
        last <= first * 3 + 8,
        "page footprint must reach a steady state, not grow every cycle: {pages_after_round:?}"
    );
    let s = f.core().stats().snapshot();
    assert!(
        s.merges > 0 && s.halvings > 0,
        "shrinking must actually merge and halve: {s:?}"
    );
}
