//! Chaos tests: the distributed hash file under seeded fault injection.
//!
//! The paper assumes reliable delivery ("the network is assumed to be
//! perfectly reliable", §3); these tests drop that assumption and check
//! the end-to-end resilience plane of DESIGN.md — client retry/failover,
//! request idempotence, acked replication, crash/restart of a bucket
//! manager — against an exact oracle:
//!
//! * every client operation eventually succeeds (at-least-once, with
//!   `Inserted|AlreadyPresent` ≡ present and `Deleted|NotFound` ≡ absent);
//! * after the faults are healed and the cluster quiesces, the record
//!   count matches the oracle exactly (nothing lost, nothing applied
//!   twice), the replicas have converged, garbage collection has drained
//!   every tombstone, and the full structural invariants hold;
//! * the fault plane itself is deterministic: the same seed produces the
//!   same drop/duplication pattern.
//!
//! `CEH_QUICK=1` shrinks the workload for CI smoke runs.

use std::collections::HashMap;
use std::time::Duration;

use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::{FaultPlan, LatencyModel};
use ceh_types::{HashFileConfig, Key, RetryPolicy, Value};

fn quick() -> bool {
    std::env::var("CEH_QUICK").is_ok_and(|v| v == "1")
}

/// Message classes the resilience plane makes safe to lose or duplicate:
/// the client request/reply path (retry + dedupe), bucket operations and
/// their completions (re-driven by the directory manager, idempotent at
/// the bucket), and the acked replication/garbage traffic. The intra-split
/// and intra-merge handshakes are excluded: those messages report work
/// already done on disk, and losing them is survived via the slave
/// timeout path, which these tests exercise through crashes instead.
const FAULTABLE: &[&str] = &[
    "request",
    "user-reply",
    "find",
    "insert",
    "delete",
    "bucketdone",
    "copyupdate",
    "copy-ack",
    "garbagecollect",
    "gc-ack",
];

#[test]
fn seeded_faults_with_crash_and_restart_converge_exactly() {
    let ops_per_client: u64 = if quick() { 150 } else { 900 };
    let clients: u64 = 6; // 6 × 900 = 5400 ops in the full run
    let mut cluster = Cluster::start(ClusterConfig {
        dir_managers: 3,
        bucket_managers: 3,
        file: HashFileConfig::tiny().with_bucket_capacity(8),
        page_quota: Some(16), // spread buckets so the crashed site matters
        latency: LatencyModel::none(),
        data_dir: None,
        faults: Some(
            FaultPlan::new(0xCE11_0001)
                .drop_classes(FAULTABLE, 0.05)
                .duplicate_classes(FAULTABLE, 0.01),
        ),
        // Generous attempt budget: an op must survive drops *and* the
        // crash window. Short per-attempt timeouts keep retries cheap.
        retry: RetryPolicy {
            attempts: 80,
            timeout_ms: 150,
            base_backoff_ms: 1,
            max_backoff_ms: 10,
        },
        resend_ms: 100,
        reply_timeout_ms: 2_000,
        durable: false,
        backend: Default::default(),
    })
    .unwrap();

    let handles: Vec<_> = (0..clients)
        .map(|t| {
            let client = cluster.client();
            std::thread::spawn(move || {
                // Disjoint key ranges per client: each thread is the only
                // writer of its keys, so its local model is exact.
                let mut model: HashMap<u64, u64> = HashMap::new();
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xC4A0 + t);
                for i in 0..ops_per_client {
                    let k = rng.random_range(0..64u64) * clients + t;
                    match rng.random_range(0..4) {
                        0 | 1 => {
                            // At-least-once: a retried insert whose first
                            // attempt landed reports AlreadyPresent.
                            client
                                .insert(Key(k), Value(i))
                                .unwrap_or_else(|e| panic!("client {t} insert {k} (op {i}): {e}"));
                            model.entry(k).or_insert(i);
                        }
                        2 => {
                            client
                                .delete(Key(k))
                                .unwrap_or_else(|e| panic!("client {t} delete {k} (op {i}): {e}"));
                            model.remove(&k);
                        }
                        _ => {
                            let got = client
                                .find(Key(k))
                                .unwrap_or_else(|e| panic!("client {t} find {k} (op {i}): {e}"))
                                .map(|v| v.0);
                            assert_eq!(got, model.get(&k).copied(), "client {t} find {k}");
                        }
                    }
                }
                model.len()
            })
        })
        .collect();

    // Mid-run: kill bucket manager 1 at a message boundary, let the
    // cluster limp (requests to it stall and are re-driven), then bring
    // it back over the surviving site state.
    std::thread::sleep(Duration::from_millis(if quick() { 60 } else { 200 }));
    assert!(cluster.crash_site(1), "site 1 must have been up");
    assert!(!cluster.crash_site(1), "double-crash is a no-op");
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        cluster.restart_site(1).unwrap(),
        "site 1 must have been down"
    );
    assert!(
        !cluster.restart_site(1).unwrap(),
        "double-restart is a no-op"
    );

    let expected: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();

    // Heal the network and drain: every unacked copyupdate / collection
    // gets through, then the cluster must be exactly consistent.
    cluster.net().set_fault_plan(None);
    assert!(
        cluster.quiesce(Duration::from_secs(60)),
        "cluster must drain after healing"
    );
    assert!(
        cluster.replicas_converged(),
        "replicas must agree at quiescence"
    );
    assert_eq!(
        cluster.total_records().unwrap(),
        expected,
        "no insert lost, none double-applied"
    );
    assert_eq!(
        cluster.tombstone_count().unwrap(),
        0,
        "garbage collection must drain"
    );
    cluster.check_invariants().unwrap();

    let stats = cluster.msg_stats();
    assert!(
        stats.dropped_total() > 0,
        "the fault plan must actually have dropped messages"
    );
    assert!(stats.duplicated_total() > 0, "and duplicated some");
    cluster.shutdown();
}

/// One run of a deterministic workload: a single sequential client, one
/// directory manager, one site, no latency, dropping only the
/// `user-reply` class. Message order is then fully determined, so the
/// per-class fault counters must reproduce exactly for the same seed.
fn reply_drop_run(seed: u64, ops: u64) -> (u64, u64, u64) {
    let cluster = Cluster::start(ClusterConfig {
        dir_managers: 1,
        bucket_managers: 1,
        file: HashFileConfig::tiny().with_bucket_capacity(8),
        page_quota: None,
        latency: LatencyModel::none(),
        data_dir: None,
        faults: Some(FaultPlan::new(seed).drop_class("user-reply", 0.2)),
        retry: RetryPolicy {
            attempts: 40,
            timeout_ms: 50,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
        },
        resend_ms: 60_000, // timers quiet: the only retries are the client's
        reply_timeout_ms: 30_000,
        durable: false,
        backend: Default::default(),
    })
    .unwrap();
    let client = cluster.client();
    for k in 0..ops {
        client.insert(Key(k), Value(k)).unwrap();
    }
    let stats = cluster.msg_stats();
    let out = (
        stats.get("user-reply"),
        stats.dropped("user-reply"),
        stats.duplicated("user-reply"),
    );
    // Post-quiesce quiescent sweep: no torn directory, no uncollected
    // tombstones, no leaked pages — even with replies being dropped.
    assert!(cluster.quiesce(Duration::from_secs(10)));
    cluster.check_invariants().unwrap();
    cluster.shutdown();
    out
}

#[test]
fn same_seed_reproduces_the_fault_schedule() {
    let ops = if quick() { 60 } else { 200 };
    let a = reply_drop_run(0x00DE_7E12, ops);
    let b = reply_drop_run(0x00DE_7E12, ops);
    assert_eq!(a, b, "same seed ⇒ same sent/dropped/duplicated counts");
    assert!(
        a.1 > 0,
        "a 20% drop rate over {ops} replies must drop something"
    );
    assert_eq!(a.2, 0, "no duplication configured");
    // The retry plane is visible in the totals: every dropped reply
    // forces a retried request answered from the dedupe cache.
    assert_eq!(
        a.0,
        ops + a.1,
        "each dropped reply costs exactly one re-reply"
    );
}

#[test]
fn crash_without_faults_recovers_in_place() {
    // Crash/restart in isolation (no message faults): ops routed at the
    // dead site stall, get re-driven, and complete after restart.
    let ops: u64 = if quick() { 120 } else { 400 };
    let mut cluster = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: HashFileConfig::tiny().with_bucket_capacity(4),
        page_quota: Some(8),
        latency: LatencyModel::none(),
        data_dir: None,
        faults: None,
        retry: RetryPolicy {
            attempts: 80,
            timeout_ms: 150,
            base_backoff_ms: 1,
            max_backoff_ms: 10,
        },
        resend_ms: 100,
        reply_timeout_ms: 1_000,
        durable: false,
        backend: Default::default(),
    })
    .unwrap();
    let client = cluster.client();
    for k in 0..ops / 2 {
        client.insert(Key(k), Value(k)).unwrap();
    }
    assert!(cluster.crash_site(1));
    let crash_probe = std::thread::spawn({
        let client = cluster.client();
        move || {
            // Keep operating while the site is down: every op must still
            // complete (re-driven until the restart lands).
            for k in ops / 2..ops {
                client.insert(Key(k), Value(k)).unwrap();
            }
        }
    });
    std::thread::sleep(Duration::from_millis(250));
    assert!(cluster.restart_site(1).unwrap());
    crash_probe.join().unwrap();
    for k in 0..ops {
        assert_eq!(
            client.find(Key(k)).unwrap(),
            Some(Value(k)),
            "find {k} after restart"
        );
    }
    assert!(cluster.quiesce(Duration::from_secs(30)));
    assert!(cluster.replicas_converged());
    assert_eq!(cluster.total_records().unwrap(), ops as usize);
    cluster.check_invariants().unwrap();
    cluster.shutdown();
}

#[test]
fn durable_crash_is_a_power_loss_and_restart_recovers_from_the_image() {
    // Durable sites: `crash_site` is a power cut, `restart_site` must
    // rebuild the site from its durable image alone. The test plants
    // junk directly in the crashed site's in-memory page cache
    // (bypassing the WAL, as a buffer that never reached disk would) and
    // asserts the restart both abandons that store object and scrubs the
    // junk — while every acked operation survives.
    let ops: u64 = if quick() { 120 } else { 400 };
    let mut cluster = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: HashFileConfig::tiny().with_bucket_capacity(4),
        page_quota: Some(8), // spread buckets onto the crash target
        latency: LatencyModel::none(),
        data_dir: None,
        faults: None,
        retry: RetryPolicy {
            attempts: 80,
            timeout_ms: 150,
            base_backoff_ms: 1,
            max_backoff_ms: 10,
        },
        resend_ms: 100,
        reply_timeout_ms: 1_000,
        durable: true,
        backend: Default::default(),
    })
    .unwrap();
    let client = cluster.client();
    for k in 0..ops / 2 {
        client.insert(Key(k), Value(k)).unwrap();
    }
    // Quiesce so no slave is mid-read when the cache is poisoned below.
    assert!(cluster.quiesce(Duration::from_secs(30)));

    let old_store = cluster.site_store(1);
    assert!(
        old_store.allocated_pages() > 0,
        "the quota must have spread buckets onto site 1"
    );
    // Volatile-only state: scribble over every cached page without
    // logging it. A durable restart must never see these bytes.
    {
        let junk = ceh_storage::PageBuf::from_bytes(
            vec![0xDEu8; old_store.page_size()].into_boxed_slice(),
        );
        for page in old_store.allocated_page_ids() {
            old_store.write(page, &junk).unwrap();
        }
    }
    assert!(cluster.crash_site(1), "site 1 must have been up");

    // Keep operating against the surviving site while 1 is dark.
    let crash_probe = std::thread::spawn({
        let client = cluster.client();
        move || {
            for k in ops / 2..ops {
                client.insert(Key(k), Value(k)).unwrap();
            }
        }
    });
    std::thread::sleep(Duration::from_millis(250));
    assert!(cluster.restart_site(1).unwrap(), "recovery must succeed");
    crash_probe.join().unwrap();

    let new_store = cluster.site_store(1);
    assert!(
        !std::sync::Arc::ptr_eq(&old_store, &new_store),
        "a durable restart must abandon the crashed site's in-memory store"
    );

    // Every acked operation survives the power cut; the junk does not.
    for k in 0..ops {
        assert_eq!(
            client.find(Key(k)).unwrap(),
            Some(Value(k)),
            "find {k} after power loss + recovery"
        );
    }
    // Post-restart deletes drive merges through the recovered WAL.
    for k in 0..ops / 4 {
        client.delete(Key(k)).unwrap();
    }
    assert!(cluster.quiesce(Duration::from_secs(30)));
    assert!(cluster.replicas_converged());
    assert_eq!(
        cluster.total_records().unwrap(),
        (ops - ops / 4) as usize,
        "acked ops exactly once across the crash"
    );
    assert_eq!(cluster.tombstone_count().unwrap(), 0);
    cluster.check_invariants().unwrap();
    cluster.shutdown();
}
