//! Durability tests: file-backed page stores and directory recovery.
//!
//! The directory is volatile by design — everything needed to rebuild it
//! (localdepth, commonbits, next links) is persisted inside the buckets.
//! These tests write through one store instance, drop it ("shut down"),
//! reopen the file, recover, and verify the index is intact — for the
//! sequential file, Solution 1, and Solution 2.

use std::sync::Arc;

use ceh_core::{invariants, ConcurrentHashFile, FileCore, Solution1, Solution2};
use ceh_locks::LockManager;
use ceh_sequential::SequentialHashFile;
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, DeleteOutcome, HashFileConfig, Key, Value};

fn temp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ceh-persist-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("index.ceh")
}

fn store_cfg(capacity: usize) -> PageStoreConfig {
    PageStoreConfig {
        page_size: Bucket::page_size_for(capacity),
        initial_pages: 0,
        ..Default::default()
    }
}

#[test]
fn sequential_file_survives_reopen() {
    let path = temp_path("seq");
    let cfg = HashFileConfig::tiny().with_bucket_capacity(4);

    // Session 1: build, mutate, drop.
    {
        let store = Arc::new(PageStore::create_file(&path, store_cfg(4)).unwrap());
        let mut f = SequentialHashFile::with_store(cfg.clone(), store, hash_key).unwrap();
        for k in 0..300u64 {
            f.insert(Key(k), Value(k * 5)).unwrap();
        }
        for k in 0..100u64 {
            assert_eq!(f.delete(Key(k)).unwrap(), DeleteOutcome::Deleted);
        }
        f.check_invariants().unwrap();
    }

    // Session 2: reopen and recover.
    let store = Arc::new(PageStore::open_file(&path, store_cfg(4)).unwrap());
    let f = SequentialHashFile::recover(cfg, store, hash_key).unwrap();
    assert_eq!(f.len(), 200);
    for k in 0..100u64 {
        assert_eq!(
            f.find(Key(k)).unwrap(),
            None,
            "deleted key {k} stayed deleted"
        );
    }
    for k in 100..300u64 {
        assert_eq!(
            f.find(Key(k)).unwrap(),
            Some(Value(k * 5)),
            "key {k} survived"
        );
    }
    f.check_invariants().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn recovered_file_keeps_working() {
    let path = temp_path("keep-working");
    let cfg = HashFileConfig::tiny().with_bucket_capacity(4);
    {
        let store = Arc::new(PageStore::create_file(&path, store_cfg(4)).unwrap());
        let mut f = SequentialHashFile::with_store(cfg.clone(), store, hash_key).unwrap();
        for k in 0..150u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
    }
    let store = Arc::new(PageStore::open_file(&path, store_cfg(4)).unwrap());
    let mut f = SequentialHashFile::recover(cfg, store, hash_key).unwrap();
    // The recovered file must split, merge, double and halve correctly.
    for k in 150..400u64 {
        f.insert(Key(k), Value(k)).unwrap();
    }
    for k in 0..400u64 {
        assert_eq!(f.delete(Key(k)).unwrap(), DeleteOutcome::Deleted, "key {k}");
    }
    assert!(f.is_empty());
    f.check_invariants().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn concurrent_solutions_recover_from_disk() {
    let path = temp_path("concurrent");
    let cfg = HashFileConfig::tiny().with_bucket_capacity(4);

    // Session 1: Solution 2 writes through a file-backed store.
    {
        let store = Arc::new(PageStore::create_file(&path, store_cfg(4)).unwrap());
        let core = FileCore::with_parts(
            cfg.clone(),
            store,
            Arc::new(LockManager::default()),
            hash_key,
        )
        .unwrap();
        let f = Arc::new(Solution2::from_core(core));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        f.insert(Key(t * 100 + i), Value(i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        invariants::check_concurrent_file(f.core()).unwrap();
    }

    // Session 2: recover into Solution 1 (either protocol can adopt the
    // same on-disk structure — it is one format).
    let store = Arc::new(PageStore::open_file(&path, store_cfg(4)).unwrap());
    let core = FileCore::recover(cfg, store, Arc::new(LockManager::default()), hash_key).unwrap();
    let f = Arc::new(Solution1::from_core(core));
    assert_eq!(ConcurrentHashFile::len(&*f), 400);
    invariants::check_concurrent_file(f.core()).unwrap();
    // And it keeps working concurrently.
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                for i in 0..100u64 {
                    let k = t * 100 + i;
                    assert_eq!(f.find(Key(k)).unwrap(), Some(Value(i)));
                    assert_eq!(f.delete(Key(k)).unwrap(), DeleteOutcome::Deleted);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(ConcurrentHashFile::is_empty(&*f));
    invariants::check_concurrent_file(f.core()).unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn recovery_collects_tombstone_debris() {
    // Simulate a crash between a Solution-2 merge and its GC phase: the
    // file contains a tombstone. Recovery must collect it and rebuild a
    // clean structure.
    let path = temp_path("tombstone");
    let cfg = HashFileConfig::tiny().with_bucket_capacity(4);
    {
        let store = Arc::new(PageStore::create_file(&path, store_cfg(4)).unwrap());
        let mut f = SequentialHashFile::with_store(cfg.clone(), store.clone(), hash_key).unwrap();
        for k in 0..50u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        // Plant a tombstone on a fresh page (as an interrupted merge's
        // garbage would look just before deallocation).
        let page = store.alloc().unwrap();
        let mut tomb = Bucket::new(0, 0);
        tomb.mark_deleted();
        let mut buf = ceh_storage::PageBuf::zeroed(store.page_size());
        tomb.encode(&mut buf).unwrap();
        store.write(page, &buf).unwrap();
    }
    let store = Arc::new(PageStore::open_file(&path, store_cfg(4)).unwrap());
    let f = SequentialHashFile::recover(cfg, store.clone(), hash_key).unwrap();
    assert_eq!(f.len(), 50);
    f.check_invariants().unwrap();
    std::fs::remove_file(&path).unwrap();
}

/// Build a durable two-site cluster, load it with `records` keys, and
/// shut it down cleanly, returning the config for a later recovery.
fn durable_cluster(tag: &str, records: u64) -> ceh_dist::ClusterConfig {
    let data_dir =
        std::env::temp_dir().join(format!("ceh-persist-cluster-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let cfg = ceh_dist::ClusterConfig {
        dir_managers: 2,
        bucket_managers: 2,
        file: HashFileConfig::tiny().with_bucket_capacity(4),
        page_quota: Some(16),
        data_dir: Some(data_dir),
        ..Default::default()
    };
    let c = ceh_dist::Cluster::start(cfg.clone()).unwrap();
    let client = c.client();
    for k in 0..records {
        client.insert(Key(k), Value(k * 2)).unwrap();
    }
    assert!(c.quiesce(std::time::Duration::from_secs(20)));
    c.shutdown();
    cfg
}

fn site_file(cfg: &ceh_dist::ClusterConfig, site: u32) -> std::path::PathBuf {
    cfg.data_dir
        .as_ref()
        .unwrap()
        .join(format!("site-{site}.ceh"))
}

#[test]
fn cluster_recovery_truncates_torn_tail_page() {
    // A crash can interrupt file growth mid-write, leaving a trailing
    // partial page. Recovery must truncate the debris — the directory
    // never referenced a page that finished no write — and come back
    // with every record and clean invariants.
    let cfg = durable_cluster("torn-tail", 200);
    let page_size = Bucket::page_size_for(4);
    for site in 0..2u32 {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(site_file(&cfg, site))
            .unwrap();
        f.write_all(&vec![0xAA; page_size / 2 + site as usize])
            .unwrap();
    }
    let c = ceh_dist::Cluster::recover(cfg.clone()).unwrap(); // invariant-checked inside
    assert_eq!(c.total_records().unwrap(), 200);
    let client = c.client();
    for k in 0..200u64 {
        assert_eq!(
            client.find(Key(k)).unwrap(),
            Some(Value(k * 2)),
            "key {k} survived"
        );
    }
    // The torn tail is gone from disk, not just ignored.
    let len = std::fs::metadata(site_file(&cfg, 0)).unwrap().len();
    assert_eq!(
        len % page_size as u64,
        0,
        "site file realigned to page boundary"
    );
    c.shutdown();
    std::fs::remove_dir_all(cfg.data_dir.unwrap()).unwrap();
}

#[test]
fn cluster_recovery_deallocs_corrupt_header_debris() {
    // A crash mid-allocation can leave a full page whose bucket header
    // was never (or only partially) written. Recovery must treat any
    // non-decoding page as debris and deallocate it, then pass the full
    // invariant check — which includes "no allocated page unreachable",
    // so surviving debris would fail loudly.
    let cfg = durable_cluster("corrupt-header", 150);
    let page_size = Bucket::page_size_for(4);
    {
        use std::io::{Seek as _, SeekFrom, Write as _};
        // Site 0: an appended page of pure garbage (bad magic).
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(site_file(&cfg, 0))
            .unwrap();
        f.write_all(&vec![0xAA; page_size]).unwrap();
        drop(f);
        // Site 1: a subtler header tear — valid magic, garbage fields
        // (the first 4 bytes of a real encode landed, the rest did not).
        let mut torn = vec![0xFF; page_size];
        let mut good = ceh_storage::PageBuf::zeroed(page_size);
        Bucket::new(0, 0).encode(&mut good).unwrap();
        torn[..4].copy_from_slice(&good[..4]);
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(site_file(&cfg, 1))
            .unwrap();
        f.seek(SeekFrom::End(0)).unwrap();
        f.write_all(&torn).unwrap();
    }
    let c = ceh_dist::Cluster::recover(cfg.clone()).unwrap();
    assert_eq!(c.total_records().unwrap(), 150);
    assert_eq!(c.tombstone_count().unwrap(), 0);
    c.check_invariants().unwrap();
    // And the recovered cluster keeps working — the freed debris pages
    // are safe to reallocate.
    let client = c.client();
    for k in 150..250u64 {
        client.insert(Key(k), Value(k * 2)).unwrap();
    }
    for k in 0..150u64 {
        assert_eq!(
            client.delete(Key(k)).unwrap(),
            DeleteOutcome::Deleted,
            "key {k}"
        );
    }
    assert!(c.quiesce(std::time::Duration::from_secs(20)));
    assert_eq!(c.total_records().unwrap(), 100);
    c.check_invariants().unwrap();
    c.shutdown();
    std::fs::remove_dir_all(cfg.data_dir.unwrap()).unwrap();
}

#[test]
fn recovery_of_empty_file_initializes_fresh() {
    let path = temp_path("empty");
    let cfg = HashFileConfig::tiny();
    {
        PageStore::create_file(&path, store_cfg(2)).unwrap();
    }
    let store = Arc::new(PageStore::open_file(&path, store_cfg(2)).unwrap());
    let mut f = SequentialHashFile::recover(cfg, store, hash_key).unwrap();
    assert!(f.is_empty());
    f.insert(Key(1), Value(1)).unwrap();
    assert_eq!(f.find(Key(1)).unwrap(), Some(Value(1)));
    std::fs::remove_file(&path).unwrap();
}
