//! Replay the committed crash-fixture corpus.
//!
//! Every `*.fixture` under `tests/fixtures/crashes/` is a crash point
//! the recovery fuzzer once flagged (see the README there). Each must
//! replay **clean** against the current durability layer: the workload
//! reruns, power cuts at exactly the pinned durability point, recovery
//! runs, and the durability oracle holds — a reproduced violation means
//! the documented recovery bug regressed.

use ceh_check::{replay_crash, CrashFixture};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/crashes")
}

fn corpus() -> Vec<(std::path::PathBuf, CrashFixture)> {
    let dir = corpus_dir();
    let mut fixtures = Vec::new();
    let Ok(rd) = std::fs::read_dir(&dir) else {
        return fixtures; // an empty corpus is legal
    };
    for entry in rd {
        let path = entry.expect("read corpus dir").path();
        if path.extension().is_some_and(|e| e == "fixture") {
            let text = std::fs::read_to_string(&path).expect("read fixture");
            let fix =
                CrashFixture::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            fixtures.push((path, fix));
        }
    }
    fixtures.sort_by(|a, b| a.0.cmp(&b.0));
    fixtures
}

#[test]
fn every_committed_crash_fixture_replays_clean() {
    for (path, fix) in corpus() {
        assert!(
            fix.violation.is_none(),
            "{}: committed fixtures must pin a *clean* recovery (drop the violation line)",
            path.display()
        );
        let outcome = replay_crash(&fix).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            outcome.fired,
            "{}: crash point {} was never reached — the workload diverged, re-minimize",
            path.display(),
            fix.crash_at
        );
    }
}

#[test]
fn crash_corpus_roundtrips_through_the_format() {
    for (path, fix) in corpus() {
        let reparsed = CrashFixture::parse(&fix.serialize())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(reparsed, fix, "{}", path.display());
    }
}

#[test]
fn truncate_prefix_regression_fixture_is_present() {
    // The corpus ships with at least the mid-truncate replay-regression
    // entry the first fuzzer sweep minimized; losing it silently would
    // gut the regression gate.
    assert!(
        corpus().iter().any(|(p, _)| p
            .file_stem()
            .is_some_and(|s| s == "truncate_prefix_regression")),
        "truncate-prefix regression fixture missing from {}",
        corpus_dir().display()
    );
}
