//! Replay the committed schedule-fixture corpus.
//!
//! Every `*.fixture` under `tests/fixtures/schedules/` is a minimized
//! interleaving the explorer once flagged (see the README there). Each
//! must replay **clean** against the current protocol: a reproduced
//! violation means the documented bug regressed; a diverged schedule
//! means the protocol changed shape and the fixture needs re-minimizing.

use ceh_check::{replay, ScheduleFixture};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/schedules")
}

fn corpus() -> Vec<(std::path::PathBuf, ScheduleFixture)> {
    let dir = corpus_dir();
    let mut fixtures = Vec::new();
    let Ok(rd) = std::fs::read_dir(&dir) else {
        return fixtures; // an empty corpus is legal
    };
    for entry in rd {
        let path = entry.expect("read corpus dir").path();
        if path.extension().is_some_and(|e| e == "fixture") {
            let text = std::fs::read_to_string(&path).expect("read fixture");
            let fix =
                ScheduleFixture::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            fixtures.push((path, fix));
        }
    }
    fixtures.sort_by(|a, b| a.0.cmp(&b.0));
    fixtures
}

#[test]
fn every_committed_fixture_replays_clean() {
    for (path, fix) in corpus() {
        match replay(&fix) {
            Ok(None) => {}
            Ok(Some(detail)) => panic!(
                "{}: the violation this fixture pins is BACK:\n{detail}",
                path.display()
            ),
            Err(e) => panic!(
                "{}: replay infrastructure error (likely a diverged schedule — \
                 re-minimize the fixture): {e}",
                path.display()
            ),
        }
    }
}

#[test]
fn corpus_files_roundtrip_through_the_format() {
    for (path, fix) in corpus() {
        let reparsed = ScheduleFixture::parse(&fix.serialize())
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(reparsed, fix, "{}", path.display());
    }
}

#[test]
fn label_a_regression_fixture_is_present() {
    // The corpus ships with at least the label-A merge-race entry the
    // check-inject self-test minimizes; losing it silently would gut
    // the regression gate.
    assert!(
        corpus()
            .iter()
            .any(|(_, f)| f.workload == "s2-delete-delete-merge"),
        "label-A merge-race fixture missing from {}",
        corpus_dir().display()
    );
}
