//! Trace propagation under chaos: every retry, failover, and re-drive
//! must attribute to the originating client request.
//!
//! The causal-tracing plane (DESIGN.md §8) stamps a `TraceCtx` onto
//! every message the distributed hash file sends, so that when the
//! fault plane drops a request mid-flight and the client retries — or
//! fails over to another directory manager, or the manager re-drives a
//! stalled bucket operation — the recovery work still lands in the
//! trace tree of the request that caused it. This test runs the seeded
//! chaos workload from `tests/chaos.rs` with the tracer on and checks
//! exactly that:
//!
//! * every completed client request produced exactly one root
//!   `dist.request` span, and every nonzero trace reassembles to a
//!   single root (no orphaned fragments);
//! * every `retry` / `failover` / `redrive` / `dedupe_hit` instant
//!   recorded anywhere in the cluster sits in a trace rooted at a
//!   client request — none leak into the untraced trace-0 bucket;
//! * the faults actually exercised the recovery paths (some such
//!   instants exist), and the ring was sized so nothing was dropped.
//!
//! `CEH_QUICK=1` shrinks the workload for CI smoke runs.

use std::collections::HashSet;
use std::time::Duration;

use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::{FaultPlan, LatencyModel};
use ceh_obs::SpanId;
use ceh_types::{HashFileConfig, Key, RetryPolicy, Value};

fn quick() -> bool {
    std::env::var("CEH_QUICK").is_ok_and(|v| v == "1")
}

/// Same faultable classes as `tests/chaos.rs`: the client path plus the
/// re-drivable bucket and replication traffic.
const FAULTABLE: &[&str] = &[
    "request",
    "user-reply",
    "find",
    "insert",
    "delete",
    "bucketdone",
    "copyupdate",
    "copy-ack",
    "garbagecollect",
    "gc-ack",
];

/// The recovery instants whose attribution this test is about.
const RECOVERY: &[&str] = &["retry", "failover", "redrive", "dedupe_hit"];

#[test]
fn recovery_work_attributes_to_the_originating_request() {
    let ops_per_client: u64 = if quick() { 80 } else { 400 };
    let clients: u64 = 3;
    let cluster = Cluster::start(ClusterConfig {
        dir_managers: 3,
        bucket_managers: 2,
        file: HashFileConfig::tiny().with_bucket_capacity(8),
        page_quota: None,
        latency: LatencyModel::none(),
        data_dir: None,
        faults: Some(
            FaultPlan::new(0xCE11_0001)
                .drop_classes(FAULTABLE, 0.05)
                .duplicate_classes(FAULTABLE, 0.01),
        ),
        retry: RetryPolicy {
            attempts: 80,
            timeout_ms: 150,
            base_backoff_ms: 1,
            max_backoff_ms: 10,
        },
        resend_ms: 100,
        reply_timeout_ms: 2_000,
        durable: false,
        backend: Default::default(),
    })
    .unwrap();
    // Sized so a full chaos run fits: a truncated ring would silently
    // orphan the oldest spans and void the attribution check below.
    cluster.metrics().tracer().enable(1 << 19);

    let handles: Vec<_> = (0..clients)
        .map(|t| {
            let client = cluster.client();
            std::thread::spawn(move || {
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xC4A0 + t);
                for i in 0..ops_per_client {
                    let k = rng.random_range(0..64u64) * clients + t;
                    match rng.random_range(0..4) {
                        0 | 1 => {
                            client.insert(Key(k), Value(i)).unwrap();
                        }
                        2 => {
                            client.delete(Key(k)).unwrap();
                        }
                        _ => {
                            client.find(Key(k)).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Heal and drain so the trailing replication/GC traffic (traced
    // under its originating request) settles before the report.
    cluster.net().set_fault_plan(None);
    assert!(
        cluster.quiesce(Duration::from_secs(60)),
        "cluster must drain after healing"
    );
    let stats = cluster.msg_stats();
    assert!(
        stats.dropped_total() > 0,
        "the fault plan must actually have dropped messages"
    );

    let report = cluster.trace_report();
    cluster.shutdown();
    assert_eq!(
        report.dropped, 0,
        "ring must be sized for the whole run: a truncated report \
         cannot prove attribution"
    );

    // Every completed request is exactly one root span, and every
    // nonzero trace reassembles to a single root.
    let mut request_roots: HashSet<u64> = HashSet::new();
    for tree in report.traces() {
        if tree.trace_id == 0 {
            continue; // the untraced/legacy bucket
        }
        let roots = tree.root_spans();
        assert_eq!(
            roots.len(),
            1,
            "trace {:#x} must have exactly one root span, got {:?}",
            tree.trace_id,
            roots.iter().map(|s| s.event).collect::<Vec<_>>()
        );
        assert_eq!(
            (roots[0].layer, roots[0].event),
            ("dist", "request"),
            "trace {:#x} must be rooted at a client request",
            tree.trace_id
        );
        assert_eq!(
            roots[0].id,
            SpanId(tree.trace_id),
            "a root span's id is its trace id"
        );
        request_roots.insert(tree.trace_id);
    }
    assert_eq!(
        request_roots.len() as u64,
        clients * ops_per_client,
        "one root request span per completed client operation"
    );

    // Every recovery instant sits inside a request-rooted trace. The
    // scan covers both span-attached instants and loose events, so an
    // instant stamped with a broken context cannot hide.
    let mut recovery_seen = 0u64;
    for tree in report.traces() {
        let events = tree
            .spans
            .iter()
            .flat_map(|s| s.instants.iter())
            .chain(tree.loose.iter());
        for ev in events {
            if ev.layer == "dist" && RECOVERY.contains(&ev.event) {
                recovery_seen += 1;
                assert!(
                    request_roots.contains(&tree.trace_id),
                    "{} instant in trace {:#x} is not attributed to any \
                     client request",
                    ev.event,
                    tree.trace_id
                );
            }
        }
    }
    assert!(
        recovery_seen > 0,
        "a 5% drop rate over {} ops must trigger retries or re-drives",
        clients * ops_per_client
    );
}
