//! Acceptance: one mixed run yields ONE coherent RunReport.
//!
//! The point of the unified metrics plane is that a single handle
//! threaded through every layer produces a single report carrying
//! lock-wait, page-I/O, split/merge, and (for the distributed file)
//! per-class message metrics — no per-crate snapshot stitching.

use std::sync::Arc;
use std::time::Duration;

use ceh_core::{ConcurrentHashFile, Solution2};
use ceh_dist::{Cluster, ClusterConfig};
use ceh_obs::json;
use ceh_types::{HashFileConfig, Key, Value};

#[test]
fn solution2_mixed_run_produces_one_cross_layer_report() {
    let file =
        Arc::new(Solution2::new(HashFileConfig::tiny().with_bucket_capacity(8)).expect("file"));
    // Charge a (tiny) simulated I/O cost so the page-I/O histogram has
    // samples, not just a registered name.
    file.set_io_latency_ns(100);
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let f = Arc::clone(&file);
            std::thread::spawn(move || {
                for i in 0..600u64 {
                    let k = Key((t * 300 + i) % 2048);
                    f.insert(k, Value(i)).expect("insert");
                    f.find(k).expect("find");
                    if i % 3 == 0 {
                        f.delete(k).expect("delete");
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    let report = ceh_obs::RunReport::collect("mixed", &file.metrics());
    let doc = json::parse(&report.to_json()).expect("report JSON parses");
    let counters = doc.get("counters").expect("counters object");
    let nonzero = |name: &str| {
        counters
            .get(name)
            .unwrap_or_else(|| panic!("counter {name} missing from report"))
            .as_u64()
            .expect("integer")
            > 0
    };
    // Lock traffic, page I/O, and structure modifications — one report.
    assert!(nonzero("locks.grants.rho"), "lock metrics in report");
    assert!(nonzero("locks.releases"));
    assert!(nonzero("storage.reads"), "page-I/O metrics in report");
    assert!(nonzero("storage.writes"));
    assert!(nonzero("core.splits"), "split/merge metrics in report");
    assert!(nonzero("core.inserts"));

    let hists = doc.get("hists").expect("hists object");
    assert!(
        hists.get("locks.wait_ns.rho").is_some(),
        "lock-wait histogram in report"
    );
    let io = hists.get("storage.io_ns").expect("I/O time histogram");
    assert!(
        io.get("count").unwrap().as_u64().unwrap() > 0,
        "simulated I/O time was recorded"
    );

    // The trait hands back the same registry every time.
    assert!(file.metrics().same_registry(&file.metrics()));
}

#[test]
fn dist_cluster_report_carries_per_class_message_metrics() {
    let cluster = Cluster::start(ClusterConfig::default()).expect("cluster");
    {
        let client = cluster.client();
        for k in 0..200u64 {
            client.insert(Key(k), Value(k * 10)).expect("insert");
        }
        for k in (0..200u64).step_by(5) {
            assert_eq!(client.find(Key(k)).expect("find"), Some(Value(k * 10)));
        }
    }
    assert!(cluster.quiesce(Duration::from_secs(30)), "cluster drains");

    let report = cluster.run_report("dist-mixed");
    let doc = json::parse(&report.to_json()).expect("report JSON parses");
    let counters = doc.get("counters").expect("counters").as_obj().unwrap();
    let get = |name: &str| counters.get(name).and_then(|v| v.as_u64()).unwrap_or(0);

    // Per-class network traffic in the same report as everything else.
    assert!(get("net.sent.request") > 0, "request class counted");
    assert!(get("net.sent.bucketdone") > 0, "bucketdone class counted");
    assert!(
        get("net.sent.copyupdate") > 0,
        "replication traffic counted (default cluster has 2 replicas)"
    );
    // Directory-manager protocol counters ride along.
    assert!(get("dist.copyupdate_rounds") > 0, "updates were broadcast");
    // And the layers below still feed the same registry.
    assert!(get("storage.writes") > 0, "site page stores counted");
    assert!(get("locks.grants.rho") > 0, "site lock managers counted");

    // Topology metadata.
    let meta = doc.get("meta").expect("meta");
    assert_eq!(meta.get("dir_managers").unwrap().as_str(), Some("2"));
    assert_eq!(meta.get("bucket_managers").unwrap().as_str(), Some("2"));

    cluster.shutdown();
}
