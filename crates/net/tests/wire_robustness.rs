//! Wire-format robustness: hostile bytes on a real socket must produce
//! a counted protocol error and a severed connection — never a panic,
//! never a wedged plane.
//!
//! The frame layer's promise (see `crates/net/src/wire.rs`) is that a
//! byte stream cannot be resynchronized after a framing error, so the
//! *connection* is sacrificed — but the *peer* keeps serving everyone
//! else and the supervisor redials. These tests drive that promise over
//! actual loopback sockets: truncated frames, garbled payloads,
//! oversized lengths, version mismatches, and raw garbage.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ceh_net::wire::{
    check_payload, decode_header, encode_frame, FrameKind, FRAME_HEADER_BYTES, MAX_FRAME_PAYLOAD,
    WIRE_VERSION,
};
use ceh_net::{
    FaultPlan, MsgClass, TcpConfig, TcpPlane, Transport, WireError, WireMsg, WireReader, WireWriter,
};
use ceh_obs::MetricsHandle;

#[derive(Debug, Clone, PartialEq)]
struct TestMsg(u64);

impl MsgClass for TestMsg {
    fn class(&self) -> &'static str {
        "test"
    }
}

impl WireMsg for TestMsg {
    fn wire_encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
    fn wire_decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = r.u64()?;
        r.finish()?;
        Ok(TestMsg(v))
    }
}

fn loopback() -> std::net::SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

fn wait_counter(metrics: &MetricsHandle, name: &str, at_least: u64) -> u64 {
    let counter = metrics.counter(name);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let v = counter.get();
        if v >= at_least {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "counter {name} stuck at {v}, wanted >= {at_least}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A frame whose payload addresses `to` and carries one `TestMsg`.
fn msg_frame(to: u64, value: u64) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(to);
    TestMsg(value).wire_encode(&mut w);
    encode_frame(FrameKind::Msg, &w.into_bytes())
}

/// Pure-decoder sweep: every truncation and every single-byte mutation
/// of a valid frame either decodes to the original or fails with a
/// `WireError` — by construction, nothing here can panic.
#[test]
fn hostile_bytes_never_panic_the_decoder() {
    let frame = msg_frame(0x0001_0000_0000_0007, 42);

    // Every prefix of the frame.
    for cut in 0..frame.len() {
        let bytes = &frame[..cut];
        if bytes.len() >= FRAME_HEADER_BYTES {
            let header: [u8; FRAME_HEADER_BYTES] = bytes[..FRAME_HEADER_BYTES].try_into().unwrap();
            if let Ok(h) = decode_header(&header) {
                let payload = &bytes[FRAME_HEADER_BYTES..];
                if payload.len() == h.len {
                    // Full payload present: CRC must still pass, and the
                    // message decode is what's truncated.
                    let _ = check_payload(&h, payload);
                }
            }
        }
    }

    // Every single-byte corruption of the whole frame.
    for at in 0..frame.len() {
        let mut bad = frame.clone();
        bad[at] ^= 0x5A;
        let header: [u8; FRAME_HEADER_BYTES] = bad[..FRAME_HEADER_BYTES].try_into().unwrap();
        match decode_header(&header) {
            Err(_) => {} // header corruption caught up front
            Ok(h) => {
                let payload = &bad[FRAME_HEADER_BYTES..];
                if h.len != payload.len() {
                    continue; // length corrupted: reader would block/EOF
                }
                match check_payload(&h, payload) {
                    Err(WireError::BadCrc { .. }) => {} // payload corruption caught
                    Err(e) => panic!("unexpected error {e}"),
                    Ok(()) => {
                        // CRC passed, so the corruption must have been in
                        // the header's ignorable bits (reserved field).
                        let mut r = WireReader::new(payload);
                        let to = r.u64().unwrap();
                        assert_eq!(to, 0x0001_0000_0000_0007);
                    }
                }
            }
        }
    }

    // 4 KiB of deterministic noise, decoded from every offset.
    let mut state = 0xDEAD_BEEFu64;
    let noise: Vec<u8> = (0..4096)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect();
    for at in 0..noise.len().saturating_sub(FRAME_HEADER_BYTES) {
        let header: [u8; FRAME_HEADER_BYTES] =
            noise[at..at + FRAME_HEADER_BYTES].try_into().unwrap();
        let _ = decode_header(&header);
        let _ = TestMsg::wire_decode(&noise[at..]);
    }
}

/// Raw garbage, a version-mismatched frame, and an oversized length all
/// land as counted protocol errors — and the plane keeps serving a
/// well-behaved connection afterwards.
#[test]
fn protocol_errors_are_counted_and_the_plane_keeps_serving() {
    let metrics = MetricsHandle::new();
    let plane: TcpPlane<TestMsg> =
        TcpPlane::start(TcpConfig::new(1).listen(loopback()), &metrics).unwrap();
    let (port, rx) = plane.create_port();
    let addr = plane.local_addr().unwrap();

    // 1. Not even a frame: bad magic.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n\r\n................")
        .unwrap();
    wait_counter(&metrics, "net.tcp.protocol_error.bad_magic", 1);
    // The plane hangs up on us (read sees EOF), it does not hang.
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(s.read(&mut [0u8; 16]).unwrap_or(0), 0, "connection severed");

    // 2. A well-formed frame from a future wire version.
    let mut frame = msg_frame(port.0, 1);
    frame[4] = WIRE_VERSION + 1;
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&frame).unwrap();
    wait_counter(&metrics, "net.tcp.protocol_error.bad_version", 1);

    // 3. A header promising more than MAX_FRAME_PAYLOAD.
    let mut frame = msg_frame(port.0, 2);
    frame[8..12].copy_from_slice(&((MAX_FRAME_PAYLOAD as u32) + 1).to_le_bytes());
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&frame).unwrap();
    wait_counter(&metrics, "net.tcp.protocol_error.oversize", 1);

    // 4. A garbled payload: CRC catches the flipped byte.
    let mut frame = msg_frame(port.0, 3);
    let last = frame.len() - 1;
    frame[last] ^= 0x01;
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&frame).unwrap();
    wait_counter(&metrics, "net.tcp.protocol_error.bad_crc", 1);

    // 5. A valid frame whose *message* is truncated (CRC passes).
    let mut w = WireWriter::new();
    w.u64(port.0);
    w.u32(7); // four bytes where TestMsg wants eight
    let frame = encode_frame(FrameKind::Msg, &w.into_bytes());
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&frame).unwrap();
    wait_counter(&metrics, "net.tcp.protocol_error.truncated", 1);

    // After all that abuse: a legitimate peer connects and is served.
    let b: TcpPlane<TestMsg> =
        TcpPlane::start(TcpConfig::new(2).peer(1, addr), &MetricsHandle::new()).unwrap();
    assert!(b.send(port, TestMsg(99)));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(m) => {
                assert_eq!(m, TestMsg(99));
                break;
            }
            Err(_) => {
                assert!(Instant::now() < deadline, "legit message never arrived");
                b.send(port, TestMsg(99));
            }
        }
    }
    b.close();
    plane.close();
}

/// End to end through the injection layer: a sender whose every data
/// frame is garbled on the wire cannot wedge the receiver — the CRC
/// rejects each frame, the connection is severed and re-established,
/// and once the plan is lifted traffic flows again.
#[test]
fn garbling_fault_plan_degrades_and_heals() {
    let server_metrics = MetricsHandle::new();
    let server: TcpPlane<TestMsg> =
        TcpPlane::start(TcpConfig::new(1).listen(loopback()), &server_metrics).unwrap();
    let (port, rx) = server.create_port();

    let client_metrics = MetricsHandle::new();
    let client: TcpPlane<TestMsg> = TcpPlane::start(
        TcpConfig::new(2).peer(1, server.local_addr().unwrap()),
        &client_metrics,
    )
    .unwrap();
    client.set_fault_plan(Some(FaultPlan::new(0xBAD).garble_all(1.0)));

    // Pump garbled frames; every one must be rejected by the server.
    for i in 0..20 {
        client.send(port, TestMsg(i));
        std::thread::sleep(Duration::from_millis(10));
    }
    wait_counter(&server_metrics, "net.tcp.protocol_error.bad_crc", 1);
    assert!(
        rx.recv_timeout(Duration::from_millis(100)).is_err(),
        "no garbled frame may decode"
    );

    // Heal: the supervisor redials, and clean traffic gets through.
    client.set_fault_plan(None);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        client.send(port, TestMsg(1000));
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(TestMsg(v)) if v >= 1000 => break,
            _ => assert!(Instant::now() < deadline, "plane never healed"),
        }
    }
    client.close();
    server.close();
}
