//! Connection supervision over real sockets: crash detection, bounded
//! reconnect, heartbeat liveness, and partition-tolerant load shedding.
//!
//! The state machine itself is unit-tested in
//! `crates/net/src/supervisor.rs` with logical clocks; these tests
//! check the *integration* — that the TCP plane's threads actually obey
//! the FSM when peers crash, restart, idle, or vanish.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use ceh_net::{
    MsgClass, PeerState, SupervisorConfig, TcpConfig, TcpPlane, Transport, WireError, WireMsg,
    WireReader, WireWriter,
};
use ceh_obs::MetricsHandle;

#[derive(Debug, Clone, PartialEq)]
struct TestMsg(u64);

impl MsgClass for TestMsg {
    fn class(&self) -> &'static str {
        "test"
    }
}

impl WireMsg for TestMsg {
    fn wire_encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
    fn wire_decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = r.u64()?;
        r.finish()?;
        Ok(TestMsg(v))
    }
}

fn loopback() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// Fast supervision so the tests run in seconds, not minutes.
fn fast() -> SupervisorConfig {
    SupervisorConfig {
        heartbeat_ms: 50,
        degraded_after_ms: 200,
        down_after_ms: 600,
        base_backoff_ms: 5,
        max_backoff_ms: 50,
    }
}

fn wait_for<F: Fn() -> bool>(what: &str, secs: u64, f: F) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Heartbeats keep a connected-but-silent link Healthy: no data flows,
/// yet pings and pongs count as life on both ends.
#[test]
fn heartbeats_keep_an_idle_link_healthy() {
    let server: TcpPlane<TestMsg> = TcpPlane::start(
        TcpConfig::new(1).listen(loopback()).supervisor(fast()),
        &MetricsHandle::new(),
    )
    .unwrap();
    let client: TcpPlane<TestMsg> = TcpPlane::start(
        TcpConfig::new(2)
            .peer(1, server.local_addr().unwrap())
            .supervisor(fast()),
        &MetricsHandle::new(),
    )
    .unwrap();
    wait_for("initial connect", 10, || {
        client.peer_state(1) == Some(PeerState::Healthy)
    });
    // Idle for many degraded_after periods; the probes must keep it up.
    std::thread::sleep(Duration::from_millis(1_000));
    assert_eq!(
        client.peer_state(1),
        Some(PeerState::Healthy),
        "idle link degraded despite heartbeats"
    );
    client.close();
    server.close();
}

/// A crashed peer is detected (degraded/down, with counted backoff),
/// and a restarted peer heals the link — messages flow again without
/// any new configuration.
#[test]
fn crash_is_detected_and_restart_heals() {
    let client_metrics = MetricsHandle::new();
    let server: TcpPlane<TestMsg> = TcpPlane::start(
        TcpConfig::new(1).listen(loopback()).supervisor(fast()),
        &MetricsHandle::new(),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let (port, rx) = server.create_port();
    server.register_name("svc", port);

    let client: TcpPlane<TestMsg> = TcpPlane::start(
        TcpConfig::new(2).peer(1, addr).supervisor(fast()),
        &client_metrics,
    )
    .unwrap();
    wait_for("name replication", 10, || client.lookup("svc").is_some());
    client.send(port, TestMsg(1));
    assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), TestMsg(1));

    // Crash the server. The client's supervisor must notice on its own
    // (EOF or heartbeat silence) and start paying backoff.
    server.close();
    drop(rx);
    wait_for("crash detection", 15, || {
        client.peer_state(1) != Some(PeerState::Healthy)
    });
    wait_for("reconnect attempts with backoff", 15, || {
        client_metrics.counter("net.tcp.dial_fail").get() >= 2
            && client_metrics.counter("net.tcp.backoff_ms").get() > 0
    });

    // Restart on the same address (retry the bind: the old listener may
    // take a beat to release the port).
    let server2_metrics = MetricsHandle::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    let server2: TcpPlane<TestMsg> = loop {
        match TcpPlane::start(
            TcpConfig::new(1).listen(addr).supervisor(fast()),
            &server2_metrics,
        ) {
            Ok(p) => break p,
            Err(e) => {
                assert!(Instant::now() < deadline, "rebind never succeeded: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    let (port2, rx2) = server2.create_port();
    server2.register_name("svc", port2);

    wait_for("reconnect heals the link", 15, || {
        client.peer_state(1) == Some(PeerState::Healthy)
    });
    assert!(
        client_metrics.counter("net.tcp.reconnect").get() >= 1,
        "healing must be counted as a reconnect"
    );
    // The restarted peer replicated its new binding; send to it.
    wait_for("rebound name", 10, || client.lookup("svc") == Some(port2));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        client.send(port2, TestMsg(2));
        match rx2.recv_timeout(Duration::from_millis(200)) {
            Ok(TestMsg(2)) => break,
            _ => assert!(Instant::now() < deadline, "restarted peer never served"),
        }
    }
    client.close();
    server2.close();
}

/// A partitioned peer cannot wedge the sender: the bounded outbound
/// queue fills, further sends shed (counted), and the caller never
/// blocks — graceful degradation, not backpressure collapse.
#[test]
fn partition_sheds_load_instead_of_blocking() {
    // Reserve an address nothing will ever listen on again.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let metrics = MetricsHandle::new();
    let mut cfg = TcpConfig::new(3).peer(9, dead_addr).supervisor(fast());
    cfg.queue_capacity = 8;
    let plane: TcpPlane<TestMsg> = TcpPlane::start(cfg, &metrics).unwrap();

    let target = ceh_net::PortId::for_node(9, 1);
    let start = Instant::now();
    for i in 0..500 {
        assert!(plane.send(target, TestMsg(i)));
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "sends to a dead peer must not block: took {elapsed:?}"
    );
    assert!(
        metrics.counter("net.tcp.shed").get() >= 400,
        "overflow must be load-shed, got {}",
        metrics.counter("net.tcp.shed").get()
    );
    // The supervisor kept trying the whole time.
    wait_for("dial failures counted", 10, || {
        metrics.counter("net.tcp.dial_fail").get() >= 1
    });
    plane.close();
}
