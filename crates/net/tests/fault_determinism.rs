//! The socket-layer fault plan is deterministic: the same seed produces
//! the same fault schedule, so a chaos run over real TCP is exactly
//! reproducible — the acceptance bar the simulated plane already meets.

use std::time::{Duration, Instant};

use ceh_net::{
    FaultPlan, MsgClass, TcpConfig, TcpPlane, Transport, WireError, WireMsg, WireReader, WireWriter,
};
use ceh_obs::MetricsHandle;

#[derive(Debug, Clone, PartialEq)]
struct TestMsg(u64);

impl MsgClass for TestMsg {
    fn class(&self) -> &'static str {
        "test"
    }
}

impl WireMsg for TestMsg {
    fn wire_encode(&self, w: &mut WireWriter) {
        w.u64(self.0);
    }
    fn wire_decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = r.u64()?;
        r.finish()?;
        Ok(TestMsg(v))
    }
}

/// One seeded lossy run: node 2 sends `count` messages to node 1
/// through a 30% drop plan; returns the sorted values that survived.
fn lossy_run(seed: u64, count: u64) -> Vec<u64> {
    let server: TcpPlane<TestMsg> = TcpPlane::start(
        TcpConfig::new(1).listen("127.0.0.1:0".parse().unwrap()),
        &MetricsHandle::new(),
    )
    .unwrap();
    let (port, rx) = server.create_port();

    let mut cfg = TcpConfig::new(2).peer(1, server.local_addr().unwrap());
    cfg.seed = seed;
    let client: TcpPlane<TestMsg> = TcpPlane::start(cfg, &MetricsHandle::new()).unwrap();
    client.set_fault_plan(Some(FaultPlan::new(seed).drop_all(0.3)));

    // Wait for the link before sending, so no frame is lost to a
    // not-yet-connected queue racing the handshake.
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.peer_state(1) != Some(ceh_net::PeerState::Healthy) {
        assert!(Instant::now() < deadline, "never connected");
        std::thread::sleep(Duration::from_millis(5));
    }
    for i in 0..count {
        client.send(port, TestMsg(i));
    }
    // Drain until the stream runs dry.
    let mut got = Vec::new();
    while let Ok(TestMsg(v)) = rx.recv_timeout(Duration::from_millis(500)) {
        got.push(v);
    }
    client.close();
    server.close();
    got.sort_unstable();
    got
}

#[test]
fn same_seed_same_fault_schedule_over_real_sockets() {
    let a = lossy_run(0xCE11, 200);
    let b = lossy_run(0xCE11, 200);
    assert!(!a.is_empty(), "a 30% drop plan must deliver most frames");
    assert!(
        a.len() < 200,
        "a 30% drop plan must actually drop something"
    );
    assert_eq!(a, b, "identical seeds must reproduce the exact loss set");

    let c = lossy_run(0xD00D, 200);
    assert_ne!(a, c, "different seeds must explore different schedules");
}
