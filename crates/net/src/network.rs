//! Ports, delivery, and the name service.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::RwLock;

use crate::fault::{FaultPlan, FaultState, Verdict};
use crate::latency::LatencyModel;
use crate::stats::{MsgStats, MsgStatsSnapshot};

/// Classifies messages for the per-class counters; the distributed crate
/// implements this with Figure 11's message taxonomy (`"find"`,
/// `"wrongbucket"`, `"copyupdate"`, …).
pub trait MsgClass {
    /// The message's class label.
    fn class(&self) -> &'static str;

    /// The causal context this message carries, if any. Messages that
    /// embed a [`ceh_obs::TraceCtx`] (the distributed operation
    /// envelope, replication and GC traffic) return it here so the
    /// network can stamp send/deliver/drop/duplicate events against the
    /// originating request's trace. The default — no context — keeps
    /// plain message types working unchanged.
    fn trace_ctx(&self) -> ceh_obs::TraceCtx {
        ceh_obs::TraceCtx::NONE
    }
}

/// `b` payload of a `net` trace event: the message was handed to the
/// destination port (zero-latency path: send and delivery coincide).
pub const TRACE_SENT: u64 = 0;
/// `b` payload of a `net` trace event: the fault plane ate the message.
pub const TRACE_DROPPED: u64 = 1;
/// `b` payload of a `net` trace event: an injected duplicate will also
/// be delivered.
pub const TRACE_DUPLICATED: u64 = 2;
/// `b` payload of a `net` trace event: a delayed message reached its
/// destination (latency-model path only).
pub const TRACE_DELIVERED: u64 = 3;

/// A port identifier: the paper's "long-lived identifier for a manager
/// port". Senders are anonymous — delivery carries no sender identity
/// unless the message itself embeds a reply port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u64);

impl PortId {
    /// Compose a port id for the TCP plane: the owning node in the top
    /// 16 bits, a node-local port number below. Simulated-plane ports
    /// allocate small integers, i.e. live on node 0.
    pub fn for_node(node: u16, local: u64) -> PortId {
        PortId((u64::from(node) << 48) | (local & 0xFFFF_FFFF_FFFF))
    }

    /// The node this port lives on (0 for simulated-plane ports).
    pub fn node(self) -> u16 {
        (self.0 >> 48) as u16
    }

    /// The node-local port number.
    pub fn local(self) -> u64 {
        self.0 & 0xFFFF_FFFF_FFFF
    }
}

/// Receiving failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message available yet (try/timeout variants only).
    Empty,
    /// The network (all sender handles) has shut down.
    Disconnected,
}

struct Delayed<M> {
    to: PortId,
    msg: M,
    /// Sampled at send time (the sender knows the message class).
    delay: Duration,
    /// Send timestamp, for the `net.delivery_ns` latency histogram.
    sent_at: Instant,
    /// Class and causal context captured at send time, so delivery can
    /// be stamped against the originating trace without re-inspecting
    /// the message.
    class: &'static str,
    ctx: ceh_obs::TraceCtx,
}

struct Inner<M> {
    ports: RwLock<HashMap<PortId, Sender<M>>>,
    names: RwLock<HashMap<String, PortId>>,
    stats: MsgStats,
    next_port: AtomicU64,
    /// Present when a latency model is configured; messages are routed
    /// through the delivery thread instead of sent directly.
    delay_tx: Option<Sender<Delayed<M>>>,
    latency: LatencyModel,
    sampler: parking_lot::Mutex<crate::latency::LatencySampler>,
    faults: parking_lot::Mutex<FaultState>,
    /// For trace stamping; shares the registry every layer reports to.
    metrics: ceh_obs::MetricsHandle,
}

impl<M> Inner<M> {
    fn deliver(&self, to: PortId, msg: M) -> bool {
        let ports = self.ports.read();
        match ports.get(&to) {
            Some(tx) => tx.send(msg).is_ok(),
            None => false,
        }
    }
}

/// The simulated network. Clone freely; all clones share the same port
/// space, name service, and counters.
pub struct SimNetwork<M: Send + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: Send + 'static> Clone for SimNetwork<M> {
    fn clone(&self) -> Self {
        SimNetwork {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + 'static> Default for SimNetwork<M> {
    fn default() -> Self {
        Self::new(LatencyModel::none())
    }
}

impl<M: Send + 'static> SimNetwork<M> {
    /// Create a network with the given latency model and a private
    /// metrics registry.
    pub fn new(latency: LatencyModel) -> Self {
        Self::with_metrics(latency, &ceh_obs::MetricsHandle::default())
    }

    /// Create a network whose per-class message counters and delivery
    /// latency land in `metrics`' registry (under the `net.` prefix),
    /// correlated with every other layer wired to the same handle.
    pub fn with_metrics(latency: LatencyModel, metrics: &ceh_obs::MetricsHandle) -> Self {
        let delay_tx = if latency.is_zero() {
            None
        } else {
            Some(channel::unbounded::<Delayed<M>>())
        };

        let inner = Arc::new(Inner {
            ports: RwLock::new(HashMap::new()),
            names: RwLock::new(HashMap::new()),
            stats: MsgStats::with_handle(metrics),
            next_port: AtomicU64::new(1),
            delay_tx: delay_tx.as_ref().map(|(tx, _)| tx.clone()),
            sampler: parking_lot::Mutex::new(latency.sampler()),
            latency,
            faults: parking_lot::Mutex::new(FaultState::default()),
            metrics: metrics.clone(),
        });

        if let Some((_tx, rx)) = delay_tx {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name("ceh-net-delay".into())
                .spawn(move || delay_loop(rx, weak))
                .expect("spawn delivery thread");
        }

        SimNetwork { inner }
    }

    /// Create a port. Returns the id (give it out; it is the address) and
    /// the receiving half (keep it; only the owner can receive).
    pub fn create_port(&self) -> (PortId, PortRx<M>) {
        let id = PortId(self.inner.next_port.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = channel::unbounded();
        self.inner.ports.write().insert(id, tx);
        let weak = Arc::downgrade(&self.inner);
        let closer = move || {
            if let Some(inner) = weak.upgrade() {
                inner.ports.write().remove(&id);
            }
        };
        (id, PortRx::with_closer(id, rx, closer))
    }

    /// Register a name for a port (the paper's manager identifiers).
    /// Re-registering a name rebinds it.
    pub fn register_name(&self, name: impl Into<String>, port: PortId) {
        self.inner.names.write().insert(name.into(), port);
    }

    /// Resolve a name (`namelookup` in Figures 13–14).
    pub fn lookup(&self, name: &str) -> Option<PortId> {
        self.inner.names.read().get(name).copied()
    }

    /// Message counters.
    pub fn stats(&self) -> MsgStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// Zero the message counters.
    pub fn reset_stats(&self) {
        self.inner.stats.reset()
    }

    /// Number of open ports (diagnostic).
    pub fn open_ports(&self) -> usize {
        self.inner.ports.read().len()
    }

    /// Install (or with `None`, remove) a probabilistic fault plan. The
    /// plan's per-class decision counters restart from zero, so the same
    /// plan replayed over the same per-class traffic volumes reproduces
    /// the same drop/duplicate counts.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.inner.faults.lock().set_plan(plan);
    }

    /// Eat every message addressed to `port` until [`Self::heal_port`].
    /// Models a crashed or unreachable process whose mail falls on the
    /// floor; the sender still sees `send` succeed.
    pub fn blackhole_port(&self, port: PortId) {
        self.inner.faults.lock().blackhole(port);
    }

    /// Undo [`Self::blackhole_port`].
    pub fn heal_port(&self, port: PortId) {
        self.inner.faults.lock().heal_blackhole(port);
    }

    /// Eat messages of `class` addressed to `port` (a one-way partition
    /// of that link) until [`Self::heal_one_way`]. Senders are anonymous
    /// here, so links are identified by *(class, destination)* — see the
    /// module docs of [`crate::FaultPlan`].
    pub fn cut_one_way(&self, class: &str, port: PortId) {
        self.inner.faults.lock().cut(class, port);
    }

    /// Undo [`Self::cut_one_way`].
    pub fn heal_one_way(&self, class: &str, port: PortId) {
        self.inner.faults.lock().heal_cut(class, port);
    }

    /// Forcibly close a port from outside its owner: subsequent sends to
    /// the id return `false` and the owner's receive loop sees
    /// [`RecvError::Disconnected`] once the buffered backlog drains.
    /// This crashes the owning process *at a message boundary*: mail
    /// already queued is still handled, everything sent afterwards is
    /// refused. Returns `false` if the port was not open.
    pub fn close_port(&self, port: PortId) -> bool {
        self.inner.ports.write().remove(&port).is_some()
    }
}

impl<M: Send + MsgClass + Clone + 'static> SimNetwork<M> {
    /// Send `msg` to `to`. Reliable while the port exists *and no fault
    /// is injected*: the message is buffered without bound until
    /// received. Returns `false` if the port has been closed (shutdown
    /// teardown), which callers treat as "the recipient is gone".
    ///
    /// Under an installed [`FaultPlan`] (or a blackhole / one-way cut)
    /// the message may be silently eaten — `send` still returns `true`
    /// then, because a lossy network cannot tell the sender its packet
    /// died. Drops are still counted as sent (the sender paid for the
    /// send) plus once in the dropped family; an injected duplicate is
    /// delivered twice but counted as sent once, plus once in the
    /// duplicated family.
    pub fn send(&self, to: PortId, msg: M) -> bool {
        let class = msg.class();
        self.inner.stats.record(class);
        let verdict = {
            let mut faults = self.inner.faults.lock();
            if faults.is_quiet() {
                Verdict::Deliver
            } else {
                faults.verdict(class, to)
            }
        };
        let tracer = self.inner.metrics.tracer();
        let ctx = if tracer.is_enabled() {
            msg.trace_ctx()
        } else {
            ceh_obs::TraceCtx::NONE
        };
        match verdict {
            Verdict::Drop => {
                self.inner.stats.record_dropped(class);
                tracer.instant(ctx, "net", class, to.0, TRACE_DROPPED);
                return true;
            }
            Verdict::Duplicate => {
                self.inner.stats.record_duplicated(class);
                tracer.instant(ctx, "net", class, to.0, TRACE_DUPLICATED);
            }
            Verdict::Deliver => tracer.instant(ctx, "net", class, to.0, TRACE_SENT),
        }
        match &self.inner.delay_tx {
            None => {
                if verdict == Verdict::Duplicate {
                    self.inner.deliver(to, msg.clone());
                }
                self.inner.deliver(to, msg)
            }
            Some(tx) => {
                // Each copy samples its own delay, so a duplicate can
                // arrive reordered relative to the original.
                let sent_at = Instant::now();
                if verdict == Verdict::Duplicate {
                    let delay =
                        self.inner.sampler.lock().sample() + self.inner.latency.extra_for(class);
                    let _ = tx.send(Delayed {
                        to,
                        msg: msg.clone(),
                        delay,
                        sent_at,
                        class,
                        ctx,
                    });
                }
                let delay =
                    self.inner.sampler.lock().sample() + self.inner.latency.extra_for(class);
                tx.send(Delayed {
                    to,
                    msg,
                    delay,
                    sent_at,
                    class,
                    ctx,
                })
                .is_ok()
            }
        }
    }
}

fn delay_loop<M: Send + 'static>(rx: Receiver<Delayed<M>>, net: Weak<Inner<M>>) {
    struct Due<M> {
        at: Instant,
        seq: u64,
        item: Delayed<M>,
    }
    impl<M> PartialEq for Due<M> {
        fn eq(&self, o: &Self) -> bool {
            self.at == o.at && self.seq == o.seq
        }
    }
    impl<M> Eq for Due<M> {}
    impl<M> PartialOrd for Due<M> {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl<M> Ord for Due<M> {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(o.at, o.seq))
        }
    }

    let mut heap: BinaryHeap<Reverse<Due<M>>> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|Reverse(d)| d.at <= now) {
            let Reverse(d) = heap.pop().expect("peeked");
            let Some(inner) = net.upgrade() else { return };
            inner
                .stats
                .record_delivery_ns(d.item.sent_at.elapsed().as_nanos() as u64);
            inner.metrics.tracer().instant(
                d.item.ctx,
                "net",
                d.item.class,
                d.item.to.0,
                TRACE_DELIVERED,
            );
            inner.deliver(d.item.to, d.item.msg);
        }
        // Wait for the next arrival or the next due time.
        let next = match heap.peek() {
            Some(Reverse(d)) => {
                let now = Instant::now();
                match rx.recv_timeout(d.at.saturating_duration_since(now)) {
                    Ok(item) => Some(item),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        // Drain: deliver the backlog immediately, then exit.
                        while let Some(Reverse(d)) = heap.pop() {
                            let Some(inner) = net.upgrade() else { return };
                            inner
                                .stats
                                .record_delivery_ns(d.item.sent_at.elapsed().as_nanos() as u64);
                            inner.metrics.tracer().instant(
                                d.item.ctx,
                                "net",
                                d.item.class,
                                d.item.to.0,
                                TRACE_DELIVERED,
                            );
                            inner.deliver(d.item.to, d.item.msg);
                        }
                        return;
                    }
                }
            }
            None => match rx.recv() {
                Ok(item) => Some(item),
                Err(_) => return,
            },
        };
        if let Some(item) = next {
            seq += 1;
            let at = Instant::now() + item.delay;
            heap.push(Reverse(Due { at, seq, item }));
        }
    }
}

/// The receiving half of a port. Dropping it closes the port (subsequent
/// sends to the id return `false`).
///
/// Minted by whichever transport owns the port — the simulated network
/// and the TCP plane both hand these out, so receive loops are
/// transport-agnostic. The embedded closer tells the owning transport to
/// unregister the port on drop.
pub struct PortRx<M: Send + 'static> {
    id: PortId,
    rx: Receiver<M>,
    closer: Option<Box<dyn Fn() + Send>>,
}

impl<M: Send + 'static> PortRx<M> {
    /// Wrap a receiver as a port handle; `closer` runs exactly once when
    /// the handle drops (the transport unregisters the port there).
    pub(crate) fn with_closer(
        id: PortId,
        rx: Receiver<M>,
        closer: impl Fn() + Send + 'static,
    ) -> Self {
        PortRx {
            id,
            rx,
            closer: Some(Box::new(closer)),
        }
    }

    /// This port's id.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// Block until a message arrives.
    pub fn recv(&self) -> Result<M, RecvError> {
        self.rx.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Block up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<M, RecvError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Empty,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Result<M, RecvError> {
        self.rx.try_recv().map_err(|e| match e {
            TryRecvError::Empty => RecvError::Empty,
            TryRecvError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Messages currently buffered (diagnostic).
    pub fn queued(&self) -> usize {
        self.rx.len()
    }
}

impl<M: Send + 'static> Drop for PortRx<M> {
    fn drop(&mut self) {
        if let Some(closer) = self.closer.take() {
            closer();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u32);
    impl MsgClass for TestMsg {
        fn class(&self) -> &'static str {
            if self.0 % 2 == 0 {
                "even"
            } else {
                "odd"
            }
        }
    }

    #[test]
    fn send_recv_roundtrip() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (id, rx) = net.create_port();
        assert!(net.send(id, TestMsg(7)));
        assert_eq!(rx.recv().unwrap(), TestMsg(7));
    }

    #[test]
    fn messages_buffer_without_receiver_running() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (id, rx) = net.create_port();
        for i in 0..100 {
            assert!(net.send(id, TestMsg(i)));
        }
        assert_eq!(rx.queued(), 100);
        for i in 0..100 {
            assert_eq!(
                rx.recv().unwrap(),
                TestMsg(i),
                "zero-latency network is FIFO"
            );
        }
    }

    #[test]
    fn name_service_resolves_and_rebinds() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (a, _ra) = net.create_port();
        let (b, _rb) = net.create_port();
        net.register_name("mgr0", a);
        assert_eq!(net.lookup("mgr0"), Some(a));
        net.register_name("mgr0", b);
        assert_eq!(net.lookup("mgr0"), Some(b));
        assert_eq!(net.lookup("nobody"), None);
    }

    #[test]
    fn send_to_closed_port_reports_failure() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (id, rx) = net.create_port();
        drop(rx);
        assert!(!net.send(id, TestMsg(0)));
        assert_eq!(net.open_ports(), 0);
    }

    #[test]
    fn stats_count_by_class() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (id, _rx) = net.create_port();
        net.send(id, TestMsg(0));
        net.send(id, TestMsg(1));
        net.send(id, TestMsg(2));
        let s = net.stats();
        assert_eq!(s.get("even"), 2);
        assert_eq!(s.get("odd"), 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn delayed_delivery_arrives() {
        let net: SimNetwork<TestMsg> =
            SimNetwork::new(LatencyModel::fixed(Duration::from_millis(5)));
        let (id, rx) = net.create_port();
        let t0 = Instant::now();
        net.send(id, TestMsg(1));
        assert_eq!(rx.try_recv(), Err(RecvError::Empty), "not due yet");
        let got = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got, TestMsg(1));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn jittered_delivery_can_reorder_but_loses_nothing() {
        let net: SimNetwork<TestMsg> = SimNetwork::new(LatencyModel::jittered(
            Duration::ZERO,
            Duration::from_millis(3),
            42,
        ));
        let (id, rx) = net.create_port();
        const N: u32 = 200;
        for i in 0..N {
            net.send(id, TestMsg(i));
        }
        let mut got = Vec::new();
        for _ in 0..N {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap().0);
        }
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(
            sorted,
            (0..N).collect::<Vec<_>>(),
            "reliable: every message arrives"
        );
    }

    #[test]
    fn class_extra_slows_only_that_class() {
        let net: SimNetwork<TestMsg> = SimNetwork::new(
            LatencyModel::fixed(Duration::from_micros(1))
                .with_class_extra("odd", Duration::from_millis(20)),
        );
        let (id, rx) = net.create_port();
        net.send(id, TestMsg(1)); // odd: slow
        net.send(id, TestMsg(2)); // even: fast
                                  // The even message overtakes the odd one.
        let first = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(first, TestMsg(2), "fast class arrives first");
        let second = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(second, TestMsg(1));
    }

    #[test]
    fn recv_timeout_empty() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (_id, rx) = net.create_port();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvError::Empty)
        );
    }

    #[test]
    fn fault_plan_drops_and_counts() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        net.set_fault_plan(Some(FaultPlan::new(11).drop_class("even", 1.0)));
        let (id, rx) = net.create_port();
        assert!(
            net.send(id, TestMsg(0)),
            "drop is silent: send still succeeds"
        );
        assert!(net.send(id, TestMsg(1)));
        assert_eq!(rx.recv().unwrap(), TestMsg(1), "odd traffic unaffected");
        assert_eq!(rx.try_recv(), Err(RecvError::Empty));
        let s = net.stats();
        assert_eq!(
            s.get("even"),
            1,
            "a dropped message is still counted as sent"
        );
        assert_eq!(s.dropped("even"), 1);
        assert_eq!(s.dropped("odd"), 0);
        net.set_fault_plan(None);
        assert!(net.send(id, TestMsg(2)));
        assert_eq!(
            rx.recv().unwrap(),
            TestMsg(2),
            "plan removal heals the network"
        );
    }

    #[test]
    fn fault_plan_duplicates_deliver_twice() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        net.set_fault_plan(Some(FaultPlan::new(5).duplicate_all(1.0)));
        let (id, rx) = net.create_port();
        net.send(id, TestMsg(7));
        assert_eq!(rx.recv().unwrap(), TestMsg(7));
        assert_eq!(rx.recv().unwrap(), TestMsg(7));
        let s = net.stats();
        assert_eq!(s.get("odd"), 1, "the duplicate is not counted as sent");
        assert_eq!(s.duplicated("odd"), 1);
    }

    #[test]
    fn duplicates_flow_through_the_delay_path() {
        let net: SimNetwork<TestMsg> =
            SimNetwork::new(LatencyModel::fixed(Duration::from_millis(1)));
        net.set_fault_plan(Some(FaultPlan::new(5).duplicate_all(1.0)));
        let (id, rx) = net.create_port();
        net.send(id, TestMsg(3));
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), TestMsg(3));
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap(), TestMsg(3));
    }

    #[test]
    fn same_seed_same_fault_counts() {
        let run = |seed: u64| {
            let net: SimNetwork<TestMsg> = SimNetwork::default();
            net.set_fault_plan(Some(FaultPlan::new(seed).drop_all(0.2).duplicate_all(0.1)));
            let (id, _rx) = net.create_port();
            for i in 0..500 {
                net.send(id, TestMsg(i));
            }
            let s = net.stats();
            (s.dropped_total(), s.duplicated_total())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(
            run(99),
            run(100),
            "different seed, different schedule (w.h.p.)"
        );
    }

    #[test]
    fn blackhole_eats_until_healed() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (id, rx) = net.create_port();
        net.blackhole_port(id);
        assert!(net.send(id, TestMsg(1)));
        assert_eq!(rx.try_recv(), Err(RecvError::Empty));
        assert_eq!(net.stats().dropped("odd"), 1);
        net.heal_port(id);
        net.send(id, TestMsg(3));
        assert_eq!(rx.recv().unwrap(), TestMsg(3));
    }

    #[test]
    fn one_way_cut_is_class_and_port_scoped() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (a, ra) = net.create_port();
        let (b, rb) = net.create_port();
        net.cut_one_way("odd", a);
        net.send(a, TestMsg(1)); // eaten
        net.send(a, TestMsg(2)); // even: flows
        net.send(b, TestMsg(3)); // other port: flows
        assert_eq!(ra.recv().unwrap(), TestMsg(2));
        assert_eq!(ra.try_recv(), Err(RecvError::Empty));
        assert_eq!(rb.recv().unwrap(), TestMsg(3));
        net.heal_one_way("odd", a);
        net.send(a, TestMsg(5));
        assert_eq!(ra.recv().unwrap(), TestMsg(5));
    }

    #[test]
    fn traced_messages_are_stamped_on_send_drop_and_delivery() {
        #[derive(Debug, Clone)]
        struct Traced(u32, ceh_obs::TraceCtx);
        impl MsgClass for Traced {
            fn class(&self) -> &'static str {
                "op"
            }
            fn trace_ctx(&self) -> ceh_obs::TraceCtx {
                self.1
            }
        }
        let metrics = ceh_obs::MetricsHandle::new();
        metrics.tracer().enable(64);
        let net: SimNetwork<Traced> = SimNetwork::with_metrics(LatencyModel::none(), &metrics);
        let ctx = metrics.trace_begin(ceh_obs::TraceCtx::NONE, "dist", "request", 0, 0);
        let (id, rx) = net.create_port();
        net.send(id, Traced(1, ctx));
        assert_eq!(rx.recv().unwrap().0, 1);
        net.set_fault_plan(Some(FaultPlan::new(3).drop_all(1.0)));
        net.send(id, Traced(2, ctx));
        net.set_fault_plan(None);
        // Untraced messages produce no events.
        net.send(id, Traced(3, ceh_obs::TraceCtx::NONE));
        let ev = metrics.tracer().drain();
        let net_ev: Vec<_> = ev.iter().filter(|e| e.layer == "net").collect();
        assert_eq!(net_ev.len(), 2);
        assert!(net_ev.iter().all(|e| e.trace == ctx.trace_id));
        assert_eq!(net_ev[0].event, "op");
        assert_eq!(net_ev[0].b, TRACE_SENT);
        assert_eq!(net_ev[1].b, TRACE_DROPPED);

        // Latency path: delivery is stamped too.
        metrics.tracer().enable(64);
        let net: SimNetwork<Traced> =
            SimNetwork::with_metrics(LatencyModel::fixed(Duration::from_millis(1)), &metrics);
        let ctx = metrics.trace_begin(ceh_obs::TraceCtx::NONE, "dist", "request", 0, 0);
        let (id, rx) = net.create_port();
        net.send(id, Traced(9, ctx));
        rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let ev = metrics.tracer().drain();
        assert!(ev
            .iter()
            .any(|e| e.layer == "net" && e.b == TRACE_DELIVERED && e.trace == ctx.trace_id));
    }

    #[test]
    fn close_port_crashes_at_a_message_boundary() {
        let net: SimNetwork<TestMsg> = SimNetwork::default();
        let (id, rx) = net.create_port();
        net.send(id, TestMsg(1));
        assert!(net.close_port(id));
        assert!(!net.close_port(id), "second close is a no-op");
        assert!(!net.send(id, TestMsg(2)), "post-crash sends are refused");
        assert_eq!(rx.recv().unwrap(), TestMsg(1), "pre-crash backlog drains");
        assert_eq!(rx.recv(), Err(RecvError::Disconnected));
        assert_eq!(net.open_ports(), 0);
    }
}
