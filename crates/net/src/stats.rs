//! Per-class message counters.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Counts messages by class label (see [`crate::MsgClass`]).
///
/// Three families of counters are kept, all per class:
///
/// * **sent** — every attempted send (the experiments' primary currency);
/// * **dropped** — sends eaten by the fault plane (probabilistic drops,
///   blackholed ports, one-way cuts). A dropped message is still counted
///   as sent: the sender paid for it.
/// * **duplicated** — extra deliveries injected by the fault plane. The
///   duplicate is *not* counted as sent (the sender sent once).
///
/// Message sends are not on any nanosecond-critical path in this
/// workspace (the distributed experiments measure message *counts*, not
/// message-send throughput), so a mutex-guarded map keeps this simple and
/// exact.
#[derive(Debug, Default)]
pub struct MsgStats {
    counts: Mutex<HashMap<&'static str, u64>>,
    dropped: Mutex<HashMap<&'static str, u64>>,
    duplicated: Mutex<HashMap<&'static str, u64>>,
}

impl MsgStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one message of the given class.
    pub fn record(&self, class: &'static str) {
        *self.counts.lock().entry(class).or_insert(0) += 1;
    }

    /// Count one message of the given class eaten by the fault plane.
    pub fn record_dropped(&self, class: &'static str) {
        *self.dropped.lock().entry(class).or_insert(0) += 1;
    }

    /// Count one duplicate delivery injected by the fault plane.
    pub fn record_duplicated(&self, class: &'static str) {
        *self.duplicated.lock().entry(class).or_insert(0) += 1;
    }

    /// Copy out the current counts.
    pub fn snapshot(&self) -> MsgStatsSnapshot {
        MsgStatsSnapshot {
            counts: self.counts.lock().clone(),
            dropped: self.dropped.lock().clone(),
            duplicated: self.duplicated.lock().clone(),
        }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.counts.lock().clear();
        self.dropped.lock().clear();
        self.duplicated.lock().clear();
    }
}

/// A point-in-time copy of [`MsgStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsgStatsSnapshot {
    counts: HashMap<&'static str, u64>,
    dropped: HashMap<&'static str, u64>,
    duplicated: HashMap<&'static str, u64>,
}

impl MsgStatsSnapshot {
    /// Count for one class (0 if never seen).
    pub fn get(&self, class: &str) -> u64 {
        self.counts.get(class).copied().unwrap_or(0)
    }

    /// Total messages of all classes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fault-plane drops for one class (0 if never seen).
    pub fn dropped(&self, class: &str) -> u64 {
        self.dropped.get(class).copied().unwrap_or(0)
    }

    /// Total fault-plane drops across all classes.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Fault-plane duplicate deliveries for one class (0 if never seen).
    pub fn duplicated(&self, class: &str) -> u64 {
        self.duplicated.get(class).copied().unwrap_or(0)
    }

    /// Total fault-plane duplicate deliveries across all classes.
    pub fn duplicated_total(&self) -> u64 {
        self.duplicated.values().sum()
    }

    /// All (class, count) pairs, sorted by class for stable reporting.
    pub fn sorted(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort();
        v
    }

    /// Difference (self - earlier), for interval measurement. Classes
    /// absent from `earlier` are kept whole.
    pub fn since(&self, earlier: &MsgStatsSnapshot) -> MsgStatsSnapshot {
        fn diff(
            mine: &HashMap<&'static str, u64>,
            theirs: &HashMap<&'static str, u64>,
        ) -> HashMap<&'static str, u64> {
            let mut counts = mine.clone();
            for (k, v) in counts.iter_mut() {
                *v -= theirs.get(k).copied().unwrap_or(0);
            }
            counts.retain(|_, v| *v > 0);
            counts
        }
        MsgStatsSnapshot {
            counts: diff(&self.counts, &earlier.counts),
            dropped: diff(&self.dropped, &earlier.dropped),
            duplicated: diff(&self.duplicated, &earlier.duplicated),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = MsgStats::new();
        s.record("find");
        s.record("find");
        s.record("update");
        let snap = s.snapshot();
        assert_eq!(snap.get("find"), 2);
        assert_eq!(snap.get("update"), 1);
        assert_eq!(snap.get("nope"), 0);
        assert_eq!(snap.total(), 3);
        assert_eq!(snap.sorted(), vec![("find", 2), ("update", 1)]);
    }

    #[test]
    fn since_subtracts_and_prunes() {
        let s = MsgStats::new();
        s.record("a");
        let before = s.snapshot();
        s.record("a");
        s.record("b");
        let d = s.snapshot().since(&before);
        assert_eq!(d.get("a"), 1);
        assert_eq!(d.get("b"), 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn fault_counters_are_separate_families() {
        let s = MsgStats::new();
        s.record("find");
        s.record_dropped("find");
        s.record_duplicated("copyupdate");
        let snap = s.snapshot();
        assert_eq!(snap.get("find"), 1);
        assert_eq!(snap.dropped("find"), 1);
        assert_eq!(snap.dropped_total(), 1);
        assert_eq!(snap.duplicated("copyupdate"), 1);
        assert_eq!(snap.duplicated_total(), 1);
        assert_eq!(snap.duplicated("find"), 0);
        s.reset();
        assert_eq!(s.snapshot().dropped_total(), 0);
    }

    #[test]
    fn since_covers_fault_counters() {
        let s = MsgStats::new();
        s.record_dropped("a");
        let before = s.snapshot();
        s.record_dropped("a");
        s.record_duplicated("b");
        let d = s.snapshot().since(&before);
        assert_eq!(d.dropped("a"), 1);
        assert_eq!(d.duplicated("b"), 1);
    }
}
