//! Per-class message counters, recorded through the unified
//! [`ceh_obs`] metrics plane.
//!
//! Metric names (all under the `net.` prefix): `net.sent.<class>`,
//! `net.dropped.<class>`, `net.duplicated.<class>` — one counter per
//! message class, created on first use — and `net.delivery_ns`, a
//! histogram of send-to-delivery latency populated by the delayed
//! delivery path (a zero-latency network delivers synchronously and
//! records no latency samples).

use std::collections::HashMap;
use std::sync::Arc;

use ceh_obs::{Counter, Histogram, MetricsHandle};
use parking_lot::RwLock;

/// Which of the three per-class counter families an event belongs to.
#[derive(Clone, Copy)]
enum Family {
    Sent,
    Dropped,
    Duplicated,
}

impl Family {
    fn prefix(self) -> &'static str {
        match self {
            Family::Sent => "net.sent.",
            Family::Dropped => "net.dropped.",
            Family::Duplicated => "net.duplicated.",
        }
    }
}

/// Counts messages by class label (see [`crate::MsgClass`]).
///
/// Three families of counters are kept, all per class:
///
/// * **sent** — every attempted send (the experiments' primary currency);
/// * **dropped** — sends eaten by the fault plane (probabilistic drops,
///   blackholed ports, one-way cuts). A dropped message is still counted
///   as sent: the sender paid for it.
/// * **duplicated** — extra deliveries injected by the fault plane. The
///   duplicate is *not* counted as sent (the sender sent once).
///
/// Class labels are `&'static str`, so each (family, class) resolves to
/// its registry [`Counter`] once and is cached; steady-state recording
/// is a read-locked map probe plus a sharded counter increment.
#[derive(Debug)]
pub struct MsgStats {
    handle: MetricsHandle,
    sent: RwLock<HashMap<&'static str, Arc<Counter>>>,
    dropped: RwLock<HashMap<&'static str, Arc<Counter>>>,
    duplicated: RwLock<HashMap<&'static str, Arc<Counter>>>,
    delivery_ns: Arc<Histogram>,
}

impl Default for MsgStats {
    fn default() -> Self {
        Self::new()
    }
}

impl MsgStats {
    /// Counters in a fresh private registry (uncorrelated with any
    /// other layer — for standalone networks).
    pub fn new() -> Self {
        Self::with_handle(&MetricsHandle::default())
    }

    /// Counters registered under `net.` in `handle`'s registry.
    pub fn with_handle(handle: &MetricsHandle) -> Self {
        MsgStats {
            delivery_ns: handle.histogram("net.delivery_ns"),
            handle: handle.clone(),
            sent: RwLock::default(),
            dropped: RwLock::default(),
            duplicated: RwLock::default(),
        }
    }

    fn family(&self, f: Family) -> &RwLock<HashMap<&'static str, Arc<Counter>>> {
        match f {
            Family::Sent => &self.sent,
            Family::Dropped => &self.dropped,
            Family::Duplicated => &self.duplicated,
        }
    }

    fn bump(&self, f: Family, class: &'static str) {
        let map = self.family(f);
        if let Some(c) = map.read().get(class) {
            c.inc();
            return;
        }
        let counter = self.handle.counter(&format!("{}{}", f.prefix(), class));
        counter.inc();
        map.write().entry(class).or_insert(counter);
    }

    /// Count one message of the given class.
    pub fn record(&self, class: &'static str) {
        self.bump(Family::Sent, class);
    }

    /// Count one message of the given class eaten by the fault plane.
    pub fn record_dropped(&self, class: &'static str) {
        self.bump(Family::Dropped, class);
    }

    /// Count one duplicate delivery injected by the fault plane.
    pub fn record_duplicated(&self, class: &'static str) {
        self.bump(Family::Duplicated, class);
    }

    /// Record one send-to-delivery latency sample.
    pub fn record_delivery_ns(&self, ns: u64) {
        self.delivery_ns.record(ns);
    }

    /// The send-to-delivery latency histogram.
    pub fn delivery_hist(&self) -> &Histogram {
        &self.delivery_ns
    }

    fn collect(&self, f: Family) -> HashMap<&'static str, u64> {
        self.family(f)
            .read()
            .iter()
            .map(|(&k, c)| (k, c.get()))
            .filter(|&(_, v)| v > 0)
            .collect()
    }

    /// Copy out the current counts. Classes whose counters are zero
    /// (e.g. after [`MsgStats::reset`]) are omitted.
    pub fn snapshot(&self) -> MsgStatsSnapshot {
        MsgStatsSnapshot {
            counts: self.collect(Family::Sent),
            dropped: self.collect(Family::Dropped),
            duplicated: self.collect(Family::Duplicated),
        }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        for f in [Family::Sent, Family::Dropped, Family::Duplicated] {
            for c in self.family(f).read().values() {
                c.reset();
            }
        }
        self.delivery_ns.reset();
    }
}

/// A point-in-time copy of [`MsgStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsgStatsSnapshot {
    counts: HashMap<&'static str, u64>,
    dropped: HashMap<&'static str, u64>,
    duplicated: HashMap<&'static str, u64>,
}

impl MsgStatsSnapshot {
    /// Count for one class (0 if never seen).
    pub fn get(&self, class: &str) -> u64 {
        self.counts.get(class).copied().unwrap_or(0)
    }

    /// Total messages of all classes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Fault-plane drops for one class (0 if never seen).
    pub fn dropped(&self, class: &str) -> u64 {
        self.dropped.get(class).copied().unwrap_or(0)
    }

    /// Total fault-plane drops across all classes.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Fault-plane duplicate deliveries for one class (0 if never seen).
    pub fn duplicated(&self, class: &str) -> u64 {
        self.duplicated.get(class).copied().unwrap_or(0)
    }

    /// Total fault-plane duplicate deliveries across all classes.
    pub fn duplicated_total(&self) -> u64 {
        self.duplicated.values().sum()
    }

    /// All (class, count) pairs, sorted by class for stable reporting.
    pub fn sorted(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort();
        v
    }

    /// Difference (self - earlier), for interval measurement. Classes
    /// absent from `earlier` are kept whole.
    pub fn since(&self, earlier: &MsgStatsSnapshot) -> MsgStatsSnapshot {
        fn diff(
            mine: &HashMap<&'static str, u64>,
            theirs: &HashMap<&'static str, u64>,
        ) -> HashMap<&'static str, u64> {
            let mut counts = mine.clone();
            for (k, v) in counts.iter_mut() {
                *v -= theirs.get(k).copied().unwrap_or(0);
            }
            counts.retain(|_, v| *v > 0);
            counts
        }
        MsgStatsSnapshot {
            counts: diff(&self.counts, &earlier.counts),
            dropped: diff(&self.dropped, &earlier.dropped),
            duplicated: diff(&self.duplicated, &earlier.duplicated),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = MsgStats::new();
        s.record("find");
        s.record("find");
        s.record("update");
        let snap = s.snapshot();
        assert_eq!(snap.get("find"), 2);
        assert_eq!(snap.get("update"), 1);
        assert_eq!(snap.get("nope"), 0);
        assert_eq!(snap.total(), 3);
        assert_eq!(snap.sorted(), vec![("find", 2), ("update", 1)]);
    }

    #[test]
    fn since_subtracts_and_prunes() {
        let s = MsgStats::new();
        s.record("a");
        let before = s.snapshot();
        s.record("a");
        s.record("b");
        let d = s.snapshot().since(&before);
        assert_eq!(d.get("a"), 1);
        assert_eq!(d.get("b"), 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn fault_counters_are_separate_families() {
        let s = MsgStats::new();
        s.record("find");
        s.record_dropped("find");
        s.record_duplicated("copyupdate");
        let snap = s.snapshot();
        assert_eq!(snap.get("find"), 1);
        assert_eq!(snap.dropped("find"), 1);
        assert_eq!(snap.dropped_total(), 1);
        assert_eq!(snap.duplicated("copyupdate"), 1);
        assert_eq!(snap.duplicated_total(), 1);
        assert_eq!(snap.duplicated("find"), 0);
        s.reset();
        assert_eq!(s.snapshot().dropped_total(), 0);
    }

    #[test]
    fn since_covers_fault_counters() {
        let s = MsgStats::new();
        s.record_dropped("a");
        let before = s.snapshot();
        s.record_dropped("a");
        s.record_duplicated("b");
        let d = s.snapshot().since(&before);
        assert_eq!(d.dropped("a"), 1);
        assert_eq!(d.duplicated("b"), 1);
    }

    #[test]
    fn reset_yields_empty_snapshot() {
        let s = MsgStats::new();
        s.record("find");
        s.reset();
        assert_eq!(s.snapshot(), MsgStatsSnapshot::default());
        s.record("find");
        assert_eq!(s.snapshot().get("find"), 1);
    }

    #[test]
    fn shared_handle_sees_per_class_metrics() {
        let handle = MetricsHandle::new();
        let s = MsgStats::with_handle(&handle);
        s.record("find");
        s.record("find");
        s.record_dropped("update");
        s.record_delivery_ns(5_000);
        let m = handle.snapshot();
        assert_eq!(m.counter("net.sent.find"), 2);
        assert_eq!(m.counter("net.dropped.update"), 1);
        assert_eq!(m.prefix_sum("net.sent."), 2);
        assert_eq!(m.hist("net.delivery_ns").unwrap().count, 1);
    }
}
