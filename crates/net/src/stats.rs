//! Per-class message counters.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Counts messages by class label (see [`crate::MsgClass`]).
///
/// Message sends are not on any nanosecond-critical path in this
/// workspace (the distributed experiments measure message *counts*, not
/// message-send throughput), so a mutex-guarded map keeps this simple and
/// exact.
#[derive(Debug, Default)]
pub struct MsgStats {
    counts: Mutex<HashMap<&'static str, u64>>,
}

impl MsgStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one message of the given class.
    pub fn record(&self, class: &'static str) {
        *self.counts.lock().entry(class).or_insert(0) += 1;
    }

    /// Copy out the current counts.
    pub fn snapshot(&self) -> MsgStatsSnapshot {
        MsgStatsSnapshot { counts: self.counts.lock().clone() }
    }

    /// Zero the counters.
    pub fn reset(&self) {
        self.counts.lock().clear();
    }
}

/// A point-in-time copy of [`MsgStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MsgStatsSnapshot {
    counts: HashMap<&'static str, u64>,
}

impl MsgStatsSnapshot {
    /// Count for one class (0 if never seen).
    pub fn get(&self, class: &str) -> u64 {
        self.counts.get(class).copied().unwrap_or(0)
    }

    /// Total messages of all classes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// All (class, count) pairs, sorted by class for stable reporting.
    pub fn sorted(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort();
        v
    }

    /// Difference (self - earlier), for interval measurement. Classes
    /// absent from `earlier` are kept whole.
    pub fn since(&self, earlier: &MsgStatsSnapshot) -> MsgStatsSnapshot {
        let mut counts = self.counts.clone();
        for (k, v) in counts.iter_mut() {
            *v -= earlier.get(k);
        }
        counts.retain(|_, v| *v > 0);
        MsgStatsSnapshot { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = MsgStats::new();
        s.record("find");
        s.record("find");
        s.record("update");
        let snap = s.snapshot();
        assert_eq!(snap.get("find"), 2);
        assert_eq!(snap.get("update"), 1);
        assert_eq!(snap.get("nope"), 0);
        assert_eq!(snap.total(), 3);
        assert_eq!(snap.sorted(), vec![("find", 2), ("update", 1)]);
    }

    #[test]
    fn since_subtracts_and_prunes() {
        let s = MsgStats::new();
        s.record("a");
        let before = s.snapshot();
        s.record("a");
        s.record("b");
        let d = s.snapshot().since(&before);
        assert_eq!(d.get("a"), 1);
        assert_eq!(d.get("b"), 1);
        assert_eq!(d.total(), 2);
    }
}
