//! Connection supervision: the per-peer health state machine and the
//! reconnect backoff schedule.
//!
//! The TCP plane keeps one supervised link per remote peer. This module
//! is the *decision* half of that supervisor — a pure state machine fed
//! logical milliseconds, with no sockets, threads, or wall clock — so
//! the schedule is deterministically unit-testable (see the tests here
//! and `crates/net/tests/supervisor.rs`). The I/O half
//! ([`crate::TcpPlane`]) feeds it events and obeys its verdicts.
//!
//! ```text
//!             dial ok
//! Connecting ────────────► Healthy ──── idle ≥ degraded_after ───► Degraded
//!     ▲  ▲                  ▲   │                                     │
//!     │  │    frame arrives │   └── io/protocol error ──┐             │
//!     │  └──────────────────┴───────────────────────────┘  idle ≥ down_after
//!     │            (reconnect with backoff)             │             │
//!     └───────────────────────────────────────────◄─────┴──── Down ◄──┘
//! ```
//!
//! * **Connecting** — dialing (or waiting out a backoff delay before the
//!   next dial). Entered at birth and after any disconnect.
//! * **Healthy** — the connection is up and frames have arrived
//!   recently. When the link has been idle for `heartbeat_ms` the
//!   supervisor probes with a ping; any inbound frame counts as life.
//! * **Degraded** — no inbound traffic for `degraded_after_ms`: the
//!   connection may be half-dead (TCP can take minutes to notice a
//!   silent partition on its own). Sends still go out, but callers can
//!   shed load. An inbound frame promotes straight back to Healthy.
//! * **Down** — silent for `down_after_ms`, or the socket errored: the
//!   supervisor severs the connection and re-enters Connecting after a
//!   bounded, jittered, exponentially growing delay. Success resets the
//!   backoff to its base.

use crate::fault::splitmix64;

/// Supervisor timing knobs, all in milliseconds of the caller's clock.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Probe an idle Healthy link with a ping after this long.
    pub heartbeat_ms: u64,
    /// Demote Healthy → Degraded after this long without inbound
    /// traffic (must exceed `heartbeat_ms`, or every idle link degrades
    /// before its probe can answer).
    pub degraded_after_ms: u64,
    /// Demote → Down (sever and reconnect) after this long without
    /// inbound traffic.
    pub down_after_ms: u64,
    /// First reconnect delay.
    pub base_backoff_ms: u64,
    /// Reconnect delay ceiling (the "bounded" in bounded exponential).
    pub max_backoff_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            heartbeat_ms: 200,
            degraded_after_ms: 600,
            down_after_ms: 2_000,
            base_backoff_ms: 10,
            max_backoff_ms: 1_000,
        }
    }
}

/// A peer link's health, coarsest to finest. Exported as the
/// `net.tcp.peer.<node>.state` gauge via [`PeerState::as_gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Dialing, or waiting out a backoff delay before the next dial.
    Connecting,
    /// Connected with recent inbound traffic.
    Healthy,
    /// Connected but silent past the degraded threshold.
    Degraded,
    /// Considered dead; the link is being torn down for a redial.
    Down,
}

impl PeerState {
    /// Stable numeric encoding for the per-peer state gauge:
    /// 0 = connecting, 1 = healthy, 2 = degraded, 3 = down.
    pub fn as_gauge(self) -> u64 {
        match self {
            PeerState::Connecting => 0,
            PeerState::Healthy => 1,
            PeerState::Degraded => 2,
            PeerState::Down => 3,
        }
    }
}

/// What a [`PeerFsm::tick`] decided the I/O half must do now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickAction {
    /// Nothing — the link is fine (or not connected, so nothing to do).
    None,
    /// The link is idle: send a heartbeat ping.
    SendPing,
    /// The link just crossed the degraded threshold (counted once per
    /// demotion; the state gauge tracks the level itself).
    Degrade,
    /// The link is dead: sever the connection and redial after
    /// [`PeerFsm::on_disconnect`]'s delay.
    Sever,
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Delay for attempt `n` is uniformly jittered in
/// `[d/2, d]` where `d = min(base · 2ⁿ, max)` — exponential growth so a
/// dead peer is not hammered, a ceiling so recovery after a long outage
/// is still prompt, and jitter so a fleet of reconnecting peers does not
/// thundering-herd the survivor. The jitter is a pure function of
/// `(seed, attempt)`, so a seeded run reproduces its exact schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    max_ms: u64,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule (next delay is the jittered base).
    pub fn new(base_ms: u64, max_ms: u64, seed: u64) -> Self {
        Backoff {
            base_ms: base_ms.max(1),
            max_ms: max_ms.max(1),
            seed,
            attempt: 0,
        }
    }

    /// The delay before the next reconnect attempt, advancing the
    /// schedule.
    pub fn next_delay_ms(&mut self) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << self.attempt.min(32))
            .min(self.max_ms);
        self.attempt = self.attempt.saturating_add(1);
        // Jitter uniformly in [exp/2, exp], deterministically.
        let span = exp / 2;
        let j = if span == 0 {
            0
        } else {
            splitmix64(self.seed ^ u64::from(self.attempt)) % (span + 1)
        };
        exp - j
    }

    /// Connection succeeded: the next failure starts over from the base.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Consecutive failures since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// The per-peer supervision state machine. Pure: time is a logical
/// millisecond counter supplied by the caller, and every decision is a
/// function of (config, seed, event history).
#[derive(Debug)]
pub struct PeerFsm {
    cfg: SupervisorConfig,
    state: PeerState,
    backoff: Backoff,
    /// Last inbound frame (or connect), caller-clock ms.
    last_activity_ms: u64,
    /// Last ping probe, so an idle link is probed once per heartbeat
    /// interval rather than every tick.
    last_ping_ms: u64,
}

impl PeerFsm {
    /// A new link, born Connecting at caller-clock `now_ms`.
    pub fn new(cfg: SupervisorConfig, seed: u64, now_ms: u64) -> Self {
        PeerFsm {
            state: PeerState::Connecting,
            backoff: Backoff::new(cfg.base_backoff_ms, cfg.max_backoff_ms, seed),
            cfg,
            last_activity_ms: now_ms,
            last_ping_ms: now_ms,
        }
    }

    /// Current health.
    pub fn state(&self) -> PeerState {
        self.state
    }

    /// Consecutive failed dials since the last success.
    pub fn dial_attempts(&self) -> u32 {
        self.backoff.attempts()
    }

    /// The dial completed: Healthy, backoff schedule reset.
    pub fn on_connected(&mut self, now_ms: u64) {
        self.state = PeerState::Healthy;
        self.backoff.reset();
        self.last_activity_ms = now_ms;
        self.last_ping_ms = now_ms;
    }

    /// An inbound frame arrived (any kind — data, pong, even a
    /// handshake): the peer is alive, so a Degraded link heals.
    pub fn on_activity(&mut self, now_ms: u64) {
        self.last_activity_ms = now_ms;
        if matches!(self.state, PeerState::Healthy | PeerState::Degraded) {
            self.state = PeerState::Healthy;
        }
    }

    /// The connection failed (dial error, io error, protocol error, or
    /// a [`TickAction::Sever`] was obeyed). Returns how long to wait
    /// before redialing; the link re-enters Connecting.
    pub fn on_disconnect(&mut self, now_ms: u64) -> u64 {
        self.state = PeerState::Connecting;
        self.last_activity_ms = now_ms;
        self.last_ping_ms = now_ms;
        self.backoff.next_delay_ms()
    }

    /// Advance the liveness clock. Call periodically; returns the action
    /// the I/O half must take.
    pub fn tick(&mut self, now_ms: u64) -> TickAction {
        if !matches!(self.state, PeerState::Healthy | PeerState::Degraded) {
            return TickAction::None;
        }
        let idle = now_ms.saturating_sub(self.last_activity_ms);
        if idle >= self.cfg.down_after_ms {
            self.state = PeerState::Down;
            return TickAction::Sever;
        }
        if idle >= self.cfg.degraded_after_ms {
            if self.state == PeerState::Healthy {
                self.state = PeerState::Degraded;
                return TickAction::Degrade;
            }
        } else if idle >= self.cfg.heartbeat_ms
            && now_ms.saturating_sub(self.last_ping_ms) >= self.cfg.heartbeat_ms
        {
            self.last_ping_ms = now_ms;
            return TickAction::SendPing;
        }
        TickAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig {
            heartbeat_ms: 100,
            degraded_after_ms: 300,
            down_after_ms: 1_000,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
        }
    }

    #[test]
    fn backoff_grows_is_bounded_and_resets() {
        let mut b = Backoff::new(10, 500, 42);
        let mut prev_ceiling = 0u64;
        for n in 0..12 {
            let d = b.next_delay_ms();
            let ceiling = (10u64 << n).min(500);
            assert!(d <= ceiling, "attempt {n}: {d} > {ceiling}");
            assert!(d >= ceiling / 2, "attempt {n}: {d} < {}", ceiling / 2);
            assert!(ceiling >= prev_ceiling, "envelope must be monotone");
            prev_ceiling = ceiling;
        }
        // Far past the doubling range the delay is still capped.
        for _ in 0..100 {
            assert!(b.next_delay_ms() <= 500);
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay_ms() <= 10, "reset restarts from the base");
    }

    #[test]
    fn backoff_schedule_is_seed_deterministic_and_jittered() {
        let schedule = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(10, 500, seed);
            (0..10).map(|_| b.next_delay_ms()).collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "different seed, different jitter");
        // Jitter actually varies within one schedule (not a constant).
        let s = schedule(7);
        let ratios: Vec<f64> = s
            .iter()
            .take(6)
            .enumerate()
            .map(|(n, &d)| d as f64 / (10u64 << n) as f64)
            .collect();
        assert!(
            ratios.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
            "jitter should vary across attempts: {ratios:?}"
        );
    }

    #[test]
    fn lifecycle_connecting_healthy_degraded_down() {
        let mut fsm = PeerFsm::new(cfg(), 1, 0);
        assert_eq!(fsm.state(), PeerState::Connecting);
        assert_eq!(fsm.tick(50), TickAction::None, "nothing to watch yet");

        fsm.on_connected(100);
        assert_eq!(fsm.state(), PeerState::Healthy);

        // Idle past the heartbeat: probe, once per interval.
        assert_eq!(fsm.tick(210), TickAction::SendPing);
        assert_eq!(fsm.tick(220), TickAction::None, "already probed");
        assert_eq!(fsm.tick(320), TickAction::SendPing, "next interval");

        // Still silent: degraded at 300ms idle, exactly once.
        assert_eq!(fsm.tick(400), TickAction::Degrade);
        assert_eq!(fsm.state(), PeerState::Degraded);
        assert_eq!(fsm.tick(450), TickAction::None, "demotion counted once");

        // Silent past down_after: sever.
        assert_eq!(fsm.tick(1_100), TickAction::Sever);
        assert_eq!(fsm.state(), PeerState::Down);

        let delay = fsm.on_disconnect(1_100);
        assert_eq!(fsm.state(), PeerState::Connecting);
        assert!(
            (5..=10).contains(&delay),
            "first backoff from base: {delay}"
        );
    }

    #[test]
    fn activity_heals_a_degraded_link_without_reconnect() {
        let mut fsm = PeerFsm::new(cfg(), 1, 0);
        fsm.on_connected(0);
        assert_eq!(fsm.tick(350), TickAction::Degrade);
        fsm.on_activity(360);
        assert_eq!(fsm.state(), PeerState::Healthy, "inbound frame = alive");
        assert_eq!(fsm.tick(400), TickAction::None);
    }

    #[test]
    fn reconnect_success_resets_the_backoff() {
        let mut fsm = PeerFsm::new(cfg(), 3, 0);
        // Three failed dials: delays climb.
        let d1 = fsm.on_disconnect(0);
        let d2 = fsm.on_disconnect(d1);
        let d3 = fsm.on_disconnect(d1 + d2);
        assert!(d3 > d1, "backoff grew: {d1} → {d2} → {d3}");
        assert_eq!(fsm.dial_attempts(), 3);
        // Success wipes the slate.
        fsm.on_connected(1_000);
        assert_eq!(fsm.dial_attempts(), 0);
        let d4 = fsm.on_disconnect(1_001);
        assert!(d4 <= 10, "post-success failure starts from base: {d4}");
    }

    #[test]
    fn heartbeat_keeps_a_chatty_link_healthy_forever() {
        let mut fsm = PeerFsm::new(cfg(), 1, 0);
        fsm.on_connected(0);
        // Pongs arrive every 150ms: never degraded, probes on cadence.
        let mut now = 0;
        for _ in 0..50 {
            now += 150;
            let act = fsm.tick(now);
            assert!(
                matches!(act, TickAction::None | TickAction::SendPing),
                "{act:?} at {now}"
            );
            fsm.on_activity(now);
            assert_eq!(fsm.state(), PeerState::Healthy);
        }
    }
}
