//! The real transport: supervised TCP connections carrying wire frames.
//!
//! [`TcpPlane`] implements [`crate::Transport`] over actual sockets, so
//! the distributed hash file's managers run as separate OS processes
//! (`ceh serve` / `ceh client`) with *no change* to the code above the
//! transport. The pieces:
//!
//! * **Addressing** — a [`PortId`]'s top 16 bits name the owning node
//!   ([`PortId::for_node`]); the rest is a node-local port number.
//!   Sends to the local node deliver through in-process channels exactly
//!   like the simulated plane; sends to a remote node are framed
//!   ([`crate::wire`]) and routed over that node's supervised link.
//! * **Name service** — replicated, not central: every connection
//!   handshake ([`FrameKind::Hello`]) carries the sender's current
//!   bindings, and later registrations broadcast [`FrameKind::Bind`]
//!   frames, so `lookup` is always a local map probe.
//! * **Supervision** — one link per peer, each with a
//!   [`crate::supervisor::PeerFsm`] driving reconnect backoff + jitter,
//!   heartbeat probes on idle connections, write deadlines, and the
//!   connecting → healthy → degraded → down gauge.
//! * **Degradation** — each link's outbound queue is *bounded*. When a
//!   peer is partitioned the queue fills and further sends are shed
//!   (counted in `net.tcp.shed` and the per-class dropped family)
//!   instead of blocking the caller: the retry machinery above owns
//!   end-to-end delivery, so shedding under partition is loss the system
//!   already tolerates, and reachable peers keep being served.
//! * **Fault injection** — the same seeded [`FaultPlan`] the simulated
//!   plane consumes, applied at the socket boundary: frames are dropped,
//!   duplicated, garbled (the receiver's CRC catches it), delayed, or
//!   the carrying connection severed, all deterministically from the
//!   seed (see [`crate::fault`] on stream alignment across planes).
//!   Control frames (hello/bind/ping/pong/bye) are exempt — the plan
//!   shapes *message* traffic, not the supervisor's own plumbing.
//!
//! A reader that hits a malformed frame (bad magic, bad version, CRC
//! failure, oversized length) counts a `net.tcp.protocol_error`, tears
//! the connection down, and lets the supervisor redial: a byte stream
//! cannot be resynchronized after a framing error, but the *peer* is
//! never wedged — see `crates/net/tests/wire_robustness.rs`.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::fault::{FaultPlan, FaultState, FrameVerdict};
use crate::network::{MsgClass, PortId, PortRx, TRACE_DROPPED, TRACE_DUPLICATED, TRACE_SENT};
use crate::stats::{MsgStats, MsgStatsSnapshot};
use crate::supervisor::{PeerFsm, PeerState, SupervisorConfig, TickAction};
use crate::transport::Transport;
use crate::wire::{
    check_payload, decode_header, encode_frame, FrameKind, WireError, WireMsg, WireReader,
    WireWriter, FRAME_HEADER_BYTES,
};

/// Configuration for one node's [`TcpPlane`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This node's id (1..=65535; the top 16 bits of every local
    /// [`PortId`]). Ids only need to be unique within the cluster.
    pub node: u16,
    /// Address to accept connections on; `None` for client nodes that
    /// only dial out (their peers reply over the same connection).
    pub listen: Option<SocketAddr>,
    /// Statically known peers to dial and supervise: `(node, address)`.
    pub peers: Vec<(u16, SocketAddr)>,
    /// Supervisor timing (heartbeats, degradation thresholds, backoff).
    pub supervisor: SupervisorConfig,
    /// Outbound frames buffered per link before load-shedding starts.
    pub queue_capacity: usize,
    /// Dial deadline per attempt, milliseconds.
    pub connect_timeout_ms: u64,
    /// Per-frame write deadline, milliseconds (a stuck peer fails the
    /// write instead of blocking the link forever).
    pub write_timeout_ms: u64,
    /// Seed for the reconnect jitter (kept separate from the fault
    /// plan's seed: supervision is not a fault).
    pub seed: u64,
}

impl TcpConfig {
    /// A config for `node` with no listener, no peers, and default
    /// timing — extend with the builder methods.
    pub fn new(node: u16) -> Self {
        TcpConfig {
            node,
            listen: None,
            peers: Vec::new(),
            supervisor: SupervisorConfig::default(),
            queue_capacity: 1024,
            connect_timeout_ms: 1_000,
            write_timeout_ms: 2_000,
            seed: 0,
        }
    }

    /// Accept connections on `addr`.
    pub fn listen(mut self, addr: SocketAddr) -> Self {
        self.listen = Some(addr);
        self
    }

    /// Dial and supervise `node` at `addr`.
    pub fn peer(mut self, node: u16, addr: SocketAddr) -> Self {
        self.peers.push((node, addr));
        self
    }

    /// Replace the supervisor timing.
    pub fn supervisor(mut self, sup: SupervisorConfig) -> Self {
        self.supervisor = sup;
        self
    }
}

/// One buffered outbound frame, with the socket-level fault actions the
/// writer must apply.
struct OutFrame {
    bytes: Vec<u8>,
    /// Tear the connection down after this frame (injected sever).
    sever: bool,
    /// Hold the frame this long before writing (injected delay).
    delay_ms: u64,
}

/// A supervised link to one peer node.
struct Link {
    node: u16,
    /// Address to dial, or `None` for inbound-only links (clients): the
    /// accept loop deposits the connection instead.
    dial: Option<SocketAddr>,
    data_tx: Sender<OutFrame>,
    data_rx: Receiver<OutFrame>,
    /// Control frames (hello/bind/ping/pong/bye): unbounded and drained
    /// first, so load-shedding of data can never starve supervision.
    ctrl_tx: Sender<Vec<u8>>,
    ctrl_rx: Receiver<Vec<u8>>,
    fsm: Mutex<PeerFsm>,
    /// Deposited inbound connection (write half) for dial-less links.
    inbound: Mutex<Option<TcpStream>>,
    inbound_cv: Condvar,
    state_gauge: Arc<ceh_obs::Gauge>,
}

impl Link {
    fn set_gauge(&self, state: PeerState) {
        self.state_gauge.set(state.as_gauge() as i64);
    }
}

struct Plane<M: Send + 'static> {
    cfg: TcpConfig,
    epoch: Instant,
    ports: RwLock<HashMap<PortId, Sender<M>>>,
    next_port: AtomicU64,
    /// Full name table: local registrations plus everything learned
    /// from peers' hello/bind frames.
    names: RwLock<HashMap<String, PortId>>,
    /// Only this node's registrations (what *we* announce in hellos).
    local_names: RwLock<HashMap<String, PortId>>,
    links: RwLock<HashMap<u16, Arc<Link>>>,
    faults: Mutex<FaultState>,
    stats: MsgStats,
    metrics: ceh_obs::MetricsHandle,
    /// Live connection handles, kept to unblock readers at shutdown.
    conns: Mutex<Vec<TcpStream>>,
    shutdown: AtomicBool,
    /// Actual listen address (resolves port 0 binds).
    bound: Option<SocketAddr>,
}

impl<M: Send + 'static> Plane<M> {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn counter(&self, name: &str) -> Arc<ceh_obs::Counter> {
        self.metrics.counter(name)
    }
}

impl<M: Send + 'static> Drop for Plane<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for s in self.conns.lock().iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// The TCP transport. Clone freely; all clones share the node's port
/// space, links, and counters. See the module docs for the design.
pub struct TcpPlane<M: Send + 'static> {
    inner: Arc<Plane<M>>,
}

impl<M: Send + 'static> Clone for TcpPlane<M> {
    fn clone(&self) -> Self {
        TcpPlane {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M> TcpPlane<M>
where
    M: WireMsg + MsgClass + Send + Clone + 'static,
{
    /// Start the plane: bind the listener (if any), then dial and
    /// supervise every configured peer. Fails only if the listen
    /// address cannot be bound — peers being down is the normal case
    /// the supervisor exists for.
    pub fn start(cfg: TcpConfig, metrics: &ceh_obs::MetricsHandle) -> std::io::Result<TcpPlane<M>> {
        let listener = match cfg.listen {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        let bound = listener.as_ref().and_then(|l| l.local_addr().ok());
        let inner = Arc::new(Plane {
            epoch: Instant::now(),
            ports: RwLock::new(HashMap::new()),
            next_port: AtomicU64::new(1),
            names: RwLock::new(HashMap::new()),
            local_names: RwLock::new(HashMap::new()),
            links: RwLock::new(HashMap::new()),
            faults: Mutex::new(FaultState::default()),
            stats: MsgStats::with_handle(metrics),
            metrics: metrics.clone(),
            conns: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            bound,
            cfg,
        });
        let plane = TcpPlane { inner };

        if let Some(listener) = listener {
            listener.set_nonblocking(true)?;
            let weak = Arc::downgrade(&plane.inner);
            std::thread::Builder::new()
                .name(format!("ceh-tcp-accept-{}", plane.inner.cfg.node))
                .spawn(move || accept_loop(listener, weak))
                .expect("spawn accept loop");
        }
        for (node, addr) in plane.inner.cfg.peers.clone() {
            plane.ensure_link(node, Some(addr));
        }
        Ok(plane)
    }

    /// The address the listener actually bound (resolves `:0` binds).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.inner.bound
    }

    /// This node's id.
    pub fn node(&self) -> u16 {
        self.inner.cfg.node
    }

    /// Dial and supervise another peer added after startup.
    pub fn add_peer(&self, node: u16, addr: SocketAddr) {
        self.ensure_link(node, Some(addr));
    }

    /// Current supervisor state of the link to `node`, if one exists.
    pub fn peer_state(&self, node: u16) -> Option<PeerState> {
        let links = self.inner.links.read();
        links.get(&node).map(|l| l.fsm.lock().state())
    }

    /// Graceful shutdown: say goodbye on every link, stop all threads,
    /// and unblock every reader. Idempotent.
    pub fn close(&self) {
        {
            let links = self.inner.links.read();
            for link in links.values() {
                let _ = link.ctrl_tx.send(encode_frame(FrameKind::Bye, &[]));
            }
        }
        // Give writers one beat to flush the goodbyes.
        std::thread::sleep(Duration::from_millis(30));
        self.inner.shutdown.store(true, Ordering::Release);
        for s in self.inner.conns.lock().iter() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Get or create the link to `node`; a `dial` address upgrades an
    /// inbound-only link created earlier by an accepted connection.
    fn ensure_link(&self, node: u16, dial: Option<SocketAddr>) -> Arc<Link> {
        if let Some(link) = self.inner.links.read().get(&node) {
            return Arc::clone(link);
        }
        let mut links = self.inner.links.write();
        if let Some(link) = links.get(&node) {
            return Arc::clone(link);
        }
        let (data_tx, data_rx) = channel::bounded(self.inner.cfg.queue_capacity);
        let (ctrl_tx, ctrl_rx) = channel::unbounded();
        let sup = self.inner.cfg.supervisor;
        let now = self.inner.now_ms();
        let seed = self.inner.cfg.seed ^ (u64::from(node) << 17) ^ u64::from(self.inner.cfg.node);
        let link = Arc::new(Link {
            node,
            dial,
            data_tx,
            data_rx,
            ctrl_tx,
            ctrl_rx,
            fsm: Mutex::new(PeerFsm::new(sup, seed, now)),
            inbound: Mutex::new(None),
            inbound_cv: Condvar::new(),
            state_gauge: self
                .inner
                .metrics
                .gauge(&format!("net.tcp.peer.{node}.state")),
        });
        link.set_gauge(PeerState::Connecting);
        links.insert(node, Arc::clone(&link));
        drop(links);

        let weak = Arc::downgrade(&self.inner);
        let wl = Arc::clone(&link);
        std::thread::Builder::new()
            .name(format!("ceh-tcp-link-{}-{}", self.inner.cfg.node, node))
            .spawn(move || writer_loop(weak, wl))
            .expect("spawn link writer");
        link
    }

    fn deliver_local(&self, to: PortId, msg: M) -> bool {
        let ports = self.inner.ports.read();
        match ports.get(&to) {
            Some(tx) => tx.send(msg).is_ok(),
            None => {
                drop(ports);
                self.inner.counter("net.tcp.dead_letter").inc();
                false
            }
        }
    }
}

impl<M> Transport<M> for TcpPlane<M>
where
    M: WireMsg + MsgClass + Send + Clone + 'static,
{
    fn create_port(&self) -> (PortId, PortRx<M>) {
        let local = self.inner.next_port.fetch_add(1, Ordering::Relaxed);
        let id = PortId::for_node(self.inner.cfg.node, local);
        let (tx, rx) = channel::unbounded();
        self.inner.ports.write().insert(id, tx);
        let weak = Arc::downgrade(&self.inner);
        let closer = move || {
            if let Some(inner) = weak.upgrade() {
                inner.ports.write().remove(&id);
            }
        };
        (id, PortRx::with_closer(id, rx, closer))
    }

    fn register_name(&self, name: &str, port: PortId) {
        self.inner.names.write().insert(name.to_string(), port);
        self.inner
            .local_names
            .write()
            .insert(name.to_string(), port);
        // Replicate to every connected peer.
        let frame = encode_frame(FrameKind::Bind, &encode_bind(name, port));
        let links = self.inner.links.read();
        for link in links.values() {
            let _ = link.ctrl_tx.send(frame.clone());
        }
    }

    fn lookup(&self, name: &str) -> Option<PortId> {
        self.inner.names.read().get(name).copied()
    }

    fn send(&self, to: PortId, msg: M) -> bool {
        let class = msg.class();
        self.inner.stats.record(class);
        let node = to.node();
        let verdict = {
            let mut faults = self.inner.faults.lock();
            if faults.is_quiet() {
                FrameVerdict::default()
            } else {
                faults.frame_verdict(class, to)
            }
        };
        let tracer = self.inner.metrics.tracer();
        let ctx = if tracer.is_enabled() {
            msg.trace_ctx()
        } else {
            ceh_obs::TraceCtx::NONE
        };
        if verdict.drop {
            self.inner.stats.record_dropped(class);
            tracer.instant(ctx, "net", class, to.0, TRACE_DROPPED);
            return true;
        }
        if verdict.duplicate {
            self.inner.stats.record_duplicated(class);
            tracer.instant(ctx, "net", class, to.0, TRACE_DUPLICATED);
        } else {
            tracer.instant(ctx, "net", class, to.0, TRACE_SENT);
        }

        if node == self.inner.cfg.node {
            // Local fast path: no frame exists, so the socket-only
            // shapes (garble/sever/delay) cannot apply — parity with
            // the simulated plane for drop/duplicate.
            if verdict.duplicate {
                self.deliver_local(to, msg.clone());
            }
            return self.deliver_local(to, msg);
        }

        let mut payload = WireWriter::new();
        payload.u64(to.0);
        msg.wire_encode(&mut payload);
        let payload = payload.into_bytes();
        let mut frame = encode_frame(FrameKind::Msg, &payload);
        let clean = if verdict.duplicate {
            Some(frame.clone())
        } else {
            None
        };
        if verdict.garble {
            // Flip a payload byte *after* the CRC was computed: the
            // receiver must detect and reject this frame.
            let at = FRAME_HEADER_BYTES + payload.len() / 2;
            frame[at] ^= 0x5A;
            self.inner.counter("net.tcp.garbled").inc();
        }
        let link = self.ensure_link(node, None);
        let mut shed = false;
        let out = OutFrame {
            bytes: frame,
            sever: verdict.sever,
            delay_ms: verdict.delay_ms,
        };
        if link.data_tx.try_send(out).is_err() {
            shed = true;
        }
        if let Some(bytes) = clean {
            let dup = OutFrame {
                bytes,
                sever: false,
                delay_ms: 0,
            };
            let _ = link.data_tx.try_send(dup); // a shed duplicate is no loss
        }
        if shed {
            // Bounded-buffer degradation: the peer is partitioned or too
            // slow, so this frame is load-shed rather than blocking the
            // caller. The retry layer above re-drives it.
            self.inner.counter("net.tcp.shed").inc();
            self.inner.stats.record_dropped(class);
        }
        true
    }

    fn stats(&self) -> MsgStatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.inner.stats.reset()
    }

    fn open_ports(&self) -> usize {
        self.inner.ports.read().len()
    }

    fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        self.inner.faults.lock().set_plan(plan);
    }

    fn close_port(&self, port: PortId) -> bool {
        self.inner.ports.write().remove(&port).is_some()
    }
}

// ---------------------------------------------------------------------
// Control-frame payloads.

fn encode_hello(node: u16, names: &HashMap<String, PortId>) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u64(u64::from(node));
    w.u32(names.len() as u32);
    for (name, port) in names {
        w.str(name);
        w.u64(port.0);
    }
    w.into_bytes()
}

fn decode_hello(bytes: &[u8]) -> Result<(u16, Vec<(String, PortId)>), WireError> {
    let mut r = WireReader::new(bytes);
    let node = r.u64()?;
    if node == 0 || node > u64::from(u16::MAX) {
        return Err(WireError::Malformed("hello node id out of range"));
    }
    let count = r.seq_len(8)?;
    let mut names = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.str()?.to_string();
        let port = PortId(r.u64()?);
        names.push((name, port));
    }
    r.finish()?;
    Ok((node as u16, names))
}

fn encode_bind(name: &str, port: PortId) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.str(name);
    w.u64(port.0);
    w.into_bytes()
}

fn decode_bind(bytes: &[u8]) -> Result<(String, PortId), WireError> {
    let mut r = WireReader::new(bytes);
    let name = r.str()?.to_string();
    let port = PortId(r.u64()?);
    r.finish()?;
    Ok((name, port))
}

// ---------------------------------------------------------------------
// The accept loop: owns the listener, spawns one reader per connection.

fn accept_loop<M>(listener: TcpListener, plane: Weak<Plane<M>>)
where
    M: WireMsg + MsgClass + Send + Clone + 'static,
{
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let Some(inner) = plane.upgrade() else { return };
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                if let Ok(clone) = stream.try_clone() {
                    inner.conns.lock().push(clone);
                }
                let weak = Weak::clone(&plane);
                let name = format!("ceh-tcp-read-{}", inner.cfg.node);
                drop(inner);
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || reader_loop(weak, stream, None))
                    .expect("spawn reader");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                let Some(inner) = plane.upgrade() else { return };
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                drop(inner);
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    }
}

// ---------------------------------------------------------------------
// The reader: validates and dispatches inbound frames on one connection.

/// Read frames until the connection dies or a protocol error forces a
/// sever. `peer` is the link this connection belongs to when known
/// up-front (dialed connections); accepted connections learn it from
/// the peer's hello.
fn reader_loop<M>(plane: Weak<Plane<M>>, mut stream: TcpStream, peer: Option<u16>)
where
    M: WireMsg + MsgClass + Send + Clone + 'static,
{
    let mut peer_node: Option<u16> = peer;
    loop {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        if stream.read_exact(&mut header).is_err() {
            break;
        }
        let Some(inner) = plane.upgrade() else { break };
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        let frame = match decode_header(&header) {
            Ok(h) => h,
            Err(e) => {
                protocol_error(&inner, peer_node, &e);
                break;
            }
        };
        let mut payload = vec![0u8; frame.len];
        drop(inner);
        if stream.read_exact(&mut payload).is_err() {
            break;
        }
        let Some(inner) = plane.upgrade() else { break };
        if let Err(e) = check_payload(&frame, &payload) {
            protocol_error(&inner, peer_node, &e);
            break;
        }
        inner
            .metrics
            .histogram("net.tcp.frame.recv_bytes")
            .record((FRAME_HEADER_BYTES + frame.len) as u64);
        // Any valid frame is proof of life.
        if let Some(node) = peer_node {
            touch_peer(&inner, node);
        }
        match frame.kind {
            FrameKind::Hello => match decode_hello(&payload) {
                Ok((node, names)) => {
                    peer_node = Some(node);
                    {
                        let mut table = inner.names.write();
                        for (name, port) in names {
                            table.insert(name, port);
                        }
                    }
                    // An accepted connection is the *only* route back to
                    // a dial-less peer (a client): hand its write half
                    // to that link's writer.
                    let link = {
                        let links = inner.links.read();
                        links.get(&node).map(Arc::clone)
                    };
                    let link = link.unwrap_or_else(|| {
                        let plane_handle = TcpPlane {
                            inner: Arc::clone(&inner),
                        };
                        plane_handle.ensure_link(node, None)
                    });
                    if link.dial.is_none() && peer.is_none() {
                        if let Ok(clone) = stream.try_clone() {
                            *link.inbound.lock() = Some(clone);
                            link.inbound_cv.notify_all();
                        }
                    }
                    touch_peer(&inner, node);
                }
                Err(e) => {
                    protocol_error(&inner, peer_node, &e);
                    break;
                }
            },
            FrameKind::Bind => match decode_bind(&payload) {
                Ok((name, port)) => {
                    inner.names.write().insert(name, port);
                }
                Err(e) => {
                    protocol_error(&inner, peer_node, &e);
                    break;
                }
            },
            FrameKind::Msg => {
                let mut r = WireReader::new(&payload);
                let decoded = r.u64().and_then(|to| {
                    let msg = M::wire_decode(&payload[8..])?;
                    Ok((PortId(to), msg))
                });
                match decoded {
                    Ok((to, msg)) => {
                        let ports = inner.ports.read();
                        if let Some(tx) = ports.get(&to) {
                            let _ = tx.send(msg);
                        } else {
                            drop(ports);
                            inner.counter("net.tcp.dead_letter").inc();
                        }
                    }
                    Err(e) => {
                        protocol_error(&inner, peer_node, &e);
                        break;
                    }
                }
            }
            FrameKind::Ping => {
                // Answer over our own supervised link to the peer.
                if let Some(node) = peer_node {
                    let links = inner.links.read();
                    if let Some(link) = links.get(&node) {
                        let _ = link.ctrl_tx.send(encode_frame(FrameKind::Pong, &[]));
                    }
                }
            }
            FrameKind::Pong => {} // the touch above was the point
            FrameKind::Bye => break,
        }
        drop(inner);
    }
    // Dead or poisoned connection: make sure the paired writer notices
    // promptly (its next write fails) instead of waiting for a timeout.
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn protocol_error<M: Send + 'static>(inner: &Arc<Plane<M>>, peer: Option<u16>, err: &WireError) {
    inner.counter("net.tcp.protocol_error").inc();
    let kind = match err {
        WireError::BadMagic(_) => "bad_magic",
        WireError::BadVersion(_) => "bad_version",
        WireError::BadKind(_) => "bad_kind",
        WireError::Oversize(_) => "oversize",
        WireError::BadCrc { .. } => "bad_crc",
        WireError::Truncated => "truncated",
        WireError::Malformed(_) => "malformed",
    };
    inner
        .counter(&format!("net.tcp.protocol_error.{kind}"))
        .inc();
    // The stream cannot be resynchronized; the caller severs it. Mark
    // the link degraded so the gauge shows the wound until reconnect.
    if let Some(node) = peer {
        let links = inner.links.read();
        if let Some(link) = links.get(&node) {
            link.set_gauge(PeerState::Degraded);
        }
    }
}

fn touch_peer<M: Send + 'static>(inner: &Arc<Plane<M>>, node: u16) {
    let links = inner.links.read();
    if let Some(link) = links.get(&node) {
        let mut fsm = link.fsm.lock();
        let before = fsm.state();
        fsm.on_activity(inner.now_ms());
        let after = fsm.state();
        drop(fsm);
        if before != after {
            link.set_gauge(after);
        }
    }
}

// ---------------------------------------------------------------------
// The writer: owns the link's connection lifecycle.

/// Obtain a connection (dial with backoff, or wait for an accepted one),
/// handshake, then pump the control + data queues through it while
/// ticking the supervisor. One long-lived thread per link.
fn writer_loop<M>(plane: Weak<Plane<M>>, link: Arc<Link>)
where
    M: WireMsg + MsgClass + Send + Clone + 'static,
{
    loop {
        let Some(inner) = plane.upgrade() else { return };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // --- obtain a connection ---------------------------------
        let stream = match link.dial {
            Some(addr) => {
                let timeout = Duration::from_millis(inner.cfg.connect_timeout_ms);
                match TcpStream::connect_timeout(&addr, timeout) {
                    Ok(s) => s,
                    Err(_) => {
                        inner.counter("net.tcp.dial_fail").inc();
                        let delay = {
                            let mut fsm = link.fsm.lock();
                            let d = fsm.on_disconnect(inner.now_ms());
                            link.set_gauge(fsm.state());
                            d
                        };
                        inner.counter("net.tcp.backoff_ms").add(delay);
                        drop(inner);
                        sleep_watching(&plane, delay);
                        continue;
                    }
                }
            }
            None => {
                // Inbound-only link: wait for the accept loop's deposit.
                let mut slot = link.inbound.lock();
                while slot.is_none() {
                    link.inbound_cv
                        .wait_for(&mut slot, Duration::from_millis(100));
                    let Some(inner) = plane.upgrade() else { return };
                    if inner.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                }
                slot.take().expect("checked above")
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(inner.cfg.write_timeout_ms)));
        if let Ok(clone) = stream.try_clone() {
            inner.conns.lock().push(clone);
        }

        // --- handshake -------------------------------------------
        let hello = encode_hello(inner.cfg.node, &inner.local_names.read().clone());
        let mut stream = stream;
        if stream
            .write_all(&encode_frame(FrameKind::Hello, &hello))
            .is_err()
        {
            disconnect(&plane, &link, &mut stream);
            continue;
        }
        {
            let mut fsm = link.fsm.lock();
            let was_retrying = fsm.dial_attempts() > 0;
            fsm.on_connected(inner.now_ms());
            link.set_gauge(fsm.state());
            inner.counter("net.tcp.connect").inc();
            if was_retrying {
                inner.counter("net.tcp.reconnect").inc();
            }
        }
        // A dialed connection needs its own reader (accepted ones were
        // given a reader by the accept loop).
        if link.dial.is_some() {
            if let Ok(read_half) = stream.try_clone() {
                let weak = Weak::clone(&plane);
                let node = link.node;
                std::thread::Builder::new()
                    .name(format!("ceh-tcp-read-{}-{}", inner.cfg.node, node))
                    .spawn(move || reader_loop(weak, read_half, Some(node)))
                    .expect("spawn reader");
            }
        }
        drop(inner);

        // --- pump ------------------------------------------------
        'pump: loop {
            let Some(inner) = plane.upgrade() else { return };
            if inner.shutdown.load(Ordering::Acquire) {
                let _ = stream.write_all(&encode_frame(FrameKind::Bye, &[]));
                return;
            }
            // Liveness.
            let action = {
                let mut fsm = link.fsm.lock();
                let a = fsm.tick(inner.now_ms());
                link.set_gauge(fsm.state());
                a
            };
            match action {
                TickAction::SendPing => {
                    if stream
                        .write_all(&encode_frame(FrameKind::Ping, &[]))
                        .is_err()
                    {
                        disconnect(&plane, &link, &mut stream);
                        break 'pump;
                    }
                }
                TickAction::Degrade => {
                    inner.counter("net.tcp.degraded").inc();
                }
                TickAction::Sever => {
                    inner.counter("net.tcp.liveness_sever").inc();
                    disconnect(&plane, &link, &mut stream);
                    break 'pump;
                }
                TickAction::None => {}
            }
            // Control frames first — supervision and name replication
            // must flow even when data is being shed.
            let mut ctrl_dead = false;
            while let Ok(bytes) = link.ctrl_rx.try_recv() {
                if stream.write_all(&bytes).is_err() {
                    disconnect(&plane, &link, &mut stream);
                    ctrl_dead = true;
                    break;
                }
            }
            if ctrl_dead {
                break 'pump;
            }
            let send_hist = inner.metrics.histogram("net.tcp.frame.send_bytes");
            drop(inner);
            match link.data_rx.recv_timeout(Duration::from_millis(25)) {
                Ok(frame) => {
                    if frame.delay_ms > 0 {
                        // Injected delay holds the whole link (head-of-
                        // line), which is exactly what a stalled socket
                        // does to a real connection.
                        sleep_watching(&plane, frame.delay_ms);
                    }
                    if stream.write_all(&frame.bytes).is_err() {
                        disconnect(&plane, &link, &mut stream);
                        break 'pump;
                    }
                    send_hist.record(frame.bytes.len() as u64);
                    if frame.sever {
                        let Some(inner) = plane.upgrade() else { return };
                        inner.counter("net.tcp.injected_sever").inc();
                        drop(inner);
                        disconnect(&plane, &link, &mut stream);
                        break 'pump;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

/// Tear the connection down, transition the FSM, pay the backoff.
fn disconnect<M: Send + 'static>(plane: &Weak<Plane<M>>, link: &Arc<Link>, stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Both);
    let Some(inner) = plane.upgrade() else { return };
    let delay = {
        let mut fsm = link.fsm.lock();
        let d = fsm.on_disconnect(inner.now_ms());
        link.set_gauge(fsm.state());
        d
    };
    inner.counter("net.tcp.backoff_ms").add(delay);
    drop(inner);
    if link.dial.is_some() {
        sleep_watching(plane, delay);
    }
    // Inbound-only links do not redial: the writer loops back to waiting
    // on the accept deposit, which is the peer's redial arriving.
}

/// Sleep in small slices, bailing out early at shutdown.
fn sleep_watching<M: Send + 'static>(plane: &Weak<Plane<M>>, total_ms: u64) {
    let mut left = total_ms;
    while left > 0 {
        let step = left.min(20);
        std::thread::sleep(Duration::from_millis(step));
        left -= step;
        let Some(inner) = plane.upgrade() else { return };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        drop(inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::RecvError;
    use std::net::{IpAddr, Ipv4Addr};

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u64);
    impl MsgClass for TestMsg {
        fn class(&self) -> &'static str {
            "test"
        }
    }
    impl WireMsg for TestMsg {
        fn wire_encode(&self, w: &mut WireWriter) {
            w.u64(self.0);
        }
        fn wire_decode(bytes: &[u8]) -> Result<Self, WireError> {
            let mut r = WireReader::new(bytes);
            let v = r.u64()?;
            r.finish()?;
            Ok(TestMsg(v))
        }
    }

    fn loopback() -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)
    }

    fn recv_deadline<M: Send + 'static>(rx: &PortRx<M>, secs: u64) -> Result<M, RecvError> {
        rx.recv_timeout(Duration::from_secs(secs))
    }

    #[test]
    fn two_planes_roundtrip_with_name_replication() {
        let metrics = ceh_obs::MetricsHandle::new();
        let a: TcpPlane<TestMsg> =
            TcpPlane::start(TcpConfig::new(1).listen(loopback()), &metrics).unwrap();
        let (port, rx) = a.create_port();
        a.register_name("svc", port);

        let b: TcpPlane<TestMsg> = TcpPlane::start(
            TcpConfig::new(2).peer(1, a.local_addr().unwrap()),
            &ceh_obs::MetricsHandle::new(),
        )
        .unwrap();
        // The hello handshake replicates "svc" to b.
        let deadline = Instant::now() + Duration::from_secs(5);
        let resolved = loop {
            if let Some(p) = b.lookup("svc") {
                break p;
            }
            assert!(Instant::now() < deadline, "name never replicated");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(resolved, port);
        assert_eq!(resolved.node(), 1);

        assert!(b.send(resolved, TestMsg(42)));
        assert_eq!(recv_deadline(&rx, 5).unwrap(), TestMsg(42));
        assert_eq!(b.stats().get("test"), 1);

        // Reply path: server → client over the accepted connection.
        let (bp, brx) = b.create_port();
        b.register_name("client", bp);
        let deadline = Instant::now() + Duration::from_secs(5);
        let back = loop {
            if let Some(p) = a.lookup("client") {
                break p;
            }
            assert!(Instant::now() < deadline, "bind never replicated");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(a.send(back, TestMsg(7)));
        assert_eq!(recv_deadline(&brx, 5).unwrap(), TestMsg(7));

        b.close();
        a.close();
    }

    #[test]
    fn local_sends_never_touch_a_socket() {
        let metrics = ceh_obs::MetricsHandle::new();
        let a: TcpPlane<TestMsg> = TcpPlane::start(TcpConfig::new(3), &metrics).unwrap();
        let (port, rx) = a.create_port();
        assert!(a.send(port, TestMsg(9)));
        assert_eq!(rx.recv().unwrap(), TestMsg(9));
        assert!(
            !a.send(PortId::for_node(3, 9999), TestMsg(1)),
            "dead local port"
        );
        a.close();
    }
}
