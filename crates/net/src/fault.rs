//! The fault plane: seeded, deterministic message-level fault injection.
//!
//! §3 assumes "reliable delivery" from the transport, but the paper's
//! liveness story — "a request can be made to any of the copies and
//! eventually it will reach the desired data" — is only interesting when
//! something goes wrong. A [`FaultPlan`] makes the simulated network
//! lossy on purpose:
//!
//! * **per-class drop probability** — each send of a matching class is
//!   eaten with probability `p`;
//! * **per-class duplication probability** — each send of a matching
//!   class is delivered twice with probability `p` (the duplicate takes
//!   an independently sampled latency, so it can also arrive *reordered*);
//! * **port blackholes** — every message toward a port vanishes (a
//!   crashed process whose mail falls on the floor);
//! * **one-way cuts** — messages of one class toward one port vanish
//!   while everything else flows (a one-way partition of that link).
//!
//! The real transport ([`crate::TcpPlane`]) consumes the same plan at the
//! *socket* boundary, where three more fault shapes become meaningful:
//!
//! * **garble** — the frame's payload bytes are flipped in flight; the
//!   receiver's CRC check must catch it (a protocol error, counted and
//!   degraded, never a wedge);
//! * **sever** — the TCP connection carrying the frame is torn down
//!   mid-send; the supervisor must reconnect with backoff;
//! * **delay** — the frame is held for a fixed number of milliseconds
//!   before hitting the socket (head-of-line delay, unlike the sim
//!   plane's per-message latency).
//!
//! The simulated plane ignores the socket-only shapes (there is no frame
//! to garble and no connection to sever), so a plan built for a chaos
//! scenario can be installed on either plane: drop/duplicate decisions
//! come from the *same* per-class decision streams on both.
//!
//! Senders in this network are anonymous by design (the paper's
//! port-based communication), so links are identified by *(class,
//! destination)* rather than *(source, destination)*: "the copyupdate
//! traffic into replica 2 is down" is expressible, "manager 3 cannot
//! reach replica 2" is not. The message taxonomy is fine-grained enough
//! (Figure 11) that this is rarely a restriction in practice.
//!
//! # Determinism
//!
//! Every probabilistic decision is a pure function of `(seed, class,
//! n)` where `n` is the per-class sequence number of the send. Two runs
//! that send the same number of messages of a class therefore drop and
//! duplicate exactly the same count of that class — regardless of how
//! threads interleave, because the decision stream per class is fixed in
//! advance. (Which *specific* message draws an unlucky sequence number
//! can still differ between interleavings; counts cannot.) Each fault
//! shape draws from its own salt, so adding a garble rule does not
//! perturb the drop stream.
//!
//! # Validation
//!
//! Probabilities must be in `[0, 1]`. The builders *panic* on anything
//! else — a rate of `7.0` is a bug in the experiment, not a request for
//! certainty, and silently clamping it would make the configured plan
//! and the executed plan differ without a trace. [`FaultPlan::describe`]
//! renders the effective plan for the RunReport so every run records
//! exactly what was injected.

use std::collections::{HashMap, HashSet};

use crate::network::PortId;

/// A probabilistic fault rule: drop/duplicate/garble/sever/delay
/// matching messages.
#[derive(Debug, Clone)]
struct Rule {
    /// Class label this rule applies to; `None` matches every class.
    class: Option<String>,
    /// Probability a matching send is dropped (0.0..=1.0).
    drop: f64,
    /// Probability a matching send is delivered twice (0.0..=1.0).
    duplicate: f64,
    /// Probability a matching frame's bytes are corrupted (TCP only).
    garble: f64,
    /// Probability the connection is severed mid-send (TCP only).
    sever: f64,
    /// Probability a matching frame is held before sending (TCP only).
    delay: f64,
    /// How long a delayed frame is held, in milliseconds.
    delay_ms: u64,
}

impl Rule {
    fn quiet(class: Option<String>) -> Rule {
        Rule {
            class,
            drop: 0.0,
            duplicate: 0.0,
            garble: 0.0,
            sever: 0.0,
            delay: 0.0,
            delay_ms: 0,
        }
    }
}

/// Combined per-class fault probabilities after stacking every matching
/// rule (independent draws: `1 - Π(1 - p)`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultProbs {
    /// Probability the send is dropped.
    pub drop: f64,
    /// Probability the send is delivered twice.
    pub duplicate: f64,
    /// Probability the frame is garbled on the wire (TCP only).
    pub garble: f64,
    /// Probability the connection is severed mid-send (TCP only).
    pub sever: f64,
    /// Probability the frame is delayed before sending (TCP only).
    pub delay: f64,
    /// Hold time for delayed frames (max over matching rules).
    pub delay_ms: u64,
}

impl FaultProbs {
    fn any_message(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0
    }

    fn any_frame(&self) -> bool {
        self.any_message() || self.garble > 0.0 || self.sever > 0.0 || self.delay > 0.0
    }
}

/// A seeded, deterministic fault schedule for a [`crate::SimNetwork`] or
/// a [`crate::TcpPlane`].
///
/// Build one with the fluent methods, then install it via
/// `set_fault_plan` on either plane. Structural faults (blackholes,
/// one-way cuts) are toggled live on the network itself because they
/// model runtime events (crashes, partitions), not a static schedule.
///
/// Probabilities outside `[0, 1]` **panic** in the builder — see the
/// module docs on validation.
///
/// ```
/// use ceh_net::FaultPlan;
/// let plan = FaultPlan::new(0xC4A05)
///     .drop_all(0.05)
///     .duplicate_class("copyupdate", 0.01)
///     .sever_all(0.001);
/// assert!(plan.is_faulty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
    /// Classes the probabilistic rules never touch (admin/control
    /// traffic). Structural faults (blackholes, cuts) still apply: a
    /// crashed process answers nothing, exempt or not.
    exempt: HashSet<String>,
}

impl FaultPlan {
    /// An empty plan with the given RNG seed. Until rules are added it
    /// injects nothing.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            exempt: HashSet::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop every class of message with probability `p`.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn drop_all(mut self, p: f64) -> Self {
        let mut r = Rule::quiet(None);
        r.drop = check_p(p, "drop");
        self.rules.push(r);
        self
    }

    /// Drop messages of `class` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn drop_class(mut self, class: impl Into<String>, p: f64) -> Self {
        let mut r = Rule::quiet(Some(class.into()));
        r.drop = check_p(p, "drop");
        self.rules.push(r);
        self
    }

    /// Drop messages of every listed class with probability `p`.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn drop_classes(mut self, classes: &[&str], p: f64) -> Self {
        for c in classes {
            self = self.drop_class(*c, p);
        }
        self
    }

    /// Deliver every class of message twice with probability `p`.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn duplicate_all(mut self, p: f64) -> Self {
        let mut r = Rule::quiet(None);
        r.duplicate = check_p(p, "duplicate");
        self.rules.push(r);
        self
    }

    /// Deliver messages of `class` twice with probability `p`.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn duplicate_class(mut self, class: impl Into<String>, p: f64) -> Self {
        let mut r = Rule::quiet(Some(class.into()));
        r.duplicate = check_p(p, "duplicate");
        self.rules.push(r);
        self
    }

    /// Deliver messages of every listed class twice with probability `p`.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn duplicate_classes(mut self, classes: &[&str], p: f64) -> Self {
        for c in classes {
            self = self.duplicate_class(*c, p);
        }
        self
    }

    /// Garble (corrupt on the wire) every class of frame with
    /// probability `p`. Socket-only: the simulated plane ignores it.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn garble_all(mut self, p: f64) -> Self {
        let mut r = Rule::quiet(None);
        r.garble = check_p(p, "garble");
        self.rules.push(r);
        self
    }

    /// Garble frames of `class` with probability `p`. Socket-only.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn garble_class(mut self, class: impl Into<String>, p: f64) -> Self {
        let mut r = Rule::quiet(Some(class.into()));
        r.garble = check_p(p, "garble");
        self.rules.push(r);
        self
    }

    /// Garble each class in `classes` with probability `p`.
    /// Socket-only.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn garble_classes(mut self, classes: &[&str], p: f64) -> Self {
        for c in classes {
            self = self.garble_class(*c, p);
        }
        self
    }

    /// Sever the carrying connection on every class of frame with
    /// probability `p`. Socket-only: the simulated plane ignores it.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn sever_all(mut self, p: f64) -> Self {
        let mut r = Rule::quiet(None);
        r.sever = check_p(p, "sever");
        self.rules.push(r);
        self
    }

    /// Sever the carrying connection on frames of `class` with
    /// probability `p`. Socket-only.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn sever_class(mut self, class: impl Into<String>, p: f64) -> Self {
        let mut r = Rule::quiet(Some(class.into()));
        r.sever = check_p(p, "sever");
        self.rules.push(r);
        self
    }

    /// Hold every class of frame for `ms` milliseconds with probability
    /// `p` before it hits the socket. Socket-only.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn delay_all(mut self, p: f64, ms: u64) -> Self {
        let mut r = Rule::quiet(None);
        r.delay = check_p(p, "delay");
        r.delay_ms = ms;
        self.rules.push(r);
        self
    }

    /// Hold frames of `class` for `ms` milliseconds with probability
    /// `p`. Socket-only.
    ///
    /// # Panics
    /// If `p` is not a probability in `[0, 1]`.
    pub fn delay_class(mut self, class: impl Into<String>, p: f64, ms: u64) -> Self {
        let mut r = Rule::quiet(Some(class.into()));
        r.delay = check_p(p, "delay");
        r.delay_ms = ms;
        self.rules.push(r);
        self
    }

    /// Exempt `class` from every probabilistic rule, present and
    /// future — including the `*_all` wildcards. The observability
    /// plane installs this for its stats traffic: a chaos plan that
    /// drops every application frame must not blind the dashboard
    /// watching the chaos. Structural faults (blackholes, one-way
    /// cuts) are *not* bypassed: they model a dead process or a cut
    /// link, and those answer nothing regardless of class.
    pub fn exempt_class(mut self, class: impl Into<String>) -> Self {
        self.exempt.insert(class.into());
        self
    }

    /// Exempt every listed class (see [`FaultPlan::exempt_class`]).
    pub fn exempt_classes(mut self, classes: &[&str]) -> Self {
        for c in classes {
            self.exempt.insert((*c).to_string());
        }
        self
    }

    /// Is `class` exempt from the probabilistic rules?
    pub fn is_exempt(&self, class: &str) -> bool {
        self.exempt.contains(class)
    }

    /// Does this plan inject any probabilistic faults at all?
    pub fn is_faulty(&self) -> bool {
        self.rules.iter().any(|r| {
            r.drop > 0.0 || r.duplicate > 0.0 || r.garble > 0.0 || r.sever > 0.0 || r.delay > 0.0
        })
    }

    /// Render the effective plan for the RunReport: seed plus every
    /// rule, so a run's record states exactly what was injected.
    pub fn describe(&self) -> String {
        let mut out = format!("seed={:#x}", self.seed);
        for r in &self.rules {
            let target = r.class.as_deref().unwrap_or("*");
            for (label, p) in [
                ("drop", r.drop),
                ("dup", r.duplicate),
                ("garble", r.garble),
                ("sever", r.sever),
            ] {
                if p > 0.0 {
                    out.push_str(&format!(" {label}({target})={p}"));
                }
            }
            if r.delay > 0.0 {
                out.push_str(&format!(" delay({target})={}@{}ms", r.delay, r.delay_ms));
            }
        }
        if !self.exempt.is_empty() {
            let mut classes: Vec<&str> = self.exempt.iter().map(String::as_str).collect();
            classes.sort_unstable();
            out.push_str(&format!(" exempt({})", classes.join(",")));
        }
        out
    }

    /// Combined per-class fault probabilities: rules stack by
    /// independent draws, so probabilities combine as `1 - Π(1 - p)`
    /// (and delay hold times combine as the max over matching rules).
    pub fn probabilities(&self, class: &str) -> FaultProbs {
        if self.exempt.contains(class) {
            return FaultProbs::default();
        }
        let mut keep = [1.0f64; 5];
        let mut delay_ms = 0u64;
        for r in &self.rules {
            if r.class.as_deref().map_or(true, |c| c == class) {
                keep[0] *= 1.0 - r.drop;
                keep[1] *= 1.0 - r.duplicate;
                keep[2] *= 1.0 - r.garble;
                keep[3] *= 1.0 - r.sever;
                keep[4] *= 1.0 - r.delay;
                if r.delay > 0.0 {
                    delay_ms = delay_ms.max(r.delay_ms);
                }
            }
        }
        FaultProbs {
            drop: 1.0 - keep[0],
            duplicate: 1.0 - keep[1],
            garble: 1.0 - keep[2],
            sever: 1.0 - keep[3],
            delay: 1.0 - keep[4],
            delay_ms,
        }
    }
}

/// Builder-time probability validation: anything outside `[0, 1]`
/// (including NaN) is a configuration bug and panics with the offending
/// value — never silently clamped.
fn check_p(p: f64, what: &str) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p),
        "FaultPlan: {what} probability {p} is not in [0, 1]"
    );
    p
}

/// SplitMix64: a tiny, high-quality mixing function. Used to derive the
/// per-(seed, class, sequence, salt) uniform variate so every decision is
/// a pure function of its inputs (and by the supervisor's backoff jitter).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the class label: a stable per-class salt.
fn class_salt(class: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in class.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A uniform f64 in [0, 1) from the decision inputs.
fn uniform(seed: u64, class: &str, seq: u64, salt: u64) -> f64 {
    let bits = splitmix64(seed ^ class_salt(class) ^ splitmix64(seq) ^ salt);
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-shape decision salts. Distinct salts give each fault shape an
/// independent decision stream from the same per-class sequence, so a
/// plan gaining a garble rule does not perturb which sends get dropped.
const SALT_DROP: u64 = 0xD809;
const SALT_DUP: u64 = 0xD0BB;
const SALT_GARBLE: u64 = 0x6A4B;
const SALT_SEVER: u64 = 0x5EAE;
const SALT_DELAY: u64 = 0xDE1A;

/// What the fault plane decided for one send (simulated plane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Deliver twice.
    Duplicate,
    /// Eat the message.
    Drop,
}

/// What the fault plane decided for one *frame* (TCP plane). A frame
/// can draw several shapes at once; they compose left to right: a
/// dropped frame never garbles, but a duplicated frame can also be
/// garbled, the sever fires after any delivery, and so on. The plane
/// applies them in the struct's field order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameVerdict {
    /// Eat the frame (never reaches the socket).
    pub drop: bool,
    /// Send the frame twice.
    pub duplicate: bool,
    /// Corrupt the payload bytes on the wire.
    pub garble: bool,
    /// Tear down the connection after this frame's fate is applied.
    pub sever: bool,
    /// Hold the frame this long before sending (0 = no delay).
    pub delay_ms: u64,
}

impl FrameVerdict {
    /// No fault at all — the frame goes out untouched.
    pub fn is_clean(&self) -> bool {
        *self == FrameVerdict::default()
    }
}

/// Live fault state owned by the network: the installed plan plus the
/// runtime structural faults and the per-class decision counters.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    plan: Option<FaultPlan>,
    /// Per-class sequence numbers driving the deterministic decisions.
    class_seq: HashMap<&'static str, u64>,
    /// Ports whose entire inbound traffic is eaten.
    blackholes: HashSet<PortId>,
    /// (class, port) pairs whose inbound traffic is eaten.
    cuts: HashSet<(String, PortId)>,
}

impl FaultState {
    pub(crate) fn set_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
        self.class_seq.clear();
    }

    pub(crate) fn blackhole(&mut self, port: PortId) {
        self.blackholes.insert(port);
    }

    pub(crate) fn heal_blackhole(&mut self, port: PortId) {
        self.blackholes.remove(&port);
    }

    pub(crate) fn cut(&mut self, class: &str, port: PortId) {
        self.cuts.insert((class.to_string(), port));
    }

    pub(crate) fn heal_cut(&mut self, class: &str, port: PortId) {
        self.cuts.remove(&(class.to_string(), port));
    }

    /// Nothing installed and nothing cut? (Fast-path check; callers skip
    /// the verdict entirely.)
    pub(crate) fn is_quiet(&self) -> bool {
        self.plan.as_ref().map_or(true, |p| !p.is_faulty())
            && self.blackholes.is_empty()
            && self.cuts.is_empty()
    }

    fn structural_drop(&self, class: &'static str, to: PortId) -> bool {
        self.blackholes.contains(&to)
            || (!self.cuts.is_empty() && self.cuts.contains(&(class.to_string(), to)))
    }

    /// Decide the fate of one send on the simulated plane. Only the
    /// message-level shapes apply: there is no frame to garble and no
    /// connection to sever.
    pub(crate) fn verdict(&mut self, class: &'static str, to: PortId) -> Verdict {
        if self.structural_drop(class, to) {
            return Verdict::Drop;
        }
        let Some(plan) = &self.plan else {
            return Verdict::Deliver;
        };
        let probs = plan.probabilities(class);
        if !probs.any_message() {
            return Verdict::Deliver;
        }
        let seq = self.class_seq.entry(class).or_insert(0);
        let n = *seq;
        *seq += 1;
        if probs.drop > 0.0 && uniform(plan.seed, class, n, SALT_DROP) < probs.drop {
            return Verdict::Drop;
        }
        if probs.duplicate > 0.0 && uniform(plan.seed, class, n, SALT_DUP) < probs.duplicate {
            return Verdict::Duplicate;
        }
        Verdict::Deliver
    }

    /// Decide the fate of one frame on the TCP plane. Shares the
    /// per-class sequence with [`FaultState::verdict`], and the drop/dup
    /// draws use the same salts — so a plan that only drops and
    /// duplicates makes *identical* per-class decisions on both planes.
    pub(crate) fn frame_verdict(&mut self, class: &'static str, to: PortId) -> FrameVerdict {
        if self.structural_drop(class, to) {
            return FrameVerdict {
                drop: true,
                ..FrameVerdict::default()
            };
        }
        let Some(plan) = &self.plan else {
            return FrameVerdict::default();
        };
        let probs = plan.probabilities(class);
        if !probs.any_frame() {
            return FrameVerdict::default();
        }
        let seq = self.class_seq.entry(class).or_insert(0);
        let n = *seq;
        *seq += 1;
        let seed = plan.seed;
        let draw = |p: f64, salt: u64| p > 0.0 && uniform(seed, class, n, salt) < p;
        FrameVerdict {
            drop: draw(probs.drop, SALT_DROP),
            duplicate: draw(probs.duplicate, SALT_DUP),
            garble: draw(probs.garble, SALT_GARBLE),
            sever: draw(probs.sever, SALT_SEVER),
            delay_ms: if draw(probs.delay, SALT_DELAY) {
                probs.delay_ms
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_quiet() {
        let mut st = FaultState::default();
        st.set_plan(Some(FaultPlan::new(1)));
        assert!(st.is_quiet());
        assert_eq!(st.verdict("find", PortId(1)), Verdict::Deliver);
        assert!(st.frame_verdict("find", PortId(1)).is_clean());
    }

    #[test]
    fn decisions_are_deterministic_per_class_sequence() {
        let plan = FaultPlan::new(42).drop_all(0.3).duplicate_all(0.1);
        let mut a = FaultState::default();
        let mut b = FaultState::default();
        a.set_plan(Some(plan.clone()));
        b.set_plan(Some(plan));
        for i in 0..1000 {
            // Different destination ports must not perturb the stream.
            let va = a.verdict("find", PortId(i % 7));
            let vb = b.verdict("find", PortId(100 + i % 3));
            assert_eq!(va, vb, "decision {i} diverged");
        }
    }

    #[test]
    fn interleaving_classes_does_not_change_per_class_decisions() {
        let plan = FaultPlan::new(7).drop_all(0.5);
        let mut pure = FaultState::default();
        pure.set_plan(Some(plan.clone()));
        let pure_stream: Vec<_> = (0..200).map(|_| pure.verdict("find", PortId(0))).collect();

        let mut mixed = FaultState::default();
        mixed.set_plan(Some(plan));
        let mut mixed_stream = Vec::new();
        for i in 0..200 {
            // Interleave other-class traffic between every find.
            for _ in 0..(i % 3) {
                mixed.verdict("copyupdate", PortId(9));
            }
            mixed_stream.push(mixed.verdict("find", PortId(0)));
        }
        assert_eq!(pure_stream, mixed_stream);
    }

    #[test]
    fn drop_rate_lands_near_probability() {
        let mut st = FaultState::default();
        st.set_plan(Some(FaultPlan::new(3).drop_class("find", 0.05)));
        let drops = (0..20_000)
            .filter(|_| st.verdict("find", PortId(0)) == Verdict::Drop)
            .count();
        assert!(
            (800..1200).contains(&drops),
            "5% of 20k ≈ 1000, got {drops}"
        );
        // Unmatched classes untouched.
        assert_eq!(st.verdict("insert", PortId(0)), Verdict::Deliver);
    }

    #[test]
    fn blackholes_and_cuts_are_structural_and_healable() {
        let mut st = FaultState::default();
        st.blackhole(PortId(5));
        assert_eq!(st.verdict("find", PortId(5)), Verdict::Drop);
        assert_eq!(st.verdict("find", PortId(6)), Verdict::Deliver);
        st.heal_blackhole(PortId(5));
        assert_eq!(st.verdict("find", PortId(5)), Verdict::Deliver);

        st.cut("copyupdate", PortId(2));
        assert_eq!(st.verdict("copyupdate", PortId(2)), Verdict::Drop);
        assert_eq!(
            st.verdict("copy-ack", PortId(2)),
            Verdict::Deliver,
            "one-way"
        );
        st.heal_cut("copyupdate", PortId(2));
        assert_eq!(st.verdict("copyupdate", PortId(2)), Verdict::Deliver);
    }

    #[test]
    fn stacked_rules_combine() {
        let plan = FaultPlan::new(0).drop_all(0.5).drop_class("find", 0.5);
        let p = plan.probabilities("find");
        assert!((p.drop - 0.75).abs() < 1e-9);
        let p_other = plan.probabilities("insert");
        assert!((p_other.drop - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "drop probability 7 is not in [0, 1]")]
    fn out_of_range_probability_panics_instead_of_clamping() {
        let _ = FaultPlan::new(0).drop_all(7.0);
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn nan_probability_panics() {
        let _ = FaultPlan::new(0).sever_all(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "duplicate probability -0.1 is not in [0, 1]")]
    fn negative_probability_panics() {
        let _ = FaultPlan::new(0).duplicate_class("find", -0.1);
    }

    #[test]
    fn describe_renders_the_effective_plan() {
        let plan = FaultPlan::new(0xC4A05)
            .drop_all(0.05)
            .duplicate_class("copyupdate", 0.01)
            .garble_class("find", 0.02)
            .sever_all(0.001)
            .delay_class("insert", 0.1, 25);
        let d = plan.describe();
        assert!(d.contains("seed=0xc4a05"), "{d}");
        assert!(d.contains("drop(*)=0.05"), "{d}");
        assert!(d.contains("dup(copyupdate)=0.01"), "{d}");
        assert!(d.contains("garble(find)=0.02"), "{d}");
        assert!(d.contains("sever(*)=0.001"), "{d}");
        assert!(d.contains("delay(insert)=0.1@25ms"), "{d}");
    }

    #[test]
    fn exempt_classes_bypass_even_wildcard_rules_but_not_structural_faults() {
        // The admin plane's contract: a chaos plan that drops, severs,
        // and delays EVERYTHING must leave exempt (stats) traffic
        // untouched...
        let plan = FaultPlan::new(13)
            .drop_all(1.0)
            .sever_all(1.0)
            .delay_all(1.0, 50)
            .exempt_classes(&["stats-request", "stats-reply"]);
        assert!(plan.is_exempt("stats-request"));
        assert!(!plan.is_exempt("request"));
        assert_eq!(plan.probabilities("stats-reply"), FaultProbs::default());
        assert_eq!(plan.probabilities("request").drop, 1.0);
        assert!(plan
            .describe()
            .contains("exempt(stats-reply,stats-request)"));

        let mut st = FaultState::default();
        st.set_plan(Some(plan));
        for _ in 0..100 {
            assert_eq!(st.verdict("stats-request", PortId(1)), Verdict::Deliver);
            assert!(st.frame_verdict("stats-reply", PortId(1)).is_clean());
            assert_eq!(st.verdict("request", PortId(1)), Verdict::Drop);
        }
        // ...but a blackholed (dead) port still answers nothing.
        st.blackhole(PortId(2));
        assert_eq!(st.verdict("stats-request", PortId(2)), Verdict::Drop);
        assert!(st.frame_verdict("stats-request", PortId(2)).drop);
    }

    #[test]
    fn frame_and_message_drop_streams_align() {
        // A drop/dup-only plan must make the same per-class decisions
        // whether consumed as message verdicts (sim) or frame verdicts
        // (TCP): the chaos suite's seeded scenarios carry over.
        let plan = FaultPlan::new(99).drop_all(0.3).duplicate_all(0.2);
        let mut sim = FaultState::default();
        let mut tcp = FaultState::default();
        sim.set_plan(Some(plan.clone()));
        tcp.set_plan(Some(plan));
        for i in 0..2000 {
            let m = sim.verdict("request", PortId(1));
            let f = tcp.frame_verdict("request", PortId(1));
            assert_eq!(m == Verdict::Drop, f.drop, "send {i}");
            assert_eq!(m == Verdict::Duplicate, f.duplicate && !f.drop, "send {i}");
        }
    }

    #[test]
    fn socket_shapes_draw_independent_streams() {
        let base = FaultPlan::new(5).drop_all(0.25);
        let extended = FaultPlan::new(5).drop_all(0.25).garble_all(0.5);
        let mut a = FaultState::default();
        let mut b = FaultState::default();
        a.set_plan(Some(base));
        b.set_plan(Some(extended));
        let mut garbles = 0;
        for i in 0..2000 {
            let fa = a.frame_verdict("find", PortId(0));
            let fb = b.frame_verdict("find", PortId(0));
            assert_eq!(fa.drop, fb.drop, "garble rule perturbed drops at {i}");
            assert!(!fa.garble);
            garbles += fb.garble as usize;
        }
        assert!((800..1200).contains(&garbles), "50% of 2000, got {garbles}");
    }

    #[test]
    fn delay_and_sever_fire_at_about_their_rates() {
        let mut st = FaultState::default();
        st.set_plan(Some(FaultPlan::new(11).delay_all(0.5, 40).sever_all(0.1)));
        let (mut delays, mut severs) = (0, 0);
        for _ in 0..2000 {
            let f = st.frame_verdict("update", PortId(3));
            if f.delay_ms > 0 {
                assert_eq!(f.delay_ms, 40);
                delays += 1;
            }
            severs += f.sever as usize;
        }
        assert!((800..1200).contains(&delays), "got {delays}");
        assert!((120..280).contains(&severs), "got {severs}");
    }
}
