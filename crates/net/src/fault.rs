//! The fault plane: seeded, deterministic message-level fault injection.
//!
//! §3 assumes "reliable delivery" from the transport, but the paper's
//! liveness story — "a request can be made to any of the copies and
//! eventually it will reach the desired data" — is only interesting when
//! something goes wrong. A [`FaultPlan`] makes the simulated network
//! lossy on purpose:
//!
//! * **per-class drop probability** — each send of a matching class is
//!   eaten with probability `p`;
//! * **per-class duplication probability** — each send of a matching
//!   class is delivered twice with probability `p` (the duplicate takes
//!   an independently sampled latency, so it can also arrive *reordered*);
//! * **port blackholes** — every message toward a port vanishes (a
//!   crashed process whose mail falls on the floor);
//! * **one-way cuts** — messages of one class toward one port vanish
//!   while everything else flows (a one-way partition of that link).
//!
//! Senders in this network are anonymous by design (the paper's
//! port-based communication), so links are identified by *(class,
//! destination)* rather than *(source, destination)*: "the copyupdate
//! traffic into replica 2 is down" is expressible, "manager 3 cannot
//! reach replica 2" is not. The message taxonomy is fine-grained enough
//! (Figure 11) that this is rarely a restriction in practice.
//!
//! # Determinism
//!
//! Every probabilistic decision is a pure function of `(seed, class,
//! n)` where `n` is the per-class sequence number of the send. Two runs
//! that send the same number of messages of a class therefore drop and
//! duplicate exactly the same count of that class — regardless of how
//! threads interleave, because the decision stream per class is fixed in
//! advance. (Which *specific* message draws an unlucky sequence number
//! can still differ between interleavings; counts cannot.)

use std::collections::{HashMap, HashSet};

use crate::network::PortId;

/// A probabilistic fault rule: drop and/or duplicate matching messages.
#[derive(Debug, Clone)]
struct Rule {
    /// Class label this rule applies to; `None` matches every class.
    class: Option<String>,
    /// Probability a matching send is dropped (0.0..=1.0).
    drop: f64,
    /// Probability a matching send is delivered twice (0.0..=1.0).
    duplicate: f64,
}

/// A seeded, deterministic fault schedule for a [`crate::SimNetwork`].
///
/// Build one with the fluent methods, then install it via
/// [`crate::SimNetwork::set_fault_plan`]. Structural faults (blackholes,
/// one-way cuts) are toggled live on the network itself because they
/// model runtime events (crashes, partitions), not a static schedule.
///
/// ```
/// use ceh_net::FaultPlan;
/// let plan = FaultPlan::new(0xC4A05)
///     .drop_all(0.05)
///     .duplicate_class("copyupdate", 0.01);
/// assert!(plan.is_faulty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlan {
    /// An empty plan with the given RNG seed. Until rules are added it
    /// injects nothing.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop every class of message with probability `p`.
    pub fn drop_all(mut self, p: f64) -> Self {
        self.rules.push(Rule {
            class: None,
            drop: clamp01(p),
            duplicate: 0.0,
        });
        self
    }

    /// Drop messages of `class` with probability `p`.
    pub fn drop_class(mut self, class: impl Into<String>, p: f64) -> Self {
        self.rules.push(Rule {
            class: Some(class.into()),
            drop: clamp01(p),
            duplicate: 0.0,
        });
        self
    }

    /// Drop messages of every listed class with probability `p`.
    pub fn drop_classes(mut self, classes: &[&str], p: f64) -> Self {
        for c in classes {
            self = self.drop_class(*c, p);
        }
        self
    }

    /// Deliver every class of message twice with probability `p`.
    pub fn duplicate_all(mut self, p: f64) -> Self {
        self.rules.push(Rule {
            class: None,
            drop: 0.0,
            duplicate: clamp01(p),
        });
        self
    }

    /// Deliver messages of `class` twice with probability `p`.
    pub fn duplicate_class(mut self, class: impl Into<String>, p: f64) -> Self {
        self.rules.push(Rule {
            class: Some(class.into()),
            drop: 0.0,
            duplicate: clamp01(p),
        });
        self
    }

    /// Deliver messages of every listed class twice with probability `p`.
    pub fn duplicate_classes(mut self, classes: &[&str], p: f64) -> Self {
        for c in classes {
            self = self.duplicate_class(*c, p);
        }
        self
    }

    /// Does this plan inject any probabilistic faults at all?
    pub fn is_faulty(&self) -> bool {
        self.rules.iter().any(|r| r.drop > 0.0 || r.duplicate > 0.0)
    }

    /// Combined (drop, duplicate) probability for a class: rules stack by
    /// independent draws, so probabilities combine as `1 - Π(1 - p)`.
    fn probabilities(&self, class: &str) -> (f64, f64) {
        let mut keep = 1.0;
        let mut single = 1.0;
        for r in &self.rules {
            if r.class.as_deref().map_or(true, |c| c == class) {
                keep *= 1.0 - r.drop;
                single *= 1.0 - r.duplicate;
            }
        }
        (1.0 - keep, 1.0 - single)
    }
}

fn clamp01(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

/// SplitMix64: a tiny, high-quality mixing function. Used to derive the
/// per-(seed, class, sequence, salt) uniform variate so every decision is
/// a pure function of its inputs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the class label: a stable per-class salt.
fn class_salt(class: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in class.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A uniform f64 in [0, 1) from the decision inputs.
fn uniform(seed: u64, class: &str, seq: u64, salt: u64) -> f64 {
    let bits = splitmix64(seed ^ class_salt(class) ^ splitmix64(seq) ^ salt);
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// What the fault plane decided for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Deliver twice.
    Duplicate,
    /// Eat the message.
    Drop,
}

/// Live fault state owned by the network: the installed plan plus the
/// runtime structural faults and the per-class decision counters.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    plan: Option<FaultPlan>,
    /// Per-class sequence numbers driving the deterministic decisions.
    class_seq: HashMap<&'static str, u64>,
    /// Ports whose entire inbound traffic is eaten.
    blackholes: HashSet<PortId>,
    /// (class, port) pairs whose inbound traffic is eaten.
    cuts: HashSet<(String, PortId)>,
}

impl FaultState {
    pub(crate) fn set_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
        self.class_seq.clear();
    }

    pub(crate) fn blackhole(&mut self, port: PortId) {
        self.blackholes.insert(port);
    }

    pub(crate) fn heal_blackhole(&mut self, port: PortId) {
        self.blackholes.remove(&port);
    }

    pub(crate) fn cut(&mut self, class: &str, port: PortId) {
        self.cuts.insert((class.to_string(), port));
    }

    pub(crate) fn heal_cut(&mut self, class: &str, port: PortId) {
        self.cuts.remove(&(class.to_string(), port));
    }

    /// Nothing installed and nothing cut? (Fast-path check; callers skip
    /// the verdict entirely.)
    pub(crate) fn is_quiet(&self) -> bool {
        self.plan.as_ref().map_or(true, |p| !p.is_faulty())
            && self.blackholes.is_empty()
            && self.cuts.is_empty()
    }

    /// Decide the fate of one send.
    pub(crate) fn verdict(&mut self, class: &'static str, to: PortId) -> Verdict {
        if self.blackholes.contains(&to) {
            return Verdict::Drop;
        }
        if !self.cuts.is_empty() && self.cuts.contains(&(class.to_string(), to)) {
            return Verdict::Drop;
        }
        let Some(plan) = &self.plan else {
            return Verdict::Deliver;
        };
        let (p_drop, p_dup) = plan.probabilities(class);
        if p_drop == 0.0 && p_dup == 0.0 {
            return Verdict::Deliver;
        }
        let seq = self.class_seq.entry(class).or_insert(0);
        let n = *seq;
        *seq += 1;
        if p_drop > 0.0 && uniform(plan.seed, class, n, 0xD809) < p_drop {
            return Verdict::Drop;
        }
        if p_dup > 0.0 && uniform(plan.seed, class, n, 0xD0BB) < p_dup {
            return Verdict::Duplicate;
        }
        Verdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_quiet() {
        let mut st = FaultState::default();
        st.set_plan(Some(FaultPlan::new(1)));
        assert!(st.is_quiet());
        assert_eq!(st.verdict("find", PortId(1)), Verdict::Deliver);
    }

    #[test]
    fn decisions_are_deterministic_per_class_sequence() {
        let plan = FaultPlan::new(42).drop_all(0.3).duplicate_all(0.1);
        let mut a = FaultState::default();
        let mut b = FaultState::default();
        a.set_plan(Some(plan.clone()));
        b.set_plan(Some(plan));
        for i in 0..1000 {
            // Different destination ports must not perturb the stream.
            let va = a.verdict("find", PortId(i % 7));
            let vb = b.verdict("find", PortId(100 + i % 3));
            assert_eq!(va, vb, "decision {i} diverged");
        }
    }

    #[test]
    fn interleaving_classes_does_not_change_per_class_decisions() {
        let plan = FaultPlan::new(7).drop_all(0.5);
        let mut pure = FaultState::default();
        pure.set_plan(Some(plan.clone()));
        let pure_stream: Vec<_> = (0..200).map(|_| pure.verdict("find", PortId(0))).collect();

        let mut mixed = FaultState::default();
        mixed.set_plan(Some(plan));
        let mut mixed_stream = Vec::new();
        for i in 0..200 {
            // Interleave other-class traffic between every find.
            for _ in 0..(i % 3) {
                mixed.verdict("copyupdate", PortId(9));
            }
            mixed_stream.push(mixed.verdict("find", PortId(0)));
        }
        assert_eq!(pure_stream, mixed_stream);
    }

    #[test]
    fn drop_rate_lands_near_probability() {
        let mut st = FaultState::default();
        st.set_plan(Some(FaultPlan::new(3).drop_class("find", 0.05)));
        let drops = (0..20_000)
            .filter(|_| st.verdict("find", PortId(0)) == Verdict::Drop)
            .count();
        assert!(
            (800..1200).contains(&drops),
            "5% of 20k ≈ 1000, got {drops}"
        );
        // Unmatched classes untouched.
        assert_eq!(st.verdict("insert", PortId(0)), Verdict::Deliver);
    }

    #[test]
    fn blackholes_and_cuts_are_structural_and_healable() {
        let mut st = FaultState::default();
        st.blackhole(PortId(5));
        assert_eq!(st.verdict("find", PortId(5)), Verdict::Drop);
        assert_eq!(st.verdict("find", PortId(6)), Verdict::Deliver);
        st.heal_blackhole(PortId(5));
        assert_eq!(st.verdict("find", PortId(5)), Verdict::Deliver);

        st.cut("copyupdate", PortId(2));
        assert_eq!(st.verdict("copyupdate", PortId(2)), Verdict::Drop);
        assert_eq!(
            st.verdict("copy-ack", PortId(2)),
            Verdict::Deliver,
            "one-way"
        );
        st.heal_cut("copyupdate", PortId(2));
        assert_eq!(st.verdict("copyupdate", PortId(2)), Verdict::Deliver);
    }

    #[test]
    fn stacked_rules_combine() {
        let plan = FaultPlan::new(0).drop_all(0.5).drop_class("find", 0.5);
        let (p_drop, _) = plan.probabilities("find");
        assert!((p_drop - 0.75).abs() < 1e-9);
        let (p_other, _) = plan.probabilities("insert");
        assert!((p_other - 0.5).abs() < 1e-9);
    }

    #[test]
    fn probabilities_clamped() {
        let plan = FaultPlan::new(0).drop_all(7.0);
        assert_eq!(plan.probabilities("x").0, 1.0);
    }
}
