//! The wire format: length-prefixed frames with version/CRC headers.
//!
//! The TCP plane ([`crate::TcpPlane`]) ships every message inside a
//! *frame*, mirroring the WAL's self-describing record discipline
//! (`crates/storage/src/wal.rs`): a fixed header that can be validated
//! without interpreting the payload, a length that bounds the read, and
//! a CRC32 that catches corruption before decoding is attempted.
//!
//! ```text
//! [magic u32][version u8][kind u8][reserved u16][len u32][crc u32] payload…
//! ```
//!
//! * `magic` — [`WIRE_MAGIC`]; a stream positioned anywhere but a frame
//!   boundary fails this immediately (no resync is attempted: a framing
//!   error degrades the connection, and the supervisor reconnects).
//! * `version` — [`WIRE_VERSION`]; a mismatched peer is rejected with
//!   [`WireError::BadVersion`] instead of being mis-decoded.
//! * `kind` — a [`FrameKind`]: the connection-control vocabulary
//!   (hello/bind/ping/pong/bye) plus [`FrameKind::Msg`] carrying one
//!   [`WireMsg`]-encoded application message.
//! * `len` — payload bytes following the header, bounded by
//!   [`MAX_FRAME_PAYLOAD`] so a corrupt length cannot make the reader
//!   allocate gigabytes.
//! * `crc` — CRC32 (IEEE, the WAL's polynomial) over the payload.
//!
//! Decoding never panics on hostile input: every failure is a
//! [`WireError`], and the transport treats it as a *protocol error* —
//! the connection is severed and re-established, the peer is not wedged.

use std::fmt;

/// First four bytes of every frame.
pub const WIRE_MAGIC: u32 = 0xCE11_F7A3;

/// Current wire-format version. Bump on any incompatible layout change;
/// receivers reject other versions rather than guessing.
pub const WIRE_VERSION: u8 = 1;

/// Frame header bytes on the wire.
pub const FRAME_HEADER_BYTES: usize = 16;

/// Upper bound on a frame payload. Generous for the Figure 10–14
/// message set (the largest message ships one bucket of records); a
/// header claiming more than this is rejected as corrupt before any
/// allocation happens.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
/// checksum the storage WAL uses for its record and frame headers.
/// Table-driven, built at first use; no external dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Connection handshake: the sender's node id plus its current name
    /// bindings. First frame on every connection, both directions.
    Hello,
    /// One name binding (`name → port`), broadcast on registration so
    /// every connected peer can resolve it locally.
    Bind,
    /// One application message: `[to: u64][WireMsg payload]`.
    Msg,
    /// Heartbeat probe (liveness, sent on idle links).
    Ping,
    /// Heartbeat answer.
    Pong,
    /// Orderly goodbye: the peer is closing this connection on purpose
    /// (process shutdown), so the supervisor should not treat the close
    /// as a failure.
    Bye,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Bind => 2,
            FrameKind::Msg => 3,
            FrameKind::Ping => 4,
            FrameKind::Pong => 5,
            FrameKind::Bye => 6,
        }
    }

    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::Bind,
            3 => FrameKind::Msg,
            4 => FrameKind::Ping,
            5 => FrameKind::Pong,
            6 => FrameKind::Bye,
            _ => return None,
        })
    }
}

/// Why a frame (or a message inside one) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first header bytes are not [`WIRE_MAGIC`]: the stream is not
    /// at a frame boundary (or the peer speaks something else entirely).
    BadMagic(u32),
    /// The peer speaks a different wire-format version.
    BadVersion(u8),
    /// Unknown [`FrameKind`] discriminant.
    BadKind(u8),
    /// The header's payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(usize),
    /// The payload failed its CRC — bits rotted in flight.
    BadCrc {
        /// CRC the header promised.
        expected: u32,
        /// CRC of the payload as received.
        got: u32,
    },
    /// The payload ended before the message did (a truncated or
    /// internally inconsistent encoding).
    Truncated,
    /// Structurally well-formed bytes that decode to nonsense (unknown
    /// message tag, out-of-range enum discriminant, trailing garbage).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => {
                write!(f, "wire version {v} (speaking {WIRE_VERSION})")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => {
                write!(f, "frame payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}")
            }
            WireError::BadCrc { expected, got } => {
                write!(
                    f,
                    "payload crc {got:#010x}, header promised {expected:#010x}"
                )
            }
            WireError::Truncated => write!(f, "payload truncated mid-message"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the payload is.
    pub kind: FrameKind,
    /// Payload length in bytes (already bounds-checked).
    pub len: usize,
    /// CRC32 the payload must match.
    pub crc: u32,
}

/// Encode one frame (header + payload) into a fresh buffer.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    out.push(WIRE_VERSION);
    out.push(kind.to_u8());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate and decode a frame header. The payload is *not* yet
/// validated — read `len` more bytes, then call [`check_payload`].
pub fn decode_header(bytes: &[u8; FRAME_HEADER_BYTES]) -> Result<FrameHeader, WireError> {
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if bytes[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(bytes[4]));
    }
    let kind = FrameKind::from_u8(bytes[5]).ok_or(WireError::BadKind(bytes[5]))?;
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize(len));
    }
    let crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    Ok(FrameHeader { kind, len, crc })
}

/// Verify a received payload against its header's CRC.
pub fn check_payload(header: &FrameHeader, payload: &[u8]) -> Result<(), WireError> {
    let got = crc32(payload);
    if got != header.crc {
        return Err(WireError::BadCrc {
            expected: header.crc,
            got,
        });
    }
    Ok(())
}

/// A message type that knows how to put itself on the wire. Implemented
/// by the distributed layer for its Figure 10–14 message set; the
/// framing above is payload-agnostic.
///
/// `encode` must be the exact inverse of `decode`: the property tests in
/// `crates/dist/src/wire.rs` hold every message variant to a byte-exact
/// round trip, and the fuzz tests in `crates/net/tests/wire_robustness.rs`
/// hold `decode` to *never panicking* on arbitrary bytes.
pub trait WireMsg: Sized {
    /// Append this message's encoding to `w`.
    fn wire_encode(&self, w: &mut WireWriter);

    /// Decode one message from exactly `bytes` (trailing bytes are an
    /// error — frames carry one message each).
    fn wire_decode(bytes: &[u8]) -> Result<Self, WireError>;
}

/// Append-only byte cursor for [`WireMsg`] implementations.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nothing written yet?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked read cursor for [`WireMsg`] implementations. Every
/// read returns [`WireError::Truncated`] instead of slicing out of
/// bounds, so decoders are panic-free on hostile input by construction.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> WireReader<'a> {
    /// Read from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { buf: bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::Malformed("non-utf8 string"))
    }

    /// Read a bool (strictly 0 or 1; anything else is malformed).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool out of range")),
        }
    }

    /// A length prefix for a sequence whose elements take at least
    /// `min_elem_bytes` each; rejects prefixes that could not possibly
    /// fit in the remaining payload, so a corrupt length cannot drive a
    /// huge allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.at;
        if n.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// All input consumed? (Frames carry exactly one message.)
    pub fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after message"))
        }
    }

    /// Bytes not yet read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Same vectors the storage WAL pins — one checksum, one answer.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"hello, figure 11";
        let frame = encode_frame(FrameKind::Msg, payload);
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + payload.len());
        let header = decode_header(frame[..FRAME_HEADER_BYTES].try_into().unwrap()).unwrap();
        assert_eq!(header.kind, FrameKind::Msg);
        assert_eq!(header.len, payload.len());
        check_payload(&header, &frame[FRAME_HEADER_BYTES..]).unwrap();
    }

    #[test]
    fn header_rejections() {
        let frame = encode_frame(FrameKind::Ping, b"");
        let mut h: [u8; FRAME_HEADER_BYTES] = frame[..FRAME_HEADER_BYTES].try_into().unwrap();

        let mut bad = h;
        bad[0] ^= 0xFF;
        assert!(matches!(decode_header(&bad), Err(WireError::BadMagic(_))));

        let mut bad = h;
        bad[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode_header(&bad),
            Err(WireError::BadVersion(WIRE_VERSION + 1))
        );

        let mut bad = h;
        bad[5] = 99;
        assert_eq!(decode_header(&bad), Err(WireError::BadKind(99)));

        h[8..12].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        assert!(matches!(decode_header(&h), Err(WireError::Oversize(_))));
    }

    #[test]
    fn garbled_payload_fails_crc() {
        let frame = encode_frame(FrameKind::Msg, b"payload bytes");
        let header = decode_header(frame[..FRAME_HEADER_BYTES].try_into().unwrap()).unwrap();
        let mut payload = frame[FRAME_HEADER_BYTES..].to_vec();
        payload[3] ^= 0x40;
        assert!(matches!(
            check_payload(&header, &payload),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut w = WireWriter::new();
        w.u64(7);
        w.str("abc");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.str().unwrap(), "abc");
        assert_eq!(r.u8(), Err(WireError::Truncated), "past the end");

        // A sequence length that cannot fit is rejected up front.
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.seq_len(8), Err(WireError::Truncated));

        // Trailing bytes are an error.
        let mut w = WireWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(WireError::Malformed(_))));
    }
}
