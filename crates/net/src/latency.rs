//! The message-delay model.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delay applied to each message delivery.
///
/// `fixed + U[0, jitter]`. Non-zero jitter can reorder deliveries (both
/// between senders and between consecutive sends from one sender) — a
/// deliberate stressor for the version-number update-ordering scheme of
/// Figure 13.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Base delay applied to every message.
    pub fixed: Duration,
    /// Upper bound of the uniform random extra delay.
    pub jitter: Duration,
    /// RNG seed so runs are reproducible.
    pub seed: u64,
    /// Additional delay applied to specific message classes (by their
    /// [`crate::MsgClass::class`] label). Models replication traffic that
    /// lags request traffic — the regime where stale directory entries
    /// actually get dereferenced.
    pub class_extra: Vec<(String, Duration)>,
}

impl LatencyModel {
    /// No delay at all (the default network).
    pub fn none() -> Self {
        LatencyModel {
            fixed: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 0,
            class_extra: Vec::new(),
        }
    }

    /// Fixed delay, no jitter (keeps FIFO order).
    pub fn fixed(d: Duration) -> Self {
        LatencyModel {
            fixed: d,
            jitter: Duration::ZERO,
            seed: 0,
            class_extra: Vec::new(),
        }
    }

    /// Fixed plus uniform jitter (may reorder).
    pub fn jittered(fixed: Duration, jitter: Duration, seed: u64) -> Self {
        LatencyModel {
            fixed,
            jitter,
            seed,
            class_extra: Vec::new(),
        }
    }

    /// Add extra delay for one message class (builder style).
    pub fn with_class_extra(mut self, class: impl Into<String>, extra: Duration) -> Self {
        self.class_extra.push((class.into(), extra));
        self
    }

    /// Extra delay for the given class label.
    pub(crate) fn extra_for(&self, class: &str) -> Duration {
        self.class_extra
            .iter()
            .filter(|(c, _)| c == class)
            .map(|&(_, d)| d)
            .sum()
    }

    /// Is every delay zero?
    pub fn is_zero(&self) -> bool {
        self.fixed.is_zero() && self.jitter.is_zero() && self.class_extra.is_empty()
    }

    /// Build the per-network sampler.
    pub(crate) fn sampler(&self) -> LatencySampler {
        LatencySampler {
            model: self.clone(),
            rng: StdRng::seed_from_u64(self.seed),
        }
    }
}

pub(crate) struct LatencySampler {
    model: LatencyModel,
    rng: StdRng,
}

impl LatencySampler {
    pub(crate) fn sample(&mut self) -> Duration {
        if self.model.jitter.is_zero() {
            return self.model.fixed;
        }
        let extra_ns = self
            .rng
            .random_range(0..=self.model.jitter.as_nanos() as u64);
        self.model.fixed + Duration::from_nanos(extra_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_samples_zero() {
        let mut s = LatencyModel::none().sampler();
        assert!(LatencyModel::none().is_zero());
        assert_eq!(s.sample(), Duration::ZERO);
    }

    #[test]
    fn jitter_within_bounds_and_reproducible() {
        let model = LatencyModel::jittered(Duration::from_micros(10), Duration::from_micros(5), 7);
        let mut a = model.sampler();
        let mut b = model.sampler();
        for _ in 0..100 {
            let d = a.sample();
            assert_eq!(d, b.sample(), "same seed, same sequence");
            assert!(d >= Duration::from_micros(10));
            assert!(d <= Duration::from_micros(15));
        }
    }
}
