//! The transport abstraction: what the distributed hash file actually
//! requires from its message plane.
//!
//! The paper's managers communicate through *ports* — long-lived,
//! location-transparent addresses resolved by name (`namelookup`,
//! Figures 13–14). Everything above the network (sites, directory
//! managers, bucket managers, clients) programs against exactly that
//! surface, so it is extracted here as an object-safe trait with two
//! implementations:
//!
//! * [`crate::SimNetwork`] — the in-process simulated plane (zero-copy
//!   channels, latency model, schedule control);
//! * [`crate::TcpPlane`] — real sockets: wire frames, connection
//!   supervision, the same seeded [`crate::FaultPlan`].
//!
//! The trait is deliberately *dyn-friendly* (`Arc<dyn Transport<M>>`):
//! the distributed layer stores one of these, and whether messages cross
//! a channel or a TCP connection is decided at construction time, not in
//! the type system of every manager.
//!
//! Structural fault hooks (blackholes, one-way cuts) and schedule
//! control stay on the concrete [`crate::SimNetwork`] — they reach into
//! simulator internals that have no socket analog, and the tests that
//! use them hold the concrete type anyway.

use crate::fault::FaultPlan;
use crate::network::{MsgClass, PortId, PortRx, SimNetwork};
use crate::stats::MsgStatsSnapshot;

/// A message plane: ports, names, delivery, per-class accounting, and
/// seeded fault injection. See the module docs for the two
/// implementations and what deliberately stays off this trait.
pub trait Transport<M: Send + 'static>: Send + Sync {
    /// Create a port. Returns the id (give it out; it is the address)
    /// and the receiving half (keep it; only the owner can receive).
    fn create_port(&self) -> (PortId, PortRx<M>);

    /// Register a name for a port (the paper's manager identifiers).
    /// Re-registering a name rebinds it.
    fn register_name(&self, name: &str, port: PortId);

    /// Resolve a name (`namelookup` in Figures 13–14).
    fn lookup(&self, name: &str) -> Option<PortId>;

    /// Send `msg` to `to`. Reliable while the port exists *and no fault
    /// is injected*; returns `false` when the destination is known to be
    /// gone (a closed local port). A lossy plane cannot tell the sender
    /// its packet died, so under faults (or across a real network) a
    /// `true` return is *not* an acknowledgement — the retry machinery
    /// above owns end-to-end delivery.
    fn send(&self, to: PortId, msg: M) -> bool;

    /// Per-class message counters.
    fn stats(&self) -> MsgStatsSnapshot;

    /// Zero the message counters.
    fn reset_stats(&self);

    /// Number of locally open ports (diagnostic).
    fn open_ports(&self) -> usize;

    /// Install (or with `None`, remove) a probabilistic fault plan. The
    /// plan's per-class decision counters restart from zero, so the same
    /// plan replayed over the same per-class traffic volumes reproduces
    /// the same fault counts.
    fn set_fault_plan(&self, plan: Option<FaultPlan>);

    /// Forcibly close a port from outside its owner: subsequent sends to
    /// the id return `false` and the owner's receive loop sees
    /// [`crate::RecvError::Disconnected`] once the buffered backlog
    /// drains. Returns `false` if the port was not open locally.
    fn close_port(&self, port: PortId) -> bool;
}

impl<M: Send + MsgClass + Clone + 'static> Transport<M> for SimNetwork<M> {
    fn create_port(&self) -> (PortId, PortRx<M>) {
        SimNetwork::create_port(self)
    }

    fn register_name(&self, name: &str, port: PortId) {
        SimNetwork::register_name(self, name, port)
    }

    fn lookup(&self, name: &str) -> Option<PortId> {
        SimNetwork::lookup(self, name)
    }

    fn send(&self, to: PortId, msg: M) -> bool {
        SimNetwork::send(self, to, msg)
    }

    fn stats(&self) -> MsgStatsSnapshot {
        SimNetwork::stats(self)
    }

    fn reset_stats(&self) {
        SimNetwork::reset_stats(self)
    }

    fn open_ports(&self) -> usize {
        SimNetwork::open_ports(self)
    }

    fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        SimNetwork::set_fault_plan(self, plan)
    }

    fn close_port(&self, port: PortId) -> bool {
        SimNetwork::close_port(self, port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Debug, Clone, PartialEq)]
    struct TestMsg(u32);
    impl MsgClass for TestMsg {
        fn class(&self) -> &'static str {
            "test"
        }
    }

    #[test]
    fn sim_network_works_through_the_trait_object() {
        let net: Arc<dyn Transport<TestMsg>> = Arc::new(SimNetwork::default());
        let (id, rx) = net.create_port();
        net.register_name("mgr0", id);
        assert_eq!(net.lookup("mgr0"), Some(id));
        assert!(net.send(id, TestMsg(7)));
        assert_eq!(rx.recv().unwrap(), TestMsg(7));
        assert_eq!(net.stats().get("test"), 1);
        assert_eq!(net.open_ports(), 1);
        assert!(net.close_port(id));
        assert!(!net.send(id, TestMsg(8)));
    }
}
