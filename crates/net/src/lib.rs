//! # ceh-net — the message plane (simulated and real)
//!
//! §3 of the paper assumes processes that "do not share storage … and
//! communicate through asynchronous messages", with "reliable delivery,
//! buffering, and possible anonymity of senders (e.g. port-based
//! communication as in [Rashid 80])". This crate is that substrate,
//! behind one object-safe [`Transport`] trait with two implementations:
//!
//! * [`SimNetwork`] — a registry of [`PortId`]s with reliable, buffered,
//!   sender-anonymous delivery (`send` never fails while the receiving
//!   port exists; messages queue without bound);
//! * [`TcpPlane`] — the same port/name surface over real sockets:
//!   length-prefixed wire frames with version/CRC headers ([`wire`]),
//!   a supervised connection per peer ([`supervisor`]) with bounded
//!   reconnect backoff, heartbeats, and load-shedding degradation, so
//!   the distributed hash file runs as actual processes (`ceh serve`);
//! * the name service via `register_name` / `lookup` — the paper's
//!   `namelookup(manager-id)`, mapping long-lived manager identifiers
//!   to ports (replicated peer-to-peer on the TCP plane);
//! * [`MsgStats`] — per-class message counters, the currency of the
//!   distributed experiments (E7/E8 in DESIGN.md): every send is counted
//!   under the label returned by [`MsgClass::class`], matching Figure 11's
//!   message taxonomy;
//! * an optional [`LatencyModel`] that delays deliveries (fixed + jitter).
//!   Jitter can reorder messages *across* sends — deliberately, because
//!   the paper's version-number scheme exists precisely to tolerate
//!   directory updates arriving out of order (§3's split-then-merge
//!   example);
//! * a seeded [`FaultPlan`] that makes the network *lossy on purpose* —
//!   per-class drop and duplication probabilities (plus garble, sever,
//!   and delay at the socket boundary), and live structural faults
//!   ([`SimNetwork::blackhole_port`], [`SimNetwork::cut_one_way`],
//!   [`SimNetwork::close_port`]) — with every drop and duplicate counted
//!   in [`MsgStats`]. The distributed layer's retry/dedup machinery is
//!   validated against this plane (`tests/chaos.rs`) and against real
//!   sockets (`transport_smoke` in CI) with the *same* seeded plans.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fault;
mod latency;
mod network;
mod stats;
pub mod supervisor;
mod tcp;
mod transport;
pub mod wire;

pub use fault::{FaultPlan, FaultProbs, FrameVerdict};
pub use latency::LatencyModel;
pub use network::{
    MsgClass, PortId, PortRx, RecvError, SimNetwork, TRACE_DELIVERED, TRACE_DROPPED,
    TRACE_DUPLICATED, TRACE_SENT,
};
pub use stats::{MsgStats, MsgStatsSnapshot};
pub use supervisor::{Backoff, PeerFsm, PeerState, SupervisorConfig, TickAction};
pub use tcp::{TcpConfig, TcpPlane};
pub use transport::Transport;
pub use wire::{WireError, WireMsg, WireReader, WireWriter};
