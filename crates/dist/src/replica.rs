//! The directory replica and the version-ordered update algebra.
//!
//! "The ordering of different directory modifications due to operations
//! on the same bucket should be the same across all copies and determined
//! by the order in which the bucket operations are performed. Each bucket
//! contains a version number that increases with each update that causes
//! a directory update." (§3)
//!
//! A [`DirUpdate`] carries the *expected* (pre-update) versions of the
//! entries it rewrites and the new version it installs. [`DirReplica::apply`]
//! returns:
//!
//! * [`ApplyResult::Applied`] — versions matched; the entries now carry
//!   the new version;
//! * [`ApplyResult::Parked`] — some affected entry is older than
//!   expected: a predecessor update has not arrived yet. The caller
//!   parks the message and retries after each successful application
//!   (`save` / `ReleaseSaved` in Figure 13);
//! * [`ApplyResult::Stale`] — the entries are already at (or past) the
//!   update's new version: a duplicate or an echo of something this
//!   replica has seen; drop it.
//!
//! This is exactly the machinery that defuses the paper's example: a
//! split immediately followed by a merge of the two halves, heard by a
//! replica in the opposite order. The merge expects the post-split
//! versions, parks, the split applies, the merge follows — and only then
//! may the garbage bucket be deallocated.

use ceh_types::bits::mask;
use ceh_types::{BucketLink, Error, ManagerId, PageId, Pseudokey, Result};

/// One directory entry: a bucket link plus the version it was last
/// updated at (Figure 10 shows "a version field introduced into each
/// bucket and each directory entry").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    /// The bucket manager owning the page.
    pub mgr: ManagerId,
    /// The page address at that manager.
    pub page: PageId,
    /// Version of the bucket this entry last tracked.
    pub version: u64,
}

/// Outcome of [`DirReplica::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyResult {
    /// The update took effect.
    Applied,
    /// A predecessor update is missing; retry after other applications.
    Parked,
    /// Already applied (duplicate); drop.
    Stale,
}

/// A directory modification caused by one bucket-level operation.
#[derive(Debug, Clone)]
pub enum DirUpdate {
    /// A bucket split: the "1"-side entries at depth `old_localdepth + 1`
    /// move to `new_bucket`.
    Split {
        /// Pseudokey identifying the affected entry group.
        pseudokey: Pseudokey,
        /// The split bucket's localdepth *before* the split.
        old_localdepth: u32,
        /// The split bucket's version before the split.
        expected_version: u64,
        /// Version of both halves after the split (`expected + 1`).
        new_version: u64,
        /// Where the new "1" half lives.
        new_bucket: BucketLink,
    },
    /// A merge: all entries of the pair move to `merged` at
    /// `old_localdepth - 1`.
    Merge {
        /// Pseudokey identifying the affected entry group.
        pseudokey: Pseudokey,
        /// The partners' common localdepth before the merge.
        old_localdepth: u32,
        /// Pre-merge version of the surviving "0" partner.
        expected_v0: u64,
        /// Pre-merge version of the deleted "1" partner.
        expected_v1: u64,
        /// The survivor's version after the merge.
        new_version: u64,
        /// The surviving bucket.
        merged: BucketLink,
        /// The tombstone page to garbage-collect once every replica has
        /// applied and acknowledged this update.
        garbage: BucketLink,
    },
}

impl DirUpdate {
    /// The version this update installs.
    pub fn new_version(&self) -> u64 {
        match self {
            DirUpdate::Split { new_version, .. } | DirUpdate::Merge { new_version, .. } => {
                *new_version
            }
        }
    }

    /// The garbage link, for merge updates.
    pub fn garbage(&self) -> Option<BucketLink> {
        match self {
            DirUpdate::Split { .. } => None,
            DirUpdate::Merge { garbage, .. } => Some(*garbage),
        }
    }

    /// Is this a merge (delete-side) update? Merge copyupdates get
    /// deferred acks (the "equivalent of ξ-locking").
    pub fn is_merge(&self) -> bool {
        matches!(self, DirUpdate::Merge { .. })
    }
}

/// One directory manager's full copy of the directory.
#[derive(Debug, Clone)]
pub struct DirReplica {
    entries: Vec<DirEntry>,
    depth: u32,
    depthcount: u32,
    max_depth: u32,
}

impl DirReplica {
    /// A depth-0 replica pointing at the root bucket.
    pub fn new(max_depth: u32, root: BucketLink) -> Self {
        DirReplica {
            entries: vec![DirEntry {
                mgr: root.manager,
                page: root.page,
                version: 0,
            }],
            depth: 0,
            depthcount: 1,
            max_depth,
        }
    }

    /// Restore a replica from recovered state (see
    /// [`crate::Cluster::recover`]): `entries` must be exactly `2^depth`
    /// long.
    pub fn restore(max_depth: u32, entries: Vec<DirEntry>, depthcount: u32) -> Result<Self> {
        if entries.is_empty() {
            return Err(Error::Corrupt("restore: empty directory".into()));
        }
        let depth = entries.len().trailing_zeros();
        if entries.len() != 1usize << depth {
            return Err(Error::Corrupt(format!(
                "restore: {} entries is not a power of two",
                entries.len()
            )));
        }
        if depth > max_depth {
            return Err(Error::DirectoryFull { max_depth });
        }
        Ok(DirReplica {
            entries,
            depth,
            depthcount,
            max_depth,
        })
    }

    /// Current depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Current depthcount.
    pub fn depthcount(&self) -> u32 {
        self.depthcount
    }

    /// All entries (tests, Status replies).
    pub fn entries(&self) -> &[DirEntry] {
        &self.entries
    }

    /// `indexdirectory(pseudokey & mask(depth), &oldpage, &bucketmgr)`.
    pub fn lookup(&self, pk: Pseudokey) -> DirEntry {
        self.entries[pk.low_bits(self.depth) as usize]
    }

    fn entry_at(&self, bits: u64) -> &DirEntry {
        &self.entries[(bits & mask(self.depth)) as usize]
    }

    fn set_group(&mut self, pattern: u64, d: u32, entry: DirEntry) {
        // Every index whose low d bits equal `pattern`.
        let step = 1usize << d;
        let size = 1usize << self.depth;
        let mut i = (pattern & mask(d)) as usize;
        while i < size {
            self.entries[i] = entry;
            i += step;
        }
    }

    fn double(&mut self) -> Result<()> {
        if self.depth >= self.max_depth {
            return Err(Error::DirectoryFull {
                max_depth: self.max_depth,
            });
        }
        let old = self.entries.clone();
        self.entries.extend_from_slice(&old);
        self.depth += 1;
        self.depthcount = 0;
        Ok(())
    }

    fn halve(&mut self) {
        loop {
            debug_assert!(self.depth >= 1);
            let half = 1usize << (self.depth - 1);
            self.entries.truncate(half);
            self.depth -= 1;
            if self.depth == 0 {
                self.depthcount = 1;
                return;
            }
            let quarter = 1usize << (self.depth - 1);
            let mut count = 0u32;
            for i in 0..quarter {
                if self.entries[i].page != self.entries[i + quarter].page
                    || self.entries[i].mgr != self.entries[i + quarter].mgr
                {
                    count += 2;
                }
            }
            self.depthcount = count;
            if count != 0 || self.depth <= 1 {
                return;
            }
        }
    }

    /// Try to apply an update; see the module docs for the version rules.
    pub fn apply(&mut self, upd: &DirUpdate) -> Result<ApplyResult> {
        match *upd {
            DirUpdate::Split {
                pseudokey,
                old_localdepth: d,
                expected_version,
                new_version,
                new_bucket,
            } => {
                let cur = *self.entry_at(pseudokey.low_bits(d.min(self.depth)));
                if cur.version >= new_version {
                    return Ok(ApplyResult::Stale);
                }
                if cur.version != expected_version {
                    return Ok(ApplyResult::Parked);
                }
                if d == self.depth {
                    self.double()?;
                } else if d > self.depth {
                    // Version matched but the replica is shallower than
                    // the split's localdepth — a predecessor split that
                    // would have deepened us has not applied yet.
                    return Ok(ApplyResult::Parked);
                }
                let p0 = pseudokey.low_bits(d); // pattern with bit d+1 clear
                let p1 = p0 | ceh_types::partner_bit(d + 1);
                let zero_side = DirEntry {
                    mgr: cur.mgr,
                    page: cur.page,
                    version: new_version,
                };
                let one_side = DirEntry {
                    mgr: new_bucket.manager,
                    page: new_bucket.page,
                    version: new_version,
                };
                self.set_group(p0, d + 1, zero_side);
                self.set_group(p1, d + 1, one_side);
                if d + 1 == self.depth {
                    self.depthcount += 2;
                }
                Ok(ApplyResult::Applied)
            }
            DirUpdate::Merge {
                pseudokey,
                old_localdepth: d,
                expected_v0,
                expected_v1,
                new_version,
                merged,
                garbage: _,
            } => {
                // Staleness first, and against the *survivor group* at
                // whatever depth we currently have: once this merge (or
                // anything after it) has applied, the covering entry's
                // version is ≥ new_version even if the directory has
                // since halved below `d`. Checking the depth guard first
                // would park a duplicate of an applied merge forever.
                let probe = pseudokey.low_bits((d - 1).min(self.depth));
                if self.entry_at(probe).version >= new_version {
                    return Ok(ApplyResult::Stale);
                }
                if d > self.depth {
                    // Can't even address both partners yet.
                    return Ok(ApplyResult::Parked);
                }
                let bits = pseudokey.low_bits(d);
                let p1 = bits | ceh_types::partner_bit(d);
                let p0 = p1 ^ ceh_types::partner_bit(d);
                let e0 = *self.entry_at(p0);
                let e1 = *self.entry_at(p1);
                if e0.version != expected_v0 || e1.version != expected_v1 {
                    return Ok(ApplyResult::Parked);
                }
                let entry = DirEntry {
                    mgr: merged.manager,
                    page: merged.page,
                    version: new_version,
                };
                self.set_group(p0 & mask(d - 1), d - 1, entry);
                if d == self.depth {
                    self.depthcount = self.depthcount.saturating_sub(2);
                    if self.depthcount == 0 && self.depth > 1 {
                        self.halve();
                    }
                }
                Ok(ApplyResult::Applied)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(m: u32, p: u64) -> BucketLink {
        BucketLink::new(ManagerId(m), PageId(p))
    }

    fn split(pk: u64, d: u32, ev: u64, new: BucketLink) -> DirUpdate {
        DirUpdate::Split {
            pseudokey: Pseudokey(pk),
            old_localdepth: d,
            expected_version: ev,
            new_version: ev + 1,
            new_bucket: new,
        }
    }

    #[test]
    fn split_from_depth_zero_doubles() {
        let mut r = DirReplica::new(8, link(0, 0));
        assert_eq!(
            r.apply(&split(0, 0, 0, link(0, 1))).unwrap(),
            ApplyResult::Applied
        );
        assert_eq!(r.depth(), 1);
        assert_eq!(r.lookup(Pseudokey(0)).page, PageId(0));
        assert_eq!(r.lookup(Pseudokey(1)).page, PageId(1));
        assert_eq!(r.depthcount(), 2);
        assert_eq!(r.lookup(Pseudokey(0)).version, 1);
    }

    #[test]
    fn duplicate_split_is_stale() {
        let mut r = DirReplica::new(8, link(0, 0));
        let u = split(0, 0, 0, link(0, 1));
        assert_eq!(r.apply(&u).unwrap(), ApplyResult::Applied);
        assert_eq!(r.apply(&u).unwrap(), ApplyResult::Stale);
    }

    #[test]
    fn out_of_order_splits_park_until_ready() {
        let mut r = DirReplica::new(8, link(0, 0));
        // Second-generation split (bucket 0 at localdepth 1, version 1)
        // arrives before the first-generation one.
        let second = split(0b00, 1, 1, link(0, 2));
        assert_eq!(r.apply(&second).unwrap(), ApplyResult::Parked);
        let first = split(0, 0, 0, link(0, 1));
        assert_eq!(r.apply(&first).unwrap(), ApplyResult::Applied);
        assert_eq!(r.apply(&second).unwrap(), ApplyResult::Applied);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.lookup(Pseudokey(0b00)).page, PageId(0));
        assert_eq!(r.lookup(Pseudokey(0b10)).page, PageId(2));
        assert_eq!(r.lookup(Pseudokey(0b01)).page, PageId(1));
        assert_eq!(r.lookup(Pseudokey(0b11)).page, PageId(1));
    }

    #[test]
    fn papers_split_then_merge_reordering_example() {
        // §3: "Suppose first a split operation is performed almost
        // immediately followed by a merge involving those two buckets.
        // Imagine a directory manager that hears about these updates in
        // the opposite order."
        let mut r = DirReplica::new(8, link(0, 0));
        r.apply(&split(0, 0, 0, link(0, 1))).unwrap(); // depth 1: [p0, p1] v1
                                                       // Now: split p1 (ld 1, v1) into p1/p2; then merge them back.
        let s = split(0b1, 1, 1, link(0, 2));
        let m = DirUpdate::Merge {
            pseudokey: Pseudokey(0b01),
            old_localdepth: 2,
            expected_v0: 2,
            expected_v1: 2,
            new_version: 3,
            merged: link(0, 1),
            garbage: link(0, 2),
        };
        // Merge first: must park (the split's versions aren't there).
        assert_eq!(r.apply(&m).unwrap(), ApplyResult::Parked);
        assert_eq!(r.apply(&s).unwrap(), ApplyResult::Applied);
        assert_eq!(r.apply(&m).unwrap(), ApplyResult::Applied);
        // Net effect: back to [p0, p1], with p1 at version 3.
        assert_eq!(r.depth(), 1);
        assert_eq!(r.lookup(Pseudokey(0b1)).page, PageId(1));
        assert_eq!(r.lookup(Pseudokey(0b1)).version, 3);
    }

    #[test]
    fn merge_at_full_depth_halves_when_empty() {
        let mut r = DirReplica::new(8, link(0, 0));
        r.apply(&split(0, 0, 0, link(0, 1))).unwrap(); // depth 1, count 2
        r.apply(&split(0b0, 1, 1, link(0, 2))).unwrap(); // depth 2: p0/p2 at ld2, count 2
        assert_eq!(r.depth(), 2);
        assert_eq!(r.depthcount(), 2);
        // Merge p0/p2 back.
        let m = DirUpdate::Merge {
            pseudokey: Pseudokey(0b00),
            old_localdepth: 2,
            expected_v0: 2,
            expected_v1: 2,
            new_version: 3,
            merged: link(0, 0),
            garbage: link(0, 2),
        };
        assert_eq!(r.apply(&m).unwrap(), ApplyResult::Applied);
        assert_eq!(r.depth(), 1, "depthcount hit zero → halved");
        assert_eq!(r.lookup(Pseudokey(0)).page, PageId(0));
        assert_eq!(r.lookup(Pseudokey(1)).page, PageId(1));
    }

    #[test]
    fn merge_parks_until_both_versions_present() {
        let mut r = DirReplica::new(8, link(0, 0));
        r.apply(&split(0, 0, 0, link(0, 1))).unwrap();
        // A merge whose "1"-side version is ahead of what we have.
        let m = DirUpdate::Merge {
            pseudokey: Pseudokey(0b0),
            old_localdepth: 1,
            expected_v0: 1,
            expected_v1: 5,
            new_version: 6,
            merged: link(0, 0),
            garbage: link(0, 1),
        };
        assert_eq!(r.apply(&m).unwrap(), ApplyResult::Parked);
    }

    #[test]
    fn cross_manager_links_roundtrip() {
        let mut r = DirReplica::new(8, link(0, 0));
        r.apply(&split(0, 0, 0, link(3, 9))).unwrap();
        let e = r.lookup(Pseudokey(1));
        assert_eq!(e.mgr, ManagerId(3));
        assert_eq!(e.page, PageId(9));
    }

    #[test]
    fn split_past_max_depth_errors() {
        let mut r = DirReplica::new(1, link(0, 0));
        r.apply(&split(0, 0, 0, link(0, 1))).unwrap();
        let too_deep = split(0b0, 1, 1, link(0, 2));
        assert!(r.apply(&too_deep).is_err());
    }
}
