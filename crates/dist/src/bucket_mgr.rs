//! The bucket manager of Figure 14: a front-end process that dispatches
//! each incoming message to a slave process, plus the slave procedures
//! themselves (find/insert/delete with cross-site wrong-bucket
//! forwarding, remote split placement, and the mergedown/mergeup/goahead
//! protocols).

use std::sync::Arc;

use ceh_locks::LockMode;
use ceh_net::{PortId, PortRx, RecvError};
use ceh_types::bits::{mask, partner_bit};
use ceh_types::bucket::Bucket;
use ceh_types::{BucketLink, DeleteOutcome, InsertOutcome, PageId, Record};

use crate::msg::{Msg, OpEnvelope, OpKind, UserOutcome};
use crate::replica::DirUpdate;
use crate::site::Site;

/// The front-end loop: receive, dispatch. `Splitbucket` is handled
/// inline (Figure 14's front end does exactly that); everything else gets
/// a slave process (`p = createprocess (bucketslave); forward (msg, p)`).
pub(crate) fn run_front_end(site: Arc<Site>, rx: PortRx<Msg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Shutdown => break,
            Msg::Splitbucket {
                reply_port,
                half2,
                fences,
            } => {
                // "newpage = allocbucket(); putbucket (newpage, msg.half2);
                //  SendSplitReply (msg.replyport, newpage, myid);"
                // The records now live here; so must their fence entries.
                // One logged transaction: a crash between the alloc and
                // the write must not leave a durable empty page.
                site.fence_merge(&fences);
                let placed = (|| -> ceh_types::Result<PageId> {
                    let txn = site.begin_txn()?;
                    let page = site.alloc_page()?;
                    let mut buf = site.new_buf();
                    site.putbucket(page, &half2, &mut buf)?;
                    txn.commit()?;
                    Ok(page)
                })();
                if let Ok(page) = placed {
                    site.net.send(
                        reply_port,
                        Msg::Splitreply {
                            link: BucketLink::new(site.id, page),
                        },
                    );
                }
                // On failure (out of pages or powered off) no reply is
                // sent — the splitting site times out and fails the
                // placement.
            }
            other => {
                let site = Arc::clone(&site);
                std::thread::spawn(move || run_slave(site, other));
            }
        }
    }
}

/// One slave process: handles a single forwarded message to completion.
fn run_slave(site: Arc<Site>, msg: Msg) {
    match msg {
        Msg::BucketOp(env) => slave_op(&site, env, None),
        Msg::Wrongbucket { env, buckmgr_port } => slave_op(&site, env, Some(buckmgr_port)),
        Msg::Mergedown {
            partner,
            localdepth,
            reply_port,
        } => slave_mergedown(&site, partner, localdepth, reply_port),
        Msg::Mergeup {
            partner,
            target,
            target_mgr,
            reply_port,
        } => slave_mergeup(&site, partner, target, target_mgr, reply_port),
        Msg::GarbageCollect {
            pages,
            gc_id,
            ack_port,
            ctx,
        } => slave_garbage_collect(&site, pages, gc_id, ack_port, ctx),
        other => {
            debug_assert!(
                false,
                "slave got unexpected {}",
                ceh_net::MsgClass::class(&other)
            );
        }
    }
}

/// Outcome of the wrong-bucket walk.
enum Walk {
    /// The right bucket is on this site, locked; here it is.
    Local(PageId, Bucket),
    /// The search moved to another site; this slave is done.
    Forwarded,
    /// Something was stale (page fault / chain ran out): ask the
    /// directory manager to re-drive the request.
    Stale,
}

/// The `/* wrong bucket */` loop of Figure 14 with cross-site
/// forwarding. Locks `env.page` in `mode`, acknowledges per the figure
/// (ack to the forwarding manager, or Bucketdone-for-find to the
/// directory manager), then walks `next` links, forwarding to the owning
/// manager when a link leaves this site. Hand-over-hand is preserved
/// across the site boundary: the forwarder keeps its lock until the
/// receiver has locked the next bucket and acked.
fn walk_to_owner(
    site: &Site,
    owner: ceh_locks::OwnerId,
    env: &OpEnvelope,
    mode: LockMode,
    wrongbucket_ack_to: Option<PortId>,
) -> Walk {
    let mut oldpage = env.page;
    let mut buf = site.new_buf();
    site.lock(owner, oldpage, mode);
    // Acknowledge per Figure 14, *after* taking the first lock.
    if let Some(fwd) = wrongbucket_ack_to {
        site.net.send(fwd, Msg::WrongbucketAck);
    } else if env.op == OpKind::Find {
        // The find slave releases the directory manager's attention
        // immediately; the user gets found/notfound from us directly.
        site.net.send(
            env.dirmgr_port,
            Msg::Bucketdone {
                txn: env.txn,
                success: true,
                outcome: None,
            },
        );
    }
    let mut current = match site.getbucket(oldpage, &mut buf) {
        Ok(b) => b,
        Err(_) => {
            // Stale routing into a deallocated page: re-drive.
            site.unlock(owner, oldpage, mode);
            return Walk::Stale;
        }
    };
    while !current.owns(env.pseudokey) {
        site.recoveries.inc();
        let next = current.next;
        let next_mgr = current.next_mgr;
        if next.is_null() {
            site.unlock(owner, oldpage, mode);
            return Walk::Stale;
        }
        if !next_mgr.is_none() && next_mgr != site.id {
            // Off-site: forward, await the ack, then release our lock.
            let Some(port) = site.bucket_port(next_mgr) else {
                site.unlock(owner, oldpage, mode);
                return Walk::Stale;
            };
            let (_reply_id, reply_rx) = site.net.create_port();
            site.metrics
                .trace_instant(env.ctx, "dist", "wrongbucket.forward", next.0, env.txn);
            let mut fwd_env = env.clone();
            fwd_env.page = next;
            site.net.send(
                port,
                Msg::Wrongbucket {
                    env: fwd_env,
                    buckmgr_port: reply_rx.id(),
                },
            );
            match reply_rx.recv_timeout(site.reply_timeout) {
                Ok(Msg::WrongbucketAck) => {}
                _ => { /* peer gone; our lock release below is all we can do */ }
            }
            site.unlock(owner, oldpage, mode);
            return Walk::Forwarded;
        }
        site.lock(owner, next, mode);
        match site.getbucket(next, &mut buf) {
            Ok(b) => current = b,
            Err(_) => {
                site.unlock(owner, next, mode);
                site.unlock(owner, oldpage, mode);
                return Walk::Stale;
            }
        }
        site.unlock(owner, oldpage, mode);
        oldpage = next;
    }
    Walk::Local(oldpage, current)
}

fn bucketdone(site: &Site, env: &OpEnvelope, success: bool, outcome: Option<UserOutcome>) {
    site.net.send(
        env.dirmgr_port,
        Msg::Bucketdone {
            txn: env.txn,
            success,
            outcome,
        },
    );
}

fn slave_op(site: &Site, mut env: OpEnvelope, wrongbucket_ack_to: Option<PortId>) {
    let started = std::time::Instant::now();
    let event = match env.op {
        OpKind::Find => "bucket.find",
        OpKind::Insert => "bucket.insert",
        OpKind::Delete => "bucket.delete",
    };
    // The slave's execution span, a child of the dispatch (or of the
    // forwarding slave for a Wrongbucket hop). Installing it as the
    // ambient context makes this site's lock waits — and any core-layer
    // spans — nest under the originating request.
    let span = site
        .metrics
        .trace_begin(env.ctx, "dist", event, env.key.0, env.txn);
    let _ambient = span.scope();
    if wrongbucket_ack_to.is_some() {
        site.metrics
            .trace_instant(span, "dist", "wrongbucket.recv", env.page.0, env.txn);
    }
    // Downstream hops (forwarded envelopes) nest under this slave.
    env.ctx = span;
    let (key, trace_id) = (env.key.0, span.trace_id);
    match env.op {
        OpKind::Find => slave_find(site, env, wrongbucket_ack_to),
        OpKind::Insert => slave_insert(site, env, wrongbucket_ack_to),
        OpKind::Delete => slave_delete(site, env, wrongbucket_ack_to),
    }
    site.metrics.trace_end(span, "dist", event, 0, 0);
    // Bucket-side latency: everything this slave did, splits/merges and
    // cross-site hops included (a forwarded op times only its own hop).
    let ns = started.elapsed().as_nanos() as u64;
    site.metrics.counter("dist.bucket_ops").inc();
    site.metrics.histogram("dist.bucket_op_ns").record(ns);
    site.metrics.slow_ops().observe(event, ns, trace_id, key);
}

/// Figure 14, `case find`.
fn slave_find(site: &Site, env: OpEnvelope, fwd: Option<PortId>) {
    let owner = site.locks.new_owner();
    match walk_to_owner(site, owner, &env, LockMode::Rho, fwd) {
        Walk::Forwarded => {}
        Walk::Stale => {
            // We already sent Bucketdone(success) for a first-hop find;
            // send a failure so the directory manager re-drives. (For a
            // forwarded find we own the request now.)
            bucketdone(site, &env, false, None);
        }
        Walk::Local(page, bucket) => {
            let found = bucket.search(env.key);
            site.unlock(owner, page, LockMode::Rho);
            // found(z) / notfound(z): answer the user directly.
            site.net.send(
                env.user_port,
                Msg::UserReply {
                    outcome: UserOutcome::Found(found),
                    req_id: env.req_id,
                },
            );
        }
    }
}

/// Figure 14, `case insert`.
fn slave_insert(site: &Site, env: OpEnvelope, fwd: Option<PortId>) {
    let owner = site.locks.new_owner();
    let (oldpage, mut current) = match walk_to_owner(site, owner, &env, LockMode::Alpha, fwd) {
        Walk::Forwarded => return,
        Walk::Stale => {
            bucketdone(site, &env, false, None);
            return;
        }
        Walk::Local(p, b) => (p, b),
    };
    if !site.fence_allows(env.user_port, env.req_id) {
        // Zombie: an abandoned re-drive of a request the client has moved
        // past. Refuse it — applying it could resurrect deleted data. The
        // `Failed` outcome retires the transaction without being cached.
        site.unlock(owner, oldpage, LockMode::Alpha);
        bucketdone(site, &env, true, Some(UserOutcome::Failed));
        return;
    }
    site.fence_record(env.user_port, env.req_id);
    let mut buf = site.new_buf();

    if current.search(env.key).is_some() {
        site.unlock(owner, oldpage, LockMode::Alpha);
        bucketdone(
            site,
            &env,
            true,
            Some(UserOutcome::Inserted(InsertOutcome::AlreadyPresent)),
        );
        return;
    }
    if current.count() < site.cfg.bucket_capacity {
        current.add(Record {
            key: env.key,
            value: env.value,
        });
        if site.putbucket(oldpage, &current, &mut buf).is_err() {
            site.unlock(owner, oldpage, LockMode::Alpha);
            bucketdone(site, &env, false, None);
            return;
        }
        site.unlock(owner, oldpage, LockMode::Alpha);
        bucketdone(
            site,
            &env,
            true,
            Some(UserOutcome::Inserted(InsertOutcome::Inserted)),
        );
        return;
    }

    /* CURRENT IS FULL - DIRECTORY WILL BE AFFECTED */
    let old_localdepth = current.localdepth;
    let expected_version = current.version;
    let (mut half1, half2, done) = current.split(
        env.key,
        env.value,
        site.cfg.bucket_capacity,
        ceh_types::hash_key,
        oldpage,
        site.id,
        PageId::NULL, // patched below once placement is known
        site.id,
    );
    // Place the second half: locally if we have space, else on another
    // manager via the Splitbucket protocol. One logged transaction per
    // split: a local placement and the rewritten first half land in the
    // durable image together or not at all (a remote half commits on
    // its own site; our transaction then covers just the first half).
    let Ok(txn) = site.begin_txn() else {
        site.unlock(owner, oldpage, LockMode::Alpha);
        bucketdone(site, &env, false, None);
        return;
    };
    let placed: Option<BucketLink> = if site.available_pages() || site.all_managers.len() == 1 {
        match site.alloc_page() {
            Ok(p) => {
                if site.putbucket(p, &half2, &mut buf).is_ok() {
                    Some(BucketLink::new(site.id, p))
                } else {
                    None
                }
            }
            Err(_) => None,
        }
    } else {
        let target = site.mgr_with_space();
        match site.bucket_port(target) {
            Some(port) => {
                let (_id, reply_rx) = site.net.create_port();
                site.net.send(
                    port,
                    Msg::Splitbucket {
                        reply_port: reply_rx.id(),
                        half2: Box::new(half2),
                        fences: site.fence_snapshot(),
                    },
                );
                match reply_rx.recv_timeout(site.reply_timeout) {
                    Ok(Msg::Splitreply { link }) => Some(link),
                    _ => None,
                }
            }
            None => None,
        }
    };
    let Some(link) = placed else {
        // Could not place the new half anywhere: leave the bucket
        // untouched and fail the request upward.
        site.unlock(owner, oldpage, LockMode::Alpha);
        bucketdone(site, &env, false, None);
        return;
    };
    half1.next = link.page;
    half1.next_mgr = link.manager;
    if site.putbucket(oldpage, &half1, &mut buf).is_err() || txn.commit().is_err() {
        site.unlock(owner, oldpage, LockMode::Alpha);
        bucketdone(site, &env, false, None);
        return;
    }
    site.unlock(owner, oldpage, LockMode::Alpha);
    site.net.send(
        env.dirmgr_port,
        Msg::Update {
            txn: env.txn,
            success: done,
            outcome: done.then_some(UserOutcome::Inserted(InsertOutcome::Inserted)),
            update: DirUpdate::Split {
                pseudokey: env.pseudokey,
                old_localdepth,
                expected_version,
                new_version: expected_version + 1,
                new_bucket: link,
            },
            ctx: env.ctx,
        },
    );
}

/// Figure 14, `case delete`, including the local fast paths and the
/// cross-site mergedown/mergeup protocols.
fn slave_delete(site: &Site, env: OpEnvelope, fwd: Option<PortId>) {
    let owner = site.locks.new_owner();
    let (oldpage, mut current) = match walk_to_owner(site, owner, &env, LockMode::Xi, fwd) {
        Walk::Forwarded => return,
        Walk::Stale => {
            bucketdone(site, &env, false, None);
            return;
        }
        Walk::Local(p, b) => (p, b),
    };
    if !site.fence_allows(env.user_port, env.req_id) {
        // Zombie re-drive (see `slave_insert`): refuse rather than apply.
        site.unlock(owner, oldpage, LockMode::Xi);
        bucketdone(site, &env, true, Some(UserOutcome::Failed));
        return;
    }
    site.fence_record(env.user_port, env.req_id);
    let mut buf = site.new_buf();
    let threshold = site.cfg.merge_threshold;
    // The same bounded degradation as centralized Solution 2: after a few
    // re-drives, stop attempting merges.
    let allow_merge = env.attempt < 3;

    let too_empty = allow_merge && current.count() <= threshold + 1 && current.localdepth > 1;
    if !too_empty {
        let outcome = if current.remove(env.key) {
            if site.putbucket(oldpage, &current, &mut buf).is_err() {
                site.unlock(owner, oldpage, LockMode::Xi);
                bucketdone(site, &env, false, None);
                return;
            }
            DeleteOutcome::Deleted
        } else {
            DeleteOutcome::NotFound
        };
        site.unlock(owner, oldpage, LockMode::Xi);
        bucketdone(site, &env, true, Some(UserOutcome::Deleted(outcome)));
        return;
    }
    if current.search(env.key).is_none() {
        site.unlock(owner, oldpage, LockMode::Xi);
        bucketdone(
            site,
            &env,
            true,
            Some(UserOutcome::Deleted(DeleteOutcome::NotFound)),
        );
        return;
    }

    let m = partner_bit(current.localdepth);
    if env.pseudokey.0 & m != m {
        /* MSG.KEY IN FIRST OF PAIR */
        delete_first_of_pair(site, owner, &env, oldpage, current, buf);
    } else {
        /* MSG.KEY IN SECOND OF PAIR */
        delete_second_of_pair(site, owner, &env, oldpage, &mut current, buf);
    }
}

/// The key's bucket is the "0" partner; the "1" partner is `next` —
/// merge it *down* into us (locally or via Mergedown).
fn delete_first_of_pair(
    site: &Site,
    owner: ceh_locks::OwnerId,
    env: &OpEnvelope,
    oldpage: PageId,
    mut current: Bucket,
    mut buf: ceh_storage::PageBuf,
) {
    let partner = current.next;
    let partner_mgr = current.next_mgr;
    let remove_plain = |mut current: Bucket, mut buf: ceh_storage::PageBuf| {
        let removed = current.remove(env.key);
        debug_assert!(removed);
        let ok = site.putbucket(oldpage, &current, &mut buf).is_ok();
        site.unlock(owner, oldpage, LockMode::Xi);
        if ok {
            bucketdone(
                site,
                env,
                true,
                Some(UserOutcome::Deleted(DeleteOutcome::Deleted)),
            );
        } else {
            bucketdone(site, env, false, None);
        }
    };
    if partner.is_null() {
        remove_plain(current, buf);
        return;
    }

    if partner_mgr == site.id || partner_mgr.is_none() {
        // Local merge, as in Figure 9.
        site.lock(owner, partner, LockMode::Xi);
        let brother = match site.getbucket(partner, &mut buf) {
            Ok(b) => b,
            Err(_) => {
                site.unlock(owner, partner, LockMode::Xi);
                remove_plain(current, buf);
                return;
            }
        };
        let mergeable = !brother.is_deleted()
            && brother.localdepth == current.localdepth
            && current.count() - 1 + brother.count() <= site.cfg.bucket_capacity;
        if !mergeable {
            site.unlock(owner, partner, LockMode::Xi);
            remove_plain(current, buf);
            return;
        }
        let expected_v0 = current.version;
        let expected_v1 = brother.version;
        let new_version = expected_v0.max(expected_v1) + 1;
        current.remove(env.key);
        let mut survivor = brother.clone();
        survivor.localdepth -= 1;
        survivor.commonbits &= mask(survivor.localdepth);
        survivor.records.extend(current.records.iter().copied());
        survivor.version = new_version;
        // survivor keeps brother's next links (the chain past the partner).
        let mut tombstone = Bucket::new(0, 0);
        tombstone.mark_deleted();
        tombstone.next = oldpage;
        tombstone.next_mgr = site.id;
        tombstone.version = new_version;
        // Logged together: recovery must never see a merged survivor
        // without its partner's tombstone.
        let committed = site.begin_txn().is_ok_and(|txn| {
            site.putbucket(oldpage, &survivor, &mut buf).is_ok()
                && site.putbucket(partner, &tombstone, &mut buf).is_ok()
                && txn.commit().is_ok()
        });
        site.unlock(owner, partner, LockMode::Xi);
        site.unlock(owner, oldpage, LockMode::Xi);
        if !committed {
            bucketdone(site, env, false, None);
            return;
        }
        send_merge_update(
            site,
            env,
            env.pseudokey,
            survivor.localdepth + 1,
            expected_v0,
            expected_v1,
            new_version,
            BucketLink::new(site.id, oldpage),
            BucketLink::new(site.id, partner),
        );
        return;
    }

    // Remote "1" partner: Mergedown protocol.
    let Some(port) = site.bucket_port(partner_mgr) else {
        remove_plain(current, buf);
        return;
    };
    let (_id, reply_rx) = site.net.create_port();
    site.net.send(
        port,
        Msg::Mergedown {
            partner,
            localdepth: current.localdepth,
            reply_port: reply_rx.id(),
        },
    );
    let reply = reply_rx.recv_timeout(site.reply_timeout);
    match reply {
        Ok(Msg::MDReply {
            buffer: Some(brother),
            success: true,
            fences,
        }) => {
            // The remote side has already tombstoned the partner; finish
            // the merge here. Its records (and their fences) now live here.
            site.fence_merge(&fences);
            let expected_v0 = current.version;
            let expected_v1 = brother.version;
            let new_version = expected_v0.max(expected_v1) + 1;
            current.remove(env.key);
            let mut survivor = (*brother).clone();
            survivor.localdepth -= 1;
            survivor.commonbits &= mask(survivor.localdepth);
            survivor.records.extend(current.records.iter().copied());
            survivor.version = new_version;
            let ok = site.putbucket(oldpage, &survivor, &mut buf).is_ok();
            site.unlock(owner, oldpage, LockMode::Xi);
            if !ok {
                bucketdone(site, env, false, None);
                return;
            }
            send_merge_update(
                site,
                env,
                env.pseudokey,
                survivor.localdepth + 1,
                expected_v0,
                expected_v1,
                new_version,
                BucketLink::new(site.id, oldpage),
                BucketLink::new(partner_mgr, partner),
            );
        }
        _ => {
            // Not mergeable (or peer gone): plain removal.
            remove_plain(current, buf);
        }
    }
}

/// The key's bucket is the "1" partner; the "0" partner is `prev` —
/// merge *up* into it (locally or via Mergeup + Goahead).
fn delete_second_of_pair(
    site: &Site,
    owner: ceh_locks::OwnerId,
    env: &OpEnvelope,
    oldpage: PageId,
    current: &mut Bucket,
    mut buf: ceh_storage::PageBuf,
) {
    let partner = current.prev;
    let partner_mgr = current.prev_mgr;
    if partner.is_null() {
        let removed = current.remove(env.key);
        debug_assert!(removed);
        let ok = site.putbucket(oldpage, current, &mut buf).is_ok();
        site.unlock(owner, oldpage, LockMode::Xi);
        bucketdone(
            site,
            env,
            ok,
            ok.then_some(UserOutcome::Deleted(DeleteOutcome::Deleted)),
        );
        return;
    }
    // Lock ordering: the "0" partner precedes us in the chain, so release
    // the target before requesting the pair in order (Figure 9 / §2.2).
    site.unlock(owner, oldpage, LockMode::Xi);

    if partner_mgr == site.id || partner_mgr.is_none() {
        delete_second_local(site, owner, env, oldpage, partner, buf);
        return;
    }

    // Remote "0" partner: Mergeup protocol.
    let Some(port) = site.bucket_port(partner_mgr) else {
        bucketdone(site, env, false, None);
        return;
    };
    let (_id, reply_rx) = site.net.create_port();
    site.net.send(
        port,
        Msg::Mergeup {
            partner,
            target: oldpage,
            target_mgr: site.id,
            reply_port: reply_rx.id(),
        },
    );
    let (brother_ld, brother_version, brother_count, goahead_port) =
        match reply_rx.recv_timeout(site.reply_timeout) {
            Ok(Msg::MUReply {
                localdepth,
                version,
                goahead_port,
                success: true,
                count,
            }) => (localdepth, version, count, goahead_port),
            _ => {
                // "A": not mergeable partners — re-drive with fresh state.
                bucketdone(site, env, false, None);
                return;
            }
        };

    // Re-lock the target and re-validate everything (Figure 14 mirrors
    // Figure 9's checks).
    site.lock(owner, oldpage, LockMode::Xi);
    let mut current = match site.getbucket(oldpage, &mut buf) {
        Ok(b) => b,
        Err(_) => {
            site.unlock(owner, oldpage, LockMode::Xi);
            site.net.send(
                goahead_port,
                Msg::Goahead {
                    success: false,
                    next: BucketLink::NULL,
                    version: 0,
                    moved: vec![],
                    fences: vec![],
                },
            );
            bucketdone(site, env, false, None);
            return;
        }
    };
    if !current.owns(env.pseudokey) {
        /* z no longer belongs in oldpage */
        site.unlock(owner, oldpage, LockMode::Xi);
        site.net.send(
            goahead_port,
            Msg::Goahead {
                success: false,
                next: BucketLink::NULL,
                version: 0,
                moved: vec![],
                fences: vec![],
            },
        );
        bucketdone(site, env, false, None);
        return;
    }
    let still_mergeable = current.localdepth == brother_ld
        && current.count() <= site.cfg.merge_threshold + 1
        && current.search(env.key).is_some()
        && current.count() - 1 + brother_count <= site.cfg.bucket_capacity;
    if !still_mergeable {
        site.net.send(
            goahead_port,
            Msg::Goahead {
                success: false,
                next: BucketLink::NULL,
                version: 0,
                moved: vec![],
                fences: vec![],
            },
        );
        let outcome = if current.remove(env.key) {
            let ok = site.putbucket(oldpage, &current, &mut buf).is_ok();
            if !ok {
                site.unlock(owner, oldpage, LockMode::Xi);
                bucketdone(site, env, false, None);
                return;
            }
            DeleteOutcome::Deleted
        } else {
            DeleteOutcome::NotFound
        };
        site.unlock(owner, oldpage, LockMode::Xi);
        bucketdone(site, env, true, Some(UserOutcome::Deleted(outcome)));
        return;
    }

    /* MERGE */
    let expected_v1 = current.version;
    let new_version = expected_v1.max(brother_version) + 1;
    current.remove(env.key);
    let moved: Vec<Record> = current.records.clone();
    let old_next = BucketLink::new(current.next_mgr, current.next);
    let old_localdepth = current.localdepth;
    let mut tombstone = Bucket::new(0, 0);
    tombstone.mark_deleted();
    tombstone.next = partner;
    tombstone.next_mgr = partner_mgr;
    tombstone.version = new_version;
    let ok = site.putbucket(oldpage, &tombstone, &mut buf).is_ok();
    site.net.send(
        goahead_port,
        Msg::Goahead {
            success: ok,
            next: old_next,
            version: new_version,
            moved,
            fences: site.fence_snapshot(),
        },
    );
    site.unlock(owner, oldpage, LockMode::Xi);
    if !ok {
        bucketdone(site, env, false, None);
        return;
    }
    send_merge_update(
        site,
        env,
        env.pseudokey,
        old_localdepth,
        brother_version,
        expected_v1,
        new_version,
        BucketLink::new(partner_mgr, partner),
        BucketLink::new(site.id, oldpage),
    );
}

/// Local second-of-pair merge (both partners on this site): the Figure 9
/// release-and-relock dance with its validations.
fn delete_second_local(
    site: &Site,
    owner: ceh_locks::OwnerId,
    env: &OpEnvelope,
    oldpage: PageId,
    partner: PageId,
    mut buf: ceh_storage::PageBuf,
) {
    site.lock(owner, partner, LockMode::Xi);
    let brother = match site.getbucket(partner, &mut buf) {
        Ok(b) => b,
        Err(_) => {
            site.unlock(owner, partner, LockMode::Xi);
            bucketdone(site, env, false, None);
            return;
        }
    };
    if brother.is_deleted() || brother.next != oldpage || brother.next_mgr != site.id {
        /* A: not mergeable partners */
        site.unlock(owner, partner, LockMode::Xi);
        bucketdone(site, env, false, None);
        return;
    }
    site.lock(owner, oldpage, LockMode::Xi);
    let mut current = match site.getbucket(oldpage, &mut buf) {
        Ok(b) => b,
        Err(_) => {
            site.unlock(owner, oldpage, LockMode::Xi);
            site.unlock(owner, partner, LockMode::Xi);
            bucketdone(site, env, false, None);
            return;
        }
    };
    if !current.owns(env.pseudokey) {
        site.unlock(owner, oldpage, LockMode::Xi);
        site.unlock(owner, partner, LockMode::Xi);
        bucketdone(site, env, false, None);
        return;
    }
    let still_mergeable = current.localdepth == brother.localdepth
        && current.count() <= site.cfg.merge_threshold + 1
        && current.search(env.key).is_some()
        && current.count() - 1 + brother.count() <= site.cfg.bucket_capacity;
    if !still_mergeable {
        site.unlock(owner, partner, LockMode::Xi);
        let outcome = if current.remove(env.key) {
            if site.putbucket(oldpage, &current, &mut buf).is_err() {
                site.unlock(owner, oldpage, LockMode::Xi);
                bucketdone(site, env, false, None);
                return;
            }
            DeleteOutcome::Deleted
        } else {
            DeleteOutcome::NotFound
        };
        site.unlock(owner, oldpage, LockMode::Xi);
        bucketdone(site, env, true, Some(UserOutcome::Deleted(outcome)));
        return;
    }
    let expected_v0 = brother.version;
    let expected_v1 = current.version;
    let new_version = expected_v0.max(expected_v1) + 1;
    current.remove(env.key);
    let mut survivor = brother.clone();
    survivor.localdepth -= 1;
    survivor.commonbits &= mask(survivor.localdepth);
    survivor.records.extend(current.records.iter().copied());
    survivor.next = current.next;
    survivor.next_mgr = current.next_mgr;
    survivor.version = new_version;
    let old_localdepth = current.localdepth;
    let mut tombstone = Bucket::new(0, 0);
    tombstone.mark_deleted();
    tombstone.next = partner;
    tombstone.next_mgr = site.id;
    tombstone.version = new_version;
    // Logged together (see `delete_first_of_pair`): survivor and
    // tombstone are atomic across a crash.
    let committed = site.begin_txn().is_ok_and(|txn| {
        site.putbucket(partner, &survivor, &mut buf).is_ok()
            && site.putbucket(oldpage, &tombstone, &mut buf).is_ok()
            && txn.commit().is_ok()
    });
    site.unlock(owner, oldpage, LockMode::Xi);
    site.unlock(owner, partner, LockMode::Xi);
    if !committed {
        bucketdone(site, env, false, None);
        return;
    }
    send_merge_update(
        site,
        env,
        env.pseudokey,
        old_localdepth,
        expected_v0,
        expected_v1,
        new_version,
        BucketLink::new(site.id, partner),
        BucketLink::new(site.id, oldpage),
    );
}

#[allow(clippy::too_many_arguments)]
fn send_merge_update(
    site: &Site,
    env: &OpEnvelope,
    pseudokey: ceh_types::Pseudokey,
    old_localdepth: u32,
    expected_v0: u64,
    expected_v1: u64,
    new_version: u64,
    merged: BucketLink,
    garbage: BucketLink,
) {
    site.net.send(
        env.dirmgr_port,
        Msg::Update {
            txn: env.txn,
            success: true,
            outcome: Some(UserOutcome::Deleted(DeleteOutcome::Deleted)),
            update: DirUpdate::Merge {
                pseudokey,
                old_localdepth,
                expected_v0,
                expected_v1,
                new_version,
                merged,
                garbage,
            },
            ctx: env.ctx,
        },
    );
}

/// Figure 14, `case mergedown`: the "1" partner lives here; tombstone it
/// and hand its contents to the requesting "0" side.
fn slave_mergedown(site: &Site, partner: PageId, localdepth: u32, reply_port: PortId) {
    let owner = site.locks.new_owner();
    site.lock(owner, partner, LockMode::Xi);
    let mut buf = site.new_buf();
    let brother = match site.getbucket(partner, &mut buf) {
        Ok(b) => b,
        Err(_) => {
            site.unlock(owner, partner, LockMode::Xi);
            site.net.send(
                reply_port,
                Msg::MDReply {
                    buffer: None,
                    success: false,
                    fences: vec![],
                },
            );
            return;
        }
    };
    let success = !brother.is_deleted() && brother.localdepth == localdepth;
    if !success {
        site.unlock(owner, partner, LockMode::Xi);
        site.net.send(
            reply_port,
            Msg::MDReply {
                buffer: None,
                success: false,
                fences: vec![],
            },
        );
        return;
    }
    // "brother -> commonbits = deleted; brother -> next = brother -> prev;"
    let mut tombstone = Bucket::new(0, 0);
    tombstone.mark_deleted();
    tombstone.next = brother.prev;
    tombstone.next_mgr = brother.prev_mgr;
    tombstone.version = brother.version;
    let ok = site.putbucket(partner, &tombstone, &mut buf).is_ok();
    site.unlock(owner, partner, LockMode::Xi);
    site.net.send(
        reply_port,
        Msg::MDReply {
            buffer: ok.then(|| Box::new(brother)),
            success: ok,
            fences: site.fence_snapshot(),
        },
    );
}

/// Figure 14, `case mergeup`: the "0" partner lives here; hold it
/// ξ-locked while the deleter validates, then commit on Goahead.
fn slave_mergeup(
    site: &Site,
    partner: PageId,
    target: PageId,
    target_mgr: ceh_types::ManagerId,
    reply_port: PortId,
) {
    let owner = site.locks.new_owner();
    site.lock(owner, partner, LockMode::Xi);
    let mut buf = site.new_buf();
    let mut brother = match site.getbucket(partner, &mut buf) {
        Ok(b) => b,
        Err(_) => {
            site.unlock(owner, partner, LockMode::Xi);
            site.net.send(
                reply_port,
                Msg::MUReply {
                    localdepth: 0,
                    version: 0,
                    goahead_port: reply_port,
                    success: false,
                    count: 0,
                },
            );
            return;
        }
    };
    let success = !brother.is_deleted() && brother.next == target && brother.next_mgr == target_mgr;
    if !success {
        site.unlock(owner, partner, LockMode::Xi);
        site.net.send(
            reply_port,
            Msg::MUReply {
                localdepth: 0,
                version: 0,
                goahead_port: reply_port,
                success: false,
                count: 0,
            },
        );
        return;
    }
    let (_id, goahead_rx) = site.net.create_port();
    site.net.send(
        reply_port,
        Msg::MUReply {
            localdepth: brother.localdepth,
            version: brother.version,
            goahead_port: goahead_rx.id(),
            success: true,
            count: brother.count(),
        },
    );
    match goahead_rx.recv_timeout(site.reply_timeout) {
        Ok(Msg::Goahead {
            success: true,
            next,
            version,
            moved,
            fences,
        }) => {
            site.fence_merge(&fences);
            brother.localdepth -= 1;
            brother.commonbits &= mask(brother.localdepth);
            brother.records.extend(moved);
            brother.next = next.page;
            brother.next_mgr = next.manager;
            brother.version = version;
            let _ = site.putbucket(partner, &brother, &mut buf);
        }
        Ok(Msg::Goahead { success: false, .. }) => {}
        Ok(_) | Err(RecvError::Empty) | Err(RecvError::Disconnected) => {}
    }
    site.unlock(owner, partner, LockMode::Xi);
}

/// Figure 14, `case garbagecollect` — made idempotent for the lossy
/// network: the directory manager re-sends until acked, so a request
/// whose *ack* was lost arrives again and must only re-ack.
fn slave_garbage_collect(
    site: &Site,
    pages: Vec<PageId>,
    gc_id: u64,
    ack_port: PortId,
    ctx: ceh_obs::TraceCtx,
) {
    // Ambient context so the ξ-lock events below attribute to the merge
    // that produced this garbage.
    let _ambient = ctx.scope();
    if site.seen_gc.lock().expect("seen_gc").insert(gc_id) {
        site.metrics
            .trace_instant(ctx, "dist", "gc.collect", pages.len() as u64, gc_id);
        let owner = site.locks.new_owner();
        for page in pages {
            site.lock(owner, page, LockMode::Xi);
            match site.dealloc_page(page) {
                Ok(()) => {}
                Err(ceh_types::Error::PowerLoss) => {
                    // The site lost power mid-collection: stop without
                    // acking so the directory manager re-sends after the
                    // restart (`seen_gc` is volatile, so the re-send is
                    // executed afresh against the recovered image).
                    site.unlock(owner, page, LockMode::Xi);
                    return;
                }
                Err(e) => {
                    panic!(
                        "garbage collection of an already-freed page is a protocol violation: {e}"
                    )
                }
            }
            site.unlock(owner, page, LockMode::Xi);
        }
    }
    site.net.send(ack_port, Msg::GcAck { gc_id });
}

#[cfg(test)]
mod tests {
    //! Unit tests for the protocol handlers, driven directly against a
    //! standalone site (no cluster, no manager threads): each handler is
    //! a function of (site state, message), so it can be exercised and
    //! asserted on in isolation.

    use super::*;
    use crate::site::tests::test_site;
    use ceh_types::{ManagerId, Record};
    use std::time::Duration;

    fn put_bucket(site: &Site, b: &Bucket) -> PageId {
        let page = site.store.alloc().unwrap();
        let mut buf = site.new_buf();
        site.putbucket(page, b, &mut buf).unwrap();
        page
    }

    fn get_bucket(site: &Site, page: PageId) -> Bucket {
        let mut buf = site.new_buf();
        site.getbucket(page, &mut buf).unwrap()
    }

    #[test]
    fn mergedown_tombstones_matching_partner_and_replies_with_contents() {
        let site = test_site(0, 1, None);
        let mut partner = Bucket::new(3, 0b101);
        partner.add(Record::new(0b1101, 9));
        partner.prev = PageId(7);
        partner.prev_mgr = ManagerId(0);
        let page = put_bucket(&site, &partner);

        let (_id, reply_rx) = site.net.create_port();
        slave_mergedown(&site, page, 3, reply_rx.id());
        match reply_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Msg::MDReply {
                buffer: Some(b),
                success: true,
                ..
            } => {
                assert_eq!(b.records, partner.records, "contents handed back");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The partner page is now a tombstone pointing at its prev.
        let tomb = get_bucket(&site, page);
        assert!(tomb.is_deleted());
        assert_eq!(tomb.next, PageId(7), "tombstone routes to the '0' partner");
        assert_eq!(site.locks.total_granted(), 0);
    }

    #[test]
    fn mergedown_refuses_on_localdepth_mismatch() {
        let site = test_site(0, 1, None);
        let partner = Bucket::new(4, 0b1101); // deeper than the request
        let page = put_bucket(&site, &partner);

        let (_id, reply_rx) = site.net.create_port();
        slave_mergedown(&site, page, 3, reply_rx.id());
        match reply_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Msg::MDReply {
                buffer: None,
                success: false,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            !get_bucket(&site, page).is_deleted(),
            "refusal leaves the bucket alone"
        );
    }

    #[test]
    fn mergeup_commits_on_goahead() {
        let site = test_site(0, 2, None);
        let target = PageId(42);
        let mut zero = Bucket::new(3, 0b001);
        zero.add(Record::new(0b1001, 1));
        zero.next = target;
        zero.next_mgr = ManagerId(1);
        zero.version = 5;
        let page = put_bucket(&site, &zero);

        let (_id, reply_rx) = site.net.create_port();
        // The handler blocks awaiting Goahead, so drive it from a thread.
        let handle = {
            let site2 = std::sync::Arc::clone(&site);
            let rid = reply_rx.id();
            std::thread::spawn(move || slave_mergeup(&site2, page, target, ManagerId(1), rid))
        };
        let goahead_port = match reply_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Msg::MUReply {
                localdepth: 3,
                version: 5,
                goahead_port,
                success: true,
                count: 1,
            } => goahead_port,
            other => panic!("unexpected {other:?}"),
        };
        // While awaiting Goahead the handler must hold its ξ.
        assert!(site.locks.total_granted() > 0);
        site.net.send(
            goahead_port,
            Msg::Goahead {
                success: true,
                next: BucketLink::new(ManagerId(0), PageId(9)),
                version: 6,
                moved: vec![Record::new(0b101, 2)],
                fences: vec![],
            },
        );
        handle.join().unwrap();
        let merged = get_bucket(&site, page);
        assert_eq!(merged.localdepth, 2, "localdepth shrank");
        assert_eq!(merged.commonbits, 0b01);
        assert_eq!(merged.version, 6);
        assert_eq!(merged.next, PageId(9), "spliced past the deleted bucket");
        assert_eq!(merged.count(), 2, "moved records absorbed");
        assert_eq!(site.locks.total_granted(), 0);
    }

    #[test]
    fn mergeup_aborts_on_negative_goahead() {
        let site = test_site(0, 2, None);
        let target = PageId(42);
        let mut zero = Bucket::new(3, 0b001);
        zero.next = target;
        zero.next_mgr = ManagerId(1);
        let page = put_bucket(&site, &zero);

        let (_id, reply_rx) = site.net.create_port();
        let handle = {
            let site2 = std::sync::Arc::clone(&site);
            let rid = reply_rx.id();
            std::thread::spawn(move || slave_mergeup(&site2, page, target, ManagerId(1), rid))
        };
        let goahead_port = match reply_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Msg::MUReply {
                goahead_port,
                success: true,
                ..
            } => goahead_port,
            other => panic!("unexpected {other:?}"),
        };
        site.net.send(
            goahead_port,
            Msg::Goahead {
                success: false,
                next: BucketLink::NULL,
                version: 0,
                moved: vec![],
                fences: vec![],
            },
        );
        handle.join().unwrap();
        assert_eq!(
            get_bucket(&site, page),
            zero,
            "abort leaves the partner untouched"
        );
        assert_eq!(site.locks.total_granted(), 0);
    }

    #[test]
    fn mergeup_refuses_when_next_does_not_match_target() {
        let site = test_site(0, 2, None);
        let mut zero = Bucket::new(3, 0b001);
        zero.next = PageId(42);
        zero.next_mgr = ManagerId(1);
        let page = put_bucket(&site, &zero);

        let (_id, reply_rx) = site.net.create_port();
        // Wrong target page: the label-A condition.
        slave_mergeup(&site, page, PageId(43), ManagerId(1), reply_rx.id());
        match reply_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Msg::MUReply { success: false, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(get_bucket(&site, page), zero);
        assert_eq!(site.locks.total_granted(), 0);
    }

    #[test]
    fn garbage_collect_deallocates_under_xi_and_acks() {
        let site = test_site(0, 1, None);
        let a = put_bucket(&site, &Bucket::new(0, 0));
        let b = put_bucket(&site, &Bucket::new(0, 0));
        let (_id, ack_rx) = site.net.create_port();
        slave_garbage_collect(&site, vec![a, b], 7, ack_rx.id(), ceh_obs::TraceCtx::NONE);
        assert_eq!(site.store.allocated_pages(), 0);
        assert_eq!(site.locks.total_granted(), 0);
        match ack_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Msg::GcAck { gc_id: 7 } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_collect_duplicate_reacks_without_double_free() {
        let site = test_site(0, 1, None);
        let a = put_bucket(&site, &Bucket::new(0, 0));
        let (_id, ack_rx) = site.net.create_port();
        slave_garbage_collect(&site, vec![a], 3, ack_rx.id(), ceh_obs::TraceCtx::NONE);
        // The page gets reallocated to a live bucket...
        let reused = site.store.alloc().unwrap();
        assert_eq!(reused, a, "LIFO free list hands the page back");
        // ...and a duplicate of the same collection request arrives (the
        // original ack was lost). It must re-ack and leave the page alone.
        slave_garbage_collect(&site, vec![a], 3, ack_rx.id(), ceh_obs::TraceCtx::NONE);
        assert_eq!(site.store.allocated_pages(), 1, "reallocated page survives");
        for _ in 0..2 {
            match ack_rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Msg::GcAck { gc_id: 3 } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
