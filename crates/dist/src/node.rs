//! Running the distributed hash file as real processes.
//!
//! [`crate::Cluster`] wires every manager into one process over the
//! simulated plane. This module is the same wiring over
//! [`ceh_net::TcpPlane`]: each manager runs in its own OS process
//! (`ceh serve --cluster <spec> --node <i>`), clients connect from
//! anywhere (`ceh client`), and the only shared state is the
//! [`ClusterSpec`] — a textual description of who listens where.
//!
//! Bootstrap conventions (no coordination service, matching the paper's
//! static manager population):
//!
//! * Node ids are spec positions plus one (node 0 is the simulated
//!   plane's namespace in [`ceh_net::PortId::for_node`] terms).
//! * Bucket managers take [`ManagerId`]s in spec order; directory
//!   managers take replica indices in spec order.
//! * The root bucket lives at `ManagerId(0)`, `PageId(0)`. A fresh
//!   bucket manager 0 allocates and writes it on first start; every
//!   directory manager starts its replica pointing there. Stores are
//!   created with zero preallocated pages so the first allocation *is*
//!   page 0.
//! * Names (`bucket-mgr-N`, `dir-mgr-N`) replicate peer-to-peer over
//!   the plane's `Hello`/`Bind` frames; a node waits for the names it
//!   depends on before serving, and the connection supervisor carries
//!   everyone through peers that start late, crash, or restart.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceh_locks::{LockManager, LockManagerConfig};
use ceh_net::{FaultPlan, PortId, SupervisorConfig, TcpConfig, TcpPlane, Transport};
use ceh_obs::{MetricsHandle, RunReport};
use ceh_storage::{
    BackendKind, DiskHandle, DurableConfig, DurableStore, PageStore, PageStoreConfig,
};
use ceh_types::bucket::Bucket;
use ceh_types::{BucketLink, Error, HashFileConfig, ManagerId, PageId, Result, RetryPolicy};

use crate::bucket_mgr::run_front_end;
use crate::client::DistClient;
use crate::directory_mgr::DirectoryManager;
use crate::msg::Msg;
use crate::replica::DirReplica;
use crate::site::{bucket_mgr_name, dir_mgr_name, Site};
use crate::DistNet;

/// What a spec entry runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// A directory manager (one replica of the directory).
    Dir,
    /// A bucket manager (front end + slaves over a site page store).
    Bucket,
}

impl std::fmt::Display for NodeRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NodeRole::Dir => "dir",
            NodeRole::Bucket => "bucket",
        })
    }
}

/// The cluster topology every process agrees on: an ordered list of
/// `role@addr` entries. Example:
/// `dir@127.0.0.1:7101,dir@127.0.0.1:7102,bucket@127.0.0.1:7103`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// The nodes, in id order (node `i` in the spec is plane node
    /// `i + 1`).
    pub nodes: Vec<(NodeRole, SocketAddr)>,
}

impl ClusterSpec {
    /// Parse a comma-separated `role@host:port` list.
    pub fn parse(s: &str) -> Result<ClusterSpec> {
        let mut nodes = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (role, addr) = part.split_once('@').ok_or_else(|| {
                Error::Config(format!("spec entry '{part}' is not role@host:port"))
            })?;
            let role = match role {
                "dir" => NodeRole::Dir,
                "bucket" => NodeRole::Bucket,
                other => return Err(Error::Config(format!("unknown node role '{other}'"))),
            };
            let addr: SocketAddr = addr
                .parse()
                .map_err(|e| Error::Config(format!("bad address '{addr}': {e}")))?;
            nodes.push((role, addr));
        }
        let spec = ClusterSpec { nodes };
        spec.validate()?;
        Ok(spec)
    }

    /// At least one manager of each kind, like [`crate::ClusterConfig`].
    pub fn validate(&self) -> Result<()> {
        if self.dir_count() == 0 || self.bucket_count() == 0 {
            return Err(Error::Config(
                "cluster spec needs at least one dir and one bucket node".into(),
            ));
        }
        if self.nodes.len() > usize::from(u16::MAX - 1) {
            return Err(Error::Config("cluster spec has too many nodes".into()));
        }
        Ok(())
    }

    /// Number of directory managers.
    pub fn dir_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|(r, _)| *r == NodeRole::Dir)
            .count()
    }

    /// Number of bucket managers.
    pub fn bucket_count(&self) -> usize {
        self.nodes.len() - self.dir_count()
    }

    /// The plane node id of spec entry `idx`.
    pub fn node_id(&self, idx: usize) -> u16 {
        (idx + 1) as u16
    }

    /// The role-local index of spec entry `idx`: its [`ManagerId`] for
    /// bucket nodes, its replica index for dir nodes.
    pub fn role_index(&self, idx: usize) -> usize {
        let role = self.nodes[idx].0;
        self.nodes[..idx].iter().filter(|(r, _)| *r == role).count()
    }

    /// Every registered name this spec's managers will bind.
    fn all_names(&self) -> Vec<String> {
        (0..self.dir_count())
            .map(dir_mgr_name)
            .chain((0..self.bucket_count()).map(|i| bucket_mgr_name(ManagerId(i as u32))))
            .collect()
    }

    /// A [`TcpConfig`] for spec entry `idx` (or, with `idx == None`, for
    /// a dial-only client node with the given id).
    pub(crate) fn tcp_config(
        &self,
        idx: Option<usize>,
        client_node: u16,
        opts: &NodeOptions,
    ) -> TcpConfig {
        let mut cfg = match idx {
            Some(i) => TcpConfig::new(self.node_id(i)).listen(self.nodes[i].1),
            None => TcpConfig::new(client_node),
        };
        for (j, &(_, addr)) in self.nodes.iter().enumerate() {
            if Some(j) != idx {
                cfg = cfg.peer(self.node_id(j), addr);
            }
        }
        cfg = cfg.supervisor(opts.supervisor);
        cfg.seed = opts.seed;
        cfg
    }
}

impl std::fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (role, addr)) in self.nodes.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{role}@{addr}")?;
        }
        Ok(())
    }
}

/// Tuning shared by [`ServeNode`] and [`TcpClusterClient`]. The
/// file-shape parameters must match across every process of a cluster
/// (they are not negotiated — same rule as `ClusterConfig`).
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// Hash-file parameters (bucket capacity, max depth, merge
    /// threshold); must be identical on every node.
    pub file: HashFileConfig,
    /// When set, a bucket node keeps its pages on disk under
    /// `data_dir` and reopens them on restart: the legacy non-WAL
    /// layout (`site-<mgr>.ceh`) when `backend` is `None`, or a
    /// crash-consistent frames + WAL directory (`site-<mgr>/`) when
    /// `backend` selects the durable file store.
    pub data_dir: Option<PathBuf>,
    /// Put the bucket site behind a [`DurableStore`]: `Some(File)`
    /// (with `data_dir`) gives real crash consistency — a SIGKILLed
    /// node recovers its acked state from the files on disk;
    /// `Some(Memory)` logs against the simulated image (testing).
    /// `None` keeps the legacy volatile / plain-file store.
    pub backend: Option<BackendKind>,
    /// Directory-manager resend interval, in milliseconds.
    pub resend_ms: u64,
    /// Bucket-slave protocol reply timeout, in milliseconds.
    pub reply_timeout_ms: u64,
    /// Seeded fault plan applied to this node's plane (frame drops,
    /// duplication, garbling, severs, delays). `None` = clean sockets.
    pub faults: Option<FaultPlan>,
    /// Seed for the plane's reconnect jitter (and, combined per link,
    /// its fault streams).
    pub seed: u64,
    /// How long to wait for peer names before giving up bootstrap, in
    /// milliseconds.
    pub bootstrap_timeout_ms: u64,
    /// Connection supervisor tuning (heartbeats, backoff, deadlines).
    pub supervisor: SupervisorConfig,
    /// Operations slower than this land in the node's slow-op log
    /// (surfaced by the admin endpoint and `ceh top --slow`). `0`
    /// disables capture entirely.
    pub slow_op_threshold_ms: u64,
}

impl Default for NodeOptions {
    fn default() -> Self {
        NodeOptions {
            file: HashFileConfig::tiny(),
            data_dir: None,
            backend: None,
            resend_ms: 200,
            reply_timeout_ms: 30_000,
            faults: None,
            seed: 0,
            bootstrap_timeout_ms: 30_000,
            supervisor: SupervisorConfig::default(),
            slow_op_threshold_ms: 250,
        }
    }
}

/// Poll the plane's replicated name table until every `name` resolves.
fn wait_for_names(net: &dyn Transport<Msg>, names: &[String], timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if names.iter().all(|n| net.lookup(n).is_some()) {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One manager process: a [`TcpPlane`] plus the manager loop for this
/// node's spec entry. Construct with [`ServeNode::start`], block on
/// [`ServeNode::join`] (the loop exits on [`Msg::Shutdown`]).
pub struct ServeNode {
    plane: TcpPlane<Msg>,
    metrics: MetricsHandle,
    handle: Option<std::thread::JoinHandle<Result<()>>>,
    admin: Option<std::thread::JoinHandle<()>>,
    admin_stop: Arc<std::sync::atomic::AtomicBool>,
    role: NodeRole,
    node: u16,
    fault_plan: Option<String>,
}

impl ServeNode {
    /// Bind this node's listener, start supervising every peer, and
    /// spawn the manager loop. Returns as soon as the plane is up; the
    /// manager thread waits (up to `bootstrap_timeout_ms`) for the peer
    /// names it depends on.
    pub fn start(spec: &ClusterSpec, idx: usize, opts: &NodeOptions) -> Result<ServeNode> {
        spec.validate()?;
        opts.file.validate()?;
        if idx >= spec.nodes.len() {
            return Err(Error::Config(format!(
                "node index {idx} out of range (spec has {} nodes)",
                spec.nodes.len()
            )));
        }
        let metrics = MetricsHandle::new();
        if opts.slow_op_threshold_ms > 0 {
            metrics
                .slow_ops()
                .enable(opts.slow_op_threshold_ms * 1_000_000, 256);
        }
        let cfg = spec.tcp_config(Some(idx), 0, opts);
        let plane: TcpPlane<Msg> = TcpPlane::start(cfg, &metrics)
            .map_err(|e| Error::Io(format!("binding {}: {e}", spec.nodes[idx].1)))?;
        // The admin endpoint must see through whatever chaos it is
        // watching: stats frames bypass every probabilistic fault rule.
        plane.set_fault_plan(
            opts.faults
                .clone()
                .map(|p| p.exempt_classes(crate::msg::ADMIN_CLASSES)),
        );
        let net: DistNet = Arc::new(plane.clone());
        let role = spec.nodes[idx].0;
        let role_idx = spec.role_index(idx);
        let bootstrap = Duration::from_millis(opts.bootstrap_timeout_ms);

        let handle = match role {
            NodeRole::Bucket => {
                let mgr = ManagerId(role_idx as u32);
                let site = build_site(spec, mgr, opts, &net, &metrics)?;
                let (port, rx) = net.create_port();
                net.register_name(&bucket_mgr_name(mgr), port);
                std::thread::Builder::new()
                    .name(format!("bucket-mgr-{mgr}"))
                    .spawn(move || {
                        run_front_end(site, rx);
                        Ok(())
                    })
                    .expect("spawn bucket manager")
            }
            NodeRole::Dir => {
                let replica = DirReplica::new(
                    opts.file.max_depth,
                    BucketLink::new(ManagerId(0), PageId(0)),
                );
                let (port, rx) = net.create_port();
                net.register_name(&dir_mgr_name(role_idx), port);
                let needed = spec.all_names();
                let dir_count = spec.dir_count();
                let resend = Duration::from_millis(opts.resend_ms);
                let net = net.clone();
                let metrics = metrics.clone();
                std::thread::Builder::new()
                    .name(format!("dir-mgr-{role_idx}"))
                    .spawn(move || {
                        // The dispatch path resolves bucket managers by
                        // name on every send; don't serve until the
                        // whole population has announced itself.
                        if !wait_for_names(net.as_ref(), &needed, bootstrap) {
                            return Err(Error::Unavailable(
                                "bootstrap: peer names never appeared".into(),
                            ));
                        }
                        DirectoryManager::with_metrics(
                            role_idx, dir_count, net, rx, replica, resend, &metrics,
                        )
                        .run();
                        Ok(())
                    })
                    .expect("spawn directory manager")
            }
        };
        // The live observability plane: an admin port answering
        // StatsRequest with windowed snapshots of this node's registry.
        let admin_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let admin = {
            let plane = plane.clone();
            let metrics = metrics.clone();
            let node = spec.node_id(idx);
            let peers: Vec<u16> = (0..spec.nodes.len())
                .filter(|&j| j != idx)
                .map(|j| spec.node_id(j))
                .collect();
            let stop = admin_stop.clone();
            std::thread::Builder::new()
                .name(format!("admin-{node}"))
                .spawn(move || crate::admin::run_admin(plane, metrics, node, role, peers, stop))
                .expect("spawn admin endpoint")
        };
        Ok(ServeNode {
            plane,
            metrics,
            handle: Some(handle),
            admin: Some(admin),
            admin_stop,
            role,
            node: spec.node_id(idx),
            fault_plan: opts.faults.as_ref().map(FaultPlan::describe),
        })
    }

    /// The address this node's listener actually bound.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.plane.local_addr()
    }

    /// This node's plane (peer states, fault injection, port surface).
    pub fn plane(&self) -> &TcpPlane<Msg> {
        &self.plane
    }

    /// This node's metrics registry.
    pub fn metrics(&self) -> MetricsHandle {
        self.metrics.clone()
    }

    /// Everything this node recorded, tagged with its identity and the
    /// fault plan in force.
    pub fn run_report(&self, name: &str) -> RunReport {
        RunReport::collect(name, &self.metrics)
            .with_meta("node", self.node)
            .with_meta("role", self.role)
            .with_meta(
                "fault_plan",
                self.fault_plan.as_deref().unwrap_or("none (reliable)"),
            )
    }

    /// Block until the manager loop exits (a [`Msg::Shutdown`] arrived
    /// or bootstrap failed), then close the plane.
    pub fn join(mut self) -> Result<()> {
        let out = match self.handle.take() {
            Some(h) => h.join().map_err(|_| Error::Io("manager panicked".into()))?,
            None => Ok(()),
        };
        self.admin_stop
            .store(true, std::sync::atomic::Ordering::Release);
        self.plane.close();
        if let Some(h) = self.admin.take() {
            let _ = h.join();
        }
        out
    }
}

/// Build a bucket node's [`Site`]: its page store (plain-file when
/// `data_dir` is set, write-ahead logged when `backend` selects a
/// durable store), locks, fences, and — on a fresh manager 0 — the
/// root bucket at the conventional `PageId(0)`. A durable file-backed
/// site whose `data_dir` already holds a medium is **recovered** from
/// it: WAL replay, checksum verification, and a decode sweep over
/// every page, exactly like [`Cluster::restart_site`].
///
/// [`Cluster::restart_site`]: crate::Cluster::restart_site
fn build_site(
    spec: &ClusterSpec,
    mgr: ManagerId,
    opts: &NodeOptions,
    net: &DistNet,
    metrics: &MetricsHandle,
) -> Result<Arc<Site>> {
    let store_cfg = PageStoreConfig {
        page_size: Bucket::page_size_for(opts.file.bucket_capacity),
        io_latency_ns: opts.file.io_latency_ns,
        initial_pages: 0, // first alloc must be page 0 (root convention)
        ..Default::default()
    };
    let (store, wal) = match (opts.backend, &opts.data_dir) {
        (None, None) => (PageStore::new_shared_with_metrics(store_cfg, metrics), None),
        (None, Some(dir)) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| Error::Io(format!("creating data_dir: {e}")))?;
            let path = dir.join(format!("site-{}.ceh", mgr.0));
            let store = Arc::new(if path.exists() {
                PageStore::open_file_with_metrics(&path, store_cfg, metrics)?
            } else {
                PageStore::create_file_with_metrics(&path, store_cfg, metrics)?
            });
            (store, None)
        }
        (Some(kind), dir) => {
            let disk = match (kind, dir) {
                (BackendKind::Memory, _) => DiskHandle::new(store_cfg.page_size),
                (BackendKind::File, Some(dir)) => {
                    DiskHandle::open_file(dir.join(format!("site-{}", mgr.0)), store_cfg.page_size)?
                }
                (BackendKind::File, None) => {
                    return Err(Error::Config(
                        "the file backend needs a data_dir for its frames and WAL".into(),
                    ));
                }
            };
            let dcfg = DurableConfig {
                page: store_cfg,
                ..Default::default()
            };
            let wal = if disk.is_empty() {
                DurableStore::with_disk(disk, dcfg, metrics)?
            } else {
                let (wal, _report) = DurableStore::recover(&disk, dcfg, metrics)?;
                // Site-local invariant sweep before serving: every
                // recovered page must decode as a bucket.
                let store = wal.cache();
                let mut buf = ceh_storage::PageBuf::zeroed(store.page_size());
                for page in store.allocated_page_ids() {
                    store.read(page, &mut buf)?;
                    Bucket::decode(&buf)?;
                }
                wal
            };
            (Arc::clone(wal.cache()), Some(wal))
        }
    };
    let site = Arc::new(Site {
        id: mgr,
        store,
        wal,
        locks: Arc::new(LockManager::with_metrics(
            LockManagerConfig::default(),
            metrics,
        )),
        cfg: opts.file.clone(),
        page_quota: None,
        all_managers: (0..spec.bucket_count() as u32).map(ManagerId).collect(),
        net: net.clone(),
        recoveries: metrics.counter("dist.recovery_hops"),
        reply_timeout: Duration::from_millis(opts.reply_timeout_ms),
        seen_gc: std::sync::Mutex::new(std::collections::HashSet::new()),
        fences: std::sync::Mutex::new(std::collections::HashMap::new()),
        metrics: metrics.clone(),
    });
    if mgr == ManagerId(0) && site.store.allocated_pages() == 0 {
        // Bootstrap the root bucket through the site funnels so a
        // durable site logs it (a power cut right after bootstrap must
        // not recover to an empty page 0).
        let txn = site.begin_txn()?;
        let root = site.alloc_page()?;
        if root != PageId(0) {
            return Err(Error::Corrupt(format!(
                "fresh store allocated {root} for the root, expected page 0"
            )));
        }
        let mut buf = site.new_buf();
        site.putbucket(root, &Bucket::new(0, 0), &mut buf)?;
        txn.commit()?;
    }
    Ok(site)
}

/// A client-side connection to a running TCP cluster: a dial-only plane
/// node that resolves every manager's port and hands out
/// [`DistClient`]s.
pub struct TcpClusterClient {
    plane: TcpPlane<Msg>,
    metrics: MetricsHandle,
    dir_ports: Vec<PortId>,
    bucket_ports: Vec<PortId>,
    retry: RetryPolicy,
}

impl TcpClusterClient {
    /// Dial every node in the spec and wait (up to
    /// `opts.bootstrap_timeout_ms`) for all manager names to resolve.
    /// `client_node` must be unique among concurrently connected
    /// clients of this cluster (spec nodes use `1..=len`; pick
    /// something higher).
    pub fn connect(
        spec: &ClusterSpec,
        client_node: u16,
        retry: RetryPolicy,
        opts: &NodeOptions,
    ) -> Result<TcpClusterClient> {
        spec.validate()?;
        if usize::from(client_node) <= spec.nodes.len() {
            return Err(Error::Config(format!(
                "client node id {client_node} collides with the spec's manager nodes"
            )));
        }
        let metrics = MetricsHandle::new();
        let cfg = spec.tcp_config(None, client_node, opts);
        let plane: TcpPlane<Msg> = TcpPlane::start(cfg, &metrics)
            .map_err(|e| Error::Io(format!("starting client plane: {e}")))?;
        plane.set_fault_plan(
            opts.faults
                .clone()
                .map(|p| p.exempt_classes(crate::msg::ADMIN_CLASSES)),
        );
        let names = spec.all_names();
        if !wait_for_names(
            &plane,
            &names,
            Duration::from_millis(opts.bootstrap_timeout_ms),
        ) {
            plane.close();
            return Err(Error::Unavailable(format!(
                "cluster did not come up within {}ms",
                opts.bootstrap_timeout_ms
            )));
        }
        let dir_ports = (0..spec.dir_count())
            .map(|i| plane.lookup(&dir_mgr_name(i)).expect("waited"))
            .collect();
        let bucket_ports = (0..spec.bucket_count())
            .map(|i| {
                plane
                    .lookup(&bucket_mgr_name(ManagerId(i as u32)))
                    .expect("waited")
            })
            .collect();
        Ok(TcpClusterClient {
            plane,
            metrics,
            dir_ports,
            bucket_ports,
            retry,
        })
    }

    /// A new [`DistClient`] over this connection (one per thread).
    pub fn client(&self) -> DistClient {
        let (_id, rx) = Transport::<Msg>::create_port(&self.plane);
        DistClient::new(
            Arc::new(self.plane.clone()),
            rx,
            self.dir_ports.clone(),
            self.retry.clone(),
            &self.metrics,
        )
    }

    /// The underlying plane (peer states, fault injection).
    pub fn plane(&self) -> &TcpPlane<Msg> {
        &self.plane
    }

    /// This connection's metrics registry (client retry/failover
    /// counters, frame histograms).
    pub fn metrics(&self) -> MetricsHandle {
        self.metrics.clone()
    }

    /// Ask every manager in the cluster to shut down, then close the
    /// local plane. Managers exit their loops at the next message
    /// boundary; `ceh serve` processes then terminate.
    pub fn shutdown_cluster(self) {
        for &p in self.dir_ports.iter().chain(self.bucket_ports.iter()) {
            self.plane.send(p, Msg::Shutdown);
        }
        // One beat for the writer threads to flush the shutdowns.
        std::thread::sleep(Duration::from_millis(50));
        self.plane.close();
    }

    /// Close the local plane without touching the cluster.
    pub fn close(self) {
        self.plane.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceh_types::{Key, Value};

    /// Reserve `n` distinct loopback ports. Binds then drops — a tiny
    /// race with other processes, acceptable in tests.
    fn free_addrs(n: usize) -> Vec<SocketAddr> {
        let listeners: Vec<std::net::TcpListener> = (0..n)
            .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0"))
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().expect("addr"))
            .collect()
    }

    #[test]
    fn spec_parses_and_renders() {
        let spec =
            ClusterSpec::parse("dir@127.0.0.1:7101, bucket@127.0.0.1:7102,bucket@127.0.0.1:7103")
                .expect("parse");
        assert_eq!(spec.dir_count(), 1);
        assert_eq!(spec.bucket_count(), 2);
        assert_eq!(spec.node_id(0), 1);
        assert_eq!(spec.role_index(2), 1, "second bucket node is ManagerId(1)");
        assert_eq!(
            spec.to_string(),
            "dir@127.0.0.1:7101,bucket@127.0.0.1:7102,bucket@127.0.0.1:7103"
        );
        assert!(
            ClusterSpec::parse("dir@127.0.0.1:7101").is_err(),
            "no bucket"
        );
        assert!(ClusterSpec::parse("wat@127.0.0.1:1").is_err());
        assert!(ClusterSpec::parse("dir-127.0.0.1:1").is_err());
    }

    #[test]
    fn two_process_cluster_over_loopback_serves_operations() {
        let addrs = free_addrs(3);
        let spec = ClusterSpec {
            nodes: vec![
                (NodeRole::Dir, addrs[0]),
                (NodeRole::Dir, addrs[1]),
                (NodeRole::Bucket, addrs[2]),
            ],
        };
        let opts = NodeOptions::default();
        let nodes: Vec<ServeNode> = (0..3)
            .map(|i| ServeNode::start(&spec, i, &opts).expect("start node"))
            .collect();
        let conn =
            TcpClusterClient::connect(&spec, 100, RetryPolicy::default(), &opts).expect("connect");
        let client = conn.client().with_timeout(Duration::from_secs(5));
        for k in 0..40u64 {
            client.insert(Key(k), Value(k * 3)).expect("insert");
        }
        assert_eq!(client.find(Key(7)).expect("find"), Some(Value(21)));
        assert_eq!(client.find(Key(999)).expect("find"), None);
        client.delete(Key(7)).expect("delete");
        assert_eq!(client.find(Key(7)).expect("find"), None);
        conn.shutdown_cluster();
        for node in nodes {
            node.join().expect("clean exit");
        }
    }
}
