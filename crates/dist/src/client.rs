//! The user-facing handle to a distributed hash file.

use std::time::Duration;

use ceh_net::{PortId, PortRx, SimNetwork};
use ceh_types::{DeleteOutcome, Error, InsertOutcome, Key, Result, Value};

use crate::msg::{Msg, OpKind, UserOutcome};

/// A client of the distributed extendible hash file.
///
/// Each client owns a reply port and talks to the directory managers in
/// round-robin — "a request can be made to any of the copies and
/// eventually it will reach the desired data" (§3). One operation at a
/// time per client; clone-by-construction via [`crate::Cluster::client`]
/// for concurrency.
pub struct DistClient {
    net: SimNetwork<Msg>,
    rx: PortRx<Msg>,
    dir_ports: Vec<PortId>,
    next_dir: std::cell::Cell<usize>,
    timeout: Duration,
}

impl DistClient {
    pub(crate) fn new(net: SimNetwork<Msg>, rx: PortRx<Msg>, dir_ports: Vec<PortId>) -> Self {
        DistClient { net, rx, dir_ports, next_dir: std::cell::Cell::new(0), timeout: Duration::from_secs(60) }
    }

    /// Override the per-operation timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn request(&self, op: OpKind, key: Key, value: Value) -> Result<UserOutcome> {
        let i = self.next_dir.get();
        self.next_dir.set((i + 1) % self.dir_ports.len());
        let port = self.dir_ports[i];
        if !self.net.send(port, Msg::Request { op, key, value, user_port: self.rx.id() }) {
            return Err(Error::Unavailable("directory manager port closed".into()));
        }
        match self.rx.recv_timeout(self.timeout) {
            Ok(Msg::UserReply { outcome: UserOutcome::Failed }) => {
                Err(Error::Unavailable("request exhausted its re-drives".into()))
            }
            Ok(Msg::UserReply { outcome }) => Ok(outcome),
            Ok(other) => Err(Error::Unavailable(format!(
                "unexpected reply {}",
                ceh_net::MsgClass::class(&other)
            ))),
            Err(_) => Err(Error::Unavailable("timed out waiting for reply".into())),
        }
    }

    /// Look up a key.
    pub fn find(&self, key: Key) -> Result<Option<Value>> {
        match self.request(OpKind::Find, key, Value(0))? {
            UserOutcome::Found(v) => Ok(v),
            other => Err(Error::Unavailable(format!("mismatched reply {other:?}"))),
        }
    }

    /// Insert a key (add-if-absent).
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        match self.request(OpKind::Insert, key, value)? {
            UserOutcome::Inserted(o) => Ok(o),
            other => Err(Error::Unavailable(format!("mismatched reply {other:?}"))),
        }
    }

    /// Delete a key.
    pub fn delete(&self, key: Key) -> Result<DeleteOutcome> {
        match self.request(OpKind::Delete, key, Value(0))? {
            UserOutcome::Deleted(o) => Ok(o),
            other => Err(Error::Unavailable(format!("mismatched reply {other:?}"))),
        }
    }
}
