//! The user-facing handle to a distributed hash file.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ceh_net::{PortId, PortRx};
use ceh_obs::{Counter, HistKind, HistResult, MetricsHandle, TraceCtx};
use ceh_types::{DeleteOutcome, Error, InsertOutcome, Key, Result, RetryPolicy, Value};

use crate::msg::{Msg, OpKind, UserOutcome};
use crate::DistNet;

/// A client of the distributed extendible hash file.
///
/// Each client owns a reply port and talks to the directory managers in
/// round-robin — "a request can be made to any of the copies and
/// eventually it will reach the desired data" (§3). One operation at a
/// time per client; clone-by-construction via [`crate::Cluster::client`]
/// for concurrency.
///
/// Under the fault model of DESIGN.md, delivery is unreliable: the
/// client retries per its [`RetryPolicy`], backing off exponentially and
/// *failing over* to the next directory manager on each attempt. Every
/// attempt reuses the operation's `req_id`, so the managers deduplicate
/// retries instead of applying them twice; replies to attempts the
/// client has already abandoned are discarded by the same id.
pub struct DistClient {
    net: DistNet,
    rx: PortRx<Msg>,
    dir_ports: Vec<PortId>,
    next_dir: std::cell::Cell<usize>,
    next_req: std::cell::Cell<u64>,
    policy: RetryPolicy,
    /// `dist.client.retries`: attempts beyond the first, per operation.
    retries: Arc<Counter>,
    /// `dist.client.failovers`: retries that targeted a *different*
    /// directory manager than the previous attempt.
    failovers: Arc<Counter>,
    /// For the per-request root span (`dist`/`request`); one relaxed
    /// atomic load per operation when tracing is off.
    metrics: MetricsHandle,
}

impl DistClient {
    pub(crate) fn new(
        net: DistNet,
        rx: PortRx<Msg>,
        dir_ports: Vec<PortId>,
        policy: RetryPolicy,
        metrics: &MetricsHandle,
    ) -> Self {
        DistClient {
            net,
            rx,
            dir_ports,
            next_dir: std::cell::Cell::new(0),
            next_req: std::cell::Cell::new(1),
            policy,
            retries: metrics.counter("dist.client.retries"),
            failovers: metrics.counter("dist.client.failovers"),
            metrics: metrics.clone(),
        }
    }

    /// Override the per-attempt reply timeout (number of attempts and
    /// backoff are unchanged; see [`DistClient::with_retry_policy`]).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.policy.timeout_ms = timeout.as_millis() as u64;
        self
    }

    /// Replace the whole retry policy.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn request(&self, op: OpKind, key: Key, value: Value) -> Result<UserOutcome> {
        let req_id = self.next_req.get();
        self.next_req.set(req_id + 1);
        // One root span per user operation: everything the request causes
        // (dispatch, bucket work, Wrongbucket hops, replication) nests
        // under this trace id across every site it touches.
        let ctx = self
            .metrics
            .trace_begin(TraceCtx::NONE, "dist", "request", key.0, req_id);
        let out = self.attempts(op, key, value, req_id, ctx);
        self.metrics
            .trace_end(ctx, "dist", "request", key.0, out.is_ok() as u64);
        out
    }

    fn attempts(
        &self,
        op: OpKind,
        key: Key,
        value: Value,
        req_id: u64,
        ctx: TraceCtx,
    ) -> Result<UserOutcome> {
        let start = self.next_dir.get();
        self.next_dir.set((start + 1) % self.dir_ports.len());
        let timeout = Duration::from_millis(self.policy.timeout_ms);
        let mut last_err = Error::Unavailable(format!("{op:?}: no directory managers configured"));
        for attempt in 0..self.policy.attempts {
            if attempt > 0 {
                self.retries.inc();
                self.metrics
                    .trace_instant(ctx, "dist", "retry", attempt as u64, req_id);
                if self.dir_ports.len() > 1 {
                    self.failovers.inc();
                    self.metrics
                        .trace_instant(ctx, "dist", "failover", attempt as u64, req_id);
                }
                std::thread::sleep(Duration::from_millis(self.policy.backoff_ms(attempt - 1)));
            }
            // Failover: each attempt targets the next manager in the
            // ring, starting from this client's round-robin position.
            let port = self.dir_ports[(start + attempt as usize) % self.dir_ports.len()];
            if !self.net.send(
                port,
                Msg::Request {
                    op,
                    key,
                    value,
                    user_port: self.rx.id(),
                    req_id,
                    ctx,
                },
            ) {
                last_err = Error::Unavailable(format!("{op:?} to {port:?}: port closed"));
                continue;
            }
            // Wait out this attempt's window, discarding stale replies
            // to earlier operations (their req_id is lower).
            let deadline = Instant::now() + timeout;
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                match self.rx.recv_timeout(left) {
                    Ok(Msg::UserReply { req_id: got, .. }) if got != req_id => continue,
                    Ok(Msg::UserReply {
                        outcome: UserOutcome::Failed,
                        ..
                    }) => {
                        // The manager gave up after exhausting re-drives;
                        // a fresh attempt may succeed once the directory
                        // settles.
                        last_err = Error::Unavailable(format!(
                            "{op:?} to {port:?}: exhausted its re-drives"
                        ));
                        break;
                    }
                    Ok(Msg::UserReply { outcome, .. }) => return Ok(outcome),
                    Ok(_) => continue,
                    Err(_) => {
                        last_err = Error::Unavailable(format!(
                            "{op:?} to {port:?}: no reply within {timeout:?}"
                        ));
                        break;
                    }
                }
            }
        }
        Err(last_err)
    }

    /// Look up a key.
    ///
    /// Recorded in the [history log](ceh_obs::HistoryLog) (when enabled)
    /// at the *client* boundary — invoke before the first send, return
    /// after the last reply — so a linearizability checker sees exactly
    /// the window the user observed, retries and failovers included. An
    /// `Err` records [`HistResult::Unknown`]: some attempt may have taken
    /// effect even though no reply made it back.
    pub fn find(&self, key: Key) -> Result<Option<Value>> {
        let hist = self.metrics.history();
        let tok = hist.invoke(HistKind::Find, key.0, 0);
        let out = match self.request(OpKind::Find, key, Value(0)) {
            Ok(UserOutcome::Found(v)) => Ok(v),
            Ok(other) => Err(Error::Unavailable(format!("mismatched reply {other:?}"))),
            Err(e) => Err(e),
        };
        hist.ret(
            tok,
            match &out {
                Ok(v) => HistResult::Found(v.map(|v| v.0)),
                Err(_) => HistResult::Unknown,
            },
        );
        out
    }

    /// Insert a key (add-if-absent). History capture as for
    /// [`DistClient::find`].
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        let hist = self.metrics.history();
        let tok = hist.invoke(HistKind::Insert, key.0, value.0);
        let out = match self.request(OpKind::Insert, key, value) {
            Ok(UserOutcome::Inserted(o)) => Ok(o),
            Ok(other) => Err(Error::Unavailable(format!("mismatched reply {other:?}"))),
            Err(e) => Err(e),
        };
        hist.ret(
            tok,
            match &out {
                Ok(o) => HistResult::Inserted(*o == InsertOutcome::Inserted),
                Err(_) => HistResult::Unknown,
            },
        );
        out
    }

    /// Delete a key. History capture as for [`DistClient::find`].
    pub fn delete(&self, key: Key) -> Result<DeleteOutcome> {
        let hist = self.metrics.history();
        let tok = hist.invoke(HistKind::Delete, key.0, 0);
        let out = match self.request(OpKind::Delete, key, Value(0)) {
            Ok(UserOutcome::Deleted(o)) => Ok(o),
            Ok(other) => Err(Error::Unavailable(format!("mismatched reply {other:?}"))),
            Err(e) => Err(e),
        };
        hist.ret(
            tok,
            match &out {
                Ok(o) => HistResult::Deleted(*o == DeleteOutcome::Deleted),
                Err(_) => HistResult::Unknown,
            },
        );
        out
    }
}
