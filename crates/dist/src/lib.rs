//! # ceh-dist — the distributed extendible hash file (§3)
//!
//! A process-structured implementation of the paper's distributed design,
//! derived from Solution 2:
//!
//! * **Directory managers** (Figure 13) each hold a **full replica** of
//!   the directory. Replicas are updated **asynchronously**: bucket-level
//!   split/merge updates carry version numbers, and a replica applies an
//!   update only when the affected entries' versions match the update's
//!   expected predecessors — otherwise the update is *parked* until its
//!   turn (the paper's `save`/`ReleaseSaved`, preventing the
//!   split-then-merge reordering catastrophe described in §3).
//! * **Bucket managers** (Figure 14) each own a disjoint set of buckets
//!   on a site-local page store with a site-local ρ/α/ξ lock manager. A
//!   front-end process dispatches each request to a *slave* process.
//!   Cross-site protocols: `Wrongbucket` forwarding (hand-over-hand
//!   locking preserved across sites by deferring the forwarder's unlock
//!   until the receiver has locked and acked), `Splitbucket` (allocate
//!   the new half on another site when local space runs out),
//!   `Mergedown` / `Mergeup`+`Goahead` (cross-site merges, with the "1"
//!   partner left behind as a tombstone whose `next` leads to the
//!   survivor).
//! * **Garbage collection**: a directory manager that initiates a merge
//!   update remembers the garbage page and deallocates it (via a
//!   `GarbageCollect` message to the owning bucket manager) only after
//!   every replica has applied and acknowledged the update — and each
//!   replica defers its acknowledgement until it has no requests in
//!   flight ("the equivalent of ξ-locking", Figure 13). Obsolete
//!   directory entries are usable in the meantime: they lead to a bucket
//!   from which the right bucket is reachable via `next` links.
//!
//! Everything above the network programs against [`ceh_net::Transport`]
//! (the [`DistNet`] alias) — reliable-while-healthy, buffered, port-based
//! asynchronous messages, with optional latency/jitter (jitter reorders
//! deliveries, which is precisely what the version scheme must tolerate).
//! [`Cluster`] wires the whole file up in one process over
//! [`ceh_net::SimNetwork`]; [`node`] runs each manager as its own OS
//! process over [`ceh_net::TcpPlane`] (`ceh serve` / `ceh client`), with
//! the [`wire`] module giving every [`Msg`] a frame encoding.
//! [`DistClient`] is the user-facing handle in both worlds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admin;
mod bucket_mgr;
mod client;
mod cluster;
mod directory_mgr;
pub mod msg;
pub mod node;
pub mod replica;
mod site;
pub mod wire;

/// The message plane the distributed layer runs on: any [`ceh_net::Transport`]
/// carrying [`Msg`]s — the simulated [`ceh_net::SimNetwork`] inside
/// [`Cluster`], or a [`ceh_net::TcpPlane`] when the managers are real
/// processes ([`node`]).
pub type DistNet = std::sync::Arc<dyn ceh_net::Transport<Msg>>;

pub use admin::{AdminClient, NodeStats};
pub use client::DistClient;
pub use cluster::{Cluster, ClusterConfig};
pub use msg::Msg;
pub use node::{ClusterSpec, NodeOptions, NodeRole, ServeNode, TcpClusterClient};
pub use replica::{ApplyResult, DirEntry, DirReplica, DirUpdate};
