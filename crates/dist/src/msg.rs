//! The message vocabulary — one variant per message id of Figure 11,
//! with the fields of Figure 12.
//!
//! Deviations from the figures (documented per DESIGN.md):
//!
//! * `Request` carries the value to insert (the paper's index stores keys
//!   plus "associated information"; the figures elide the value).
//! * `Bucketdone` carries the user-visible outcome so the directory
//!   manager can answer the user — the figures track request completion
//!   but never show the reply path for updates.
//! * `Goahead` carries the records moved out of the deleted bucket, which
//!   is empty at the paper's merge threshold (the lone record being
//!   deleted) but not for the generalized thresholds this library
//!   supports.
//! * The fault-tolerance extension (DESIGN.md "Fault model"): `Request`,
//!   `UserReply`, and `OpEnvelope` carry a client-assigned `req_id` so
//!   retried requests deduplicate instead of double-applying;
//!   `Copyupdate`/`CopyAck` carry an `update_id` and
//!   `GarbageCollect`/`GcAck` a `gc_id` so replication traffic can be
//!   re-sent until acknowledged. The paper assumes reliable delivery and
//!   needs none of these.
//! * The causal-tracing extension (DESIGN.md "Causal tracing"): the
//!   envelope plus `Request`/`Update`/`Copyupdate`/`GarbageCollect`
//!   carry a [`TraceCtx`], so every hop of a request — including
//!   re-drives, failovers, and the replication/GC traffic a request
//!   triggers — attributes to the originating client span. The context
//!   is zero-sized in effect when tracing is off (`TraceCtx::NONE`).

use ceh_net::{MsgClass, PortId};
use ceh_obs::TraceCtx;
use ceh_types::bucket::Bucket;
use ceh_types::{BucketLink, DeleteOutcome, InsertOutcome, Key, PageId, Pseudokey, Record, Value};

use crate::replica::DirUpdate;

/// The observability plane's message classes, exempted from every
/// probabilistic fault rule when a plan is installed on a serve node
/// (`FaultPlan::exempt_classes`): the dashboard must see through the
/// chaos it is watching. Structural faults (a dead node) still apply —
/// that is the poller's stale path.
pub const ADMIN_CLASSES: &[&str] = &["stats-request", "stats-reply"];

/// Which user operation a request/bucket message drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Look up a key.
    Find,
    /// Insert a key/value.
    Insert,
    /// Delete a key.
    Delete,
}

/// The reply a user ultimately receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserOutcome {
    /// Result of a find.
    Found(Option<Value>),
    /// Result of an insert.
    Inserted(InsertOutcome),
    /// Result of a delete.
    Deleted(DeleteOutcome),
    /// The request could not be completed after exhausting re-drives
    /// (surfaced to the client as an availability error).
    Failed,
}

/// Everything a bucket slave needs to carry on with a request — the
/// common fields of the `Find`, `Insert`, `Delete`, and `Wrongbucket`
/// messages of Figure 12.
#[derive(Debug, Clone)]
pub struct OpEnvelope {
    /// Which operation.
    pub op: OpKind,
    /// The target key.
    pub key: Key,
    /// Value for inserts.
    pub value: Value,
    /// Transaction number (directory manager context id).
    pub txn: u64,
    /// The page address to start from, meaningful to the receiving
    /// manager.
    pub page: PageId,
    /// The user's reply port.
    pub user_port: PortId,
    /// The coordinating directory manager's reply port.
    pub dirmgr_port: PortId,
    /// The pseudokey (precomputed by the directory manager, Figure 13).
    pub pseudokey: Pseudokey,
    /// How many times the coordinating directory manager has re-driven
    /// this request; slaves stop attempting merges after a few (the same
    /// bounded degradation as the centralized Solution 2).
    pub attempt: u32,
    /// The client's request id (flows through so the final `UserReply`
    /// can echo it).
    pub req_id: u64,
    /// Trace context of the dispatch span this request runs under;
    /// bucket slaves install it so core/lock spans nest beneath it.
    pub ctx: TraceCtx,
}

/// All messages exchanged in the distributed system.
#[derive(Debug, Clone)]
pub enum Msg {
    /// User → directory manager: perform an operation.
    Request {
        /// The operation.
        op: OpKind,
        /// The key.
        key: Key,
        /// The value (inserts; ignored otherwise).
        value: Value,
        /// Where the user expects the reply.
        user_port: PortId,
        /// Client-assigned id, unique per client port. A retry after a
        /// lost reply reuses the id, so the directory manager can return
        /// the recorded outcome instead of applying the operation twice.
        req_id: u64,
        /// The client's per-request root span; everything the request
        /// causes downstream nests under this trace.
        ctx: TraceCtx,
    },
    /// Terminal reply to the user.
    UserReply {
        /// The outcome.
        outcome: UserOutcome,
        /// Echo of the request's `req_id`; lets the client discard
        /// stale replies to attempts it has already given up on.
        req_id: u64,
    },
    /// Directory manager → bucket manager: run an operation at a bucket.
    BucketOp(OpEnvelope),
    /// Bucket manager → bucket manager: the search must continue on your
    /// site; the sender holds its lock until you ack (hand-over-hand
    /// across sites).
    Wrongbucket {
        /// The request being forwarded.
        env: OpEnvelope,
        /// The forwarding slave's reply port (for the ack).
        buckmgr_port: PortId,
    },
    /// Ack for `Wrongbucket`: the receiver has locked the next bucket;
    /// the forwarder may release its lock.
    WrongbucketAck,
    /// Bucket slave → directory manager: the operation finished (or
    /// failed and should be re-driven) without directory changes.
    Bucketdone {
        /// The transaction this concludes.
        txn: u64,
        /// False = re-drive the request with fresh directory state.
        success: bool,
        /// The user-visible outcome when `success`.
        outcome: Option<UserOutcome>,
    },
    /// Bucket slave → its directory manager: a split or merge happened;
    /// update the directory (and broadcast to the other replicas).
    Update {
        /// The transaction that caused it.
        txn: u64,
        /// False for a split that failed to place the key: after the
        /// directory update, re-drive the request.
        success: bool,
        /// The user-visible outcome when `success`.
        outcome: Option<UserOutcome>,
        /// The directory modification itself.
        update: DirUpdate,
        /// Context of the dispatch that caused the structural change;
        /// replication traffic it triggers inherits this.
        ctx: TraceCtx,
    },
    /// Directory manager → directory manager: apply this update to your
    /// replica and ack to `ack_port`. Re-sent on a timer until acked;
    /// the replica's version-matching makes redelivery harmless (a
    /// duplicate is `Stale` and acked again).
    Copyupdate {
        /// The directory modification.
        update: DirUpdate,
        /// Originator-assigned id for matching the ack to this send.
        update_id: u64,
        /// Where to send the ack.
        ack_port: PortId,
        /// Context of the request whose split/merge is being replicated.
        ctx: TraceCtx,
    },
    /// Ack for `Copyupdate` (deferred at the replica until it has no
    /// requests in flight, for merge updates).
    CopyAck {
        /// Echo of the `Copyupdate`'s id.
        update_id: u64,
    },
    /// Bucket slave → bucket manager front end: store this freshly split
    /// half on your site.
    Splitbucket {
        /// Where to send the reply.
        reply_port: PortId,
        /// The new bucket's contents.
        half2: Box<Bucket>,
        /// The sender's mutation-fence table; merged at the receiving
        /// site so migrated records keep their zombie protection.
        fences: Vec<(PortId, u64)>,
    },
    /// Reply to `Splitbucket`: where the half landed.
    Splitreply {
        /// The page/manager now holding the new half.
        link: BucketLink,
    },
    /// Deleter → partner's manager: z is in the "0" partner; merge the
    /// "1" partner (at `partner`) down into it.
    Mergedown {
        /// The partner's page address on your site.
        partner: PageId,
        /// The deleter's bucket's localdepth; merge only if equal.
        localdepth: u32,
        /// Where to send the reply.
        reply_port: PortId,
    },
    /// Reply to `Mergedown`: partner contents if merging may proceed.
    MDReply {
        /// The partner's contents (when `success`).
        buffer: Option<Box<Bucket>>,
        /// Whether the partner was mergeable (localdepths matched).
        success: bool,
        /// The partner site's mutation-fence table (records migrate to
        /// the deleter's site with the merge).
        fences: Vec<(PortId, u64)>,
    },
    /// Deleter → partner's manager: z is in the "1" partner (`target`,
    /// on the requesting manager); lock the "0" partner (at `partner`)
    /// and hold while the deleter validates.
    Mergeup {
        /// The "0" partner's page on your site.
        partner: PageId,
        /// The deleter's bucket (the "1" partner) — for the
        /// `brother.next == target` check.
        target: PageId,
        /// The manager owning `target`.
        target_mgr: ceh_types::ManagerId,
        /// Where to send the reply.
        reply_port: PortId,
    },
    /// Reply to `Mergeup`.
    MUReply {
        /// The "0" partner's localdepth.
        localdepth: u32,
        /// The "0" partner's version.
        version: u64,
        /// Port awaiting the `Goahead` (when `success`).
        goahead_port: PortId,
        /// Whether `partner.next == target` held (merging may proceed).
        success: bool,
        /// The "0" partner's record count (for the merged-capacity
        /// check under generalized merge thresholds).
        count: usize,
    },
    /// Deleter → waiting `Mergeup` handler: commit or abort the merge.
    Goahead {
        /// Commit?
        success: bool,
        /// New `next` for the survivor (the deleted bucket's old next).
        next: BucketLink,
        /// New version for the survivor.
        version: u64,
        /// Records moved out of the deleted bucket (empty at the paper's
        /// merge threshold).
        moved: Vec<Record>,
        /// The deleter site's mutation-fence table, accompanying `moved`.
        fences: Vec<(PortId, u64)>,
    },
    /// Directory manager → bucket manager: these pages are garbage; ξ-lock
    /// and deallocate each. Re-sent on a timer until acked; the bucket
    /// manager deduplicates by `gc_id` so a duplicate cannot deallocate
    /// a page that has since been reallocated.
    GarbageCollect {
        /// The pages to reclaim.
        pages: Vec<PageId>,
        /// Originator-assigned id for dedupe and ack matching.
        gc_id: u64,
        /// Where to send the ack.
        ack_port: PortId,
        /// Context of the (last) merge that contributed the garbage.
        ctx: TraceCtx,
    },
    /// Ack for `GarbageCollect`.
    GcAck {
        /// Echo of the `GarbageCollect`'s id.
        gc_id: u64,
    },
    /// Test/diagnostic: ask a directory manager for its state.
    Status {
        /// Where to send the reply.
        reply_port: PortId,
    },
    /// Reply to `Status`.
    StatusReply {
        /// In-flight request count (the ρ counter of Figure 13).
        rho: usize,
        /// Outstanding unacked copyupdates (the α counter).
        alpha: usize,
        /// Updates parked waiting for predecessors.
        parked: usize,
        /// Replica depth.
        depth: u32,
        /// Replica entries (page links with versions).
        entries: Vec<crate::replica::DirEntry>,
        /// Garbage pages remembered but not yet collected.
        pending_garbage: usize,
    },
    /// Observability plane → any node's admin port: send back a live
    /// stats snapshot. Fault-exempt on the wire (the dashboard must see
    /// through the chaos it is watching) but never retried: a node that
    /// does not answer within the poller's deadline is reported stale.
    StatsRequest {
        /// Where to send the `StatsReply`.
        reply_port: PortId,
    },
    /// Reply to `StatsRequest`: one node's live snapshot as JSON
    /// (validated against `schemas/live_snapshot.schema.json` on the
    /// consumer side). JSON rather than a struct so the dashboard
    /// never needs a lockstep upgrade with every new gauge.
    StatsReply {
        /// The snapshot document.
        json: String,
    },
    /// Orderly shutdown of a manager loop.
    Shutdown,
}

impl MsgClass for Msg {
    fn class(&self) -> &'static str {
        match self {
            Msg::Request { .. } => "request",
            Msg::UserReply { .. } => "user-reply",
            Msg::BucketOp(env) => match env.op {
                OpKind::Find => "find",
                OpKind::Insert => "insert",
                OpKind::Delete => "delete",
            },
            Msg::Wrongbucket { .. } => "wrongbucket",
            Msg::WrongbucketAck => "wrongbucket-ack",
            Msg::Bucketdone { .. } => "bucketdone",
            Msg::Update { .. } => "update",
            Msg::Copyupdate { .. } => "copyupdate",
            Msg::CopyAck { .. } => "copy-ack",
            Msg::Splitbucket { .. } => "splitbucket",
            Msg::Splitreply { .. } => "splitreply",
            Msg::Mergedown { .. } => "mergedown",
            Msg::MDReply { .. } => "md-reply",
            Msg::Mergeup { .. } => "mergeup",
            Msg::MUReply { .. } => "mu-reply",
            Msg::Goahead { .. } => "goahead",
            Msg::GarbageCollect { .. } => "garbagecollect",
            Msg::GcAck { .. } => "gc-ack",
            Msg::Status { .. } => "status",
            Msg::StatusReply { .. } => "status-reply",
            Msg::StatsRequest { .. } => "stats-request",
            Msg::StatsReply { .. } => "stats-reply",
            Msg::Shutdown => "shutdown",
        }
    }

    fn trace_ctx(&self) -> TraceCtx {
        match self {
            Msg::Request { ctx, .. }
            | Msg::Update { ctx, .. }
            | Msg::Copyupdate { ctx, .. }
            | Msg::GarbageCollect { ctx, .. } => *ctx,
            Msg::BucketOp(env) | Msg::Wrongbucket { env, .. } => env.ctx,
            _ => TraceCtx::NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_figure_11_taxonomy() {
        let env = OpEnvelope {
            op: OpKind::Find,
            key: Key(1),
            value: Value(0),
            txn: 0,
            page: PageId(0),
            user_port: PortId(1),
            dirmgr_port: PortId(2),
            pseudokey: Pseudokey(0),
            attempt: 0,
            req_id: 0,
            ctx: TraceCtx::NONE,
        };
        assert_eq!(Msg::BucketOp(env.clone()).class(), "find");
        let mut ins = env.clone();
        ins.op = OpKind::Insert;
        assert_eq!(Msg::BucketOp(ins).class(), "insert");
        assert_eq!(
            Msg::Wrongbucket {
                env,
                buckmgr_port: PortId(3)
            }
            .class(),
            "wrongbucket"
        );
        assert_eq!(Msg::CopyAck { update_id: 0 }.class(), "copy-ack");
        assert_eq!(Msg::GcAck { gc_id: 0 }.class(), "gc-ack");
        assert_eq!(Msg::Shutdown.class(), "shutdown");
    }
}
