//! The live observability plane: every serve node's admin endpoint plus
//! the poller `ceh top` / `ceh stats --addr` drive against it.
//!
//! Each [`crate::ServeNode`] registers an `admin-<node>` port and runs
//! one admin thread: a ~1 s sampler feeding a [`SnapshotRing`] of the
//! node's registry, and a handler answering [`Msg::StatsRequest`] with a
//! [`Msg::StatsReply`] carrying a JSON snapshot — cumulative counters,
//! the windowed deltas (interval ops and per-window p50/p99), supervisor
//! peer states, the slow-op log, uptime and build identity. The document
//! shape is pinned by `schemas/live_snapshot.schema.json`.
//!
//! Failure policy ("fault-exempt but failure-isolated"): the stats
//! classes are exempted from every probabilistic fault rule when a plan
//! is installed (the dashboard must see through the chaos it is
//! watching), but a node that is down, unreachable, or shedding load
//! simply never answers — [`AdminClient::poll`] reports it as a stale
//! row after a bounded deadline instead of erroring or hanging, and
//! requests are never retried.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ceh_net::{RecvError, TcpPlane, Transport};
use ceh_obs::json::Json;
use ceh_obs::{HistogramSnapshot, MetricsHandle, SnapshotRing};
use ceh_types::{Error, Result};

use crate::msg::Msg;
use crate::node::{ClusterSpec, NodeOptions, NodeRole};

/// The admin port's registered name for plane node `node`.
pub fn admin_name(node: u16) -> String {
    format!("admin-{node}")
}

/// How far back a snapshot's window reaches: the delta is taken against
/// the oldest ring sample no older than this.
pub const WINDOW_MAX_AGE: Duration = Duration::from_secs(60);

/// The admin thread's sampling cadence (one ring sample per tick while
/// idle; every request also samples, so replies are never stale).
pub(crate) const SAMPLE_INTERVAL: Duration = Duration::from_millis(1_000);

/// How many slow-op entries a snapshot carries (the newest ones; the
/// ring's full depth stays on the node).
const SLOW_OPS_IN_SNAPSHOT: usize = 16;

/// The admin endpoint loop for one serve node. Runs until `stop` is
/// set, the plane closes, or a [`Msg::Shutdown`] arrives on the admin
/// port.
pub(crate) fn run_admin(
    plane: TcpPlane<Msg>,
    metrics: MetricsHandle,
    node: u16,
    role: NodeRole,
    peers: Vec<u16>,
    stop: Arc<AtomicBool>,
) {
    let (_port, rx) = Transport::<Msg>::create_port(&plane);
    plane.register_name(&admin_name(node), rx.id());
    // Two samples beyond the window so a full window is always
    // subtractable once uptime exceeds WINDOW_MAX_AGE.
    let ring = SnapshotRing::new(WINDOW_MAX_AGE.as_secs() as usize + 2);
    ring.sample(&metrics);
    while !stop.load(Ordering::Acquire) {
        match rx.recv_timeout(SAMPLE_INTERVAL) {
            Ok(Msg::StatsRequest { reply_port }) => {
                ring.sample(&metrics);
                let json = snapshot_json(&metrics, &ring, &plane, node, role, &peers);
                plane.send(reply_port, Msg::StatsReply { json });
            }
            Ok(Msg::Shutdown) | Err(RecvError::Disconnected) => break,
            Ok(_) => {}
            Err(RecvError::Empty) => ring.sample(&metrics),
        }
    }
}

fn hist_json(h: &HistogramSnapshot) -> Json {
    let mut m = BTreeMap::new();
    m.insert("count".to_string(), Json::Num(h.count as f64));
    m.insert("min".to_string(), Json::Num(h.min as f64));
    m.insert("max".to_string(), Json::Num(h.max as f64));
    m.insert("mean".to_string(), Json::Num(h.mean));
    m.insert("p50".to_string(), Json::Num(h.p50 as f64));
    m.insert("p90".to_string(), Json::Num(h.p90 as f64));
    m.insert("p99".to_string(), Json::Num(h.p99 as f64));
    Json::Obj(m)
}

/// Assemble one node's live snapshot document (the `StatsReply`
/// payload). Public surface is the JSON itself — see
/// `schemas/live_snapshot.schema.json` for the pinned shape.
pub(crate) fn snapshot_json(
    metrics: &MetricsHandle,
    ring: &SnapshotRing,
    plane: &TcpPlane<Msg>,
    node: u16,
    role: NodeRole,
    peers: &[u16],
) -> String {
    let snap = metrics.snapshot();
    let mut root = BTreeMap::new();
    root.insert("node".to_string(), Json::Num(f64::from(node)));
    root.insert("role".to_string(), Json::Str(role.to_string()));
    root.insert(
        "uptime_seconds".to_string(),
        Json::Num(metrics.uptime().as_secs_f64()),
    );
    let mut build = BTreeMap::new();
    build.insert(
        "version".to_string(),
        Json::Str(env!("CARGO_PKG_VERSION").to_string()),
    );
    build.insert(
        "git".to_string(),
        Json::Str(
            option_env!("CEH_BUILD_GIT_HASH")
                .unwrap_or("unknown")
                .to_string(),
        ),
    );
    root.insert("build".to_string(), Json::Obj(build));

    root.insert(
        "counters".to_string(),
        Json::Obj(
            snap.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        ),
    );
    root.insert(
        "gauges".to_string(),
        Json::Obj(
            snap.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        ),
    );
    root.insert(
        "hists".to_string(),
        Json::Obj(
            snap.hists
                .iter()
                .map(|(k, h)| (k.clone(), hist_json(h)))
                .collect(),
        ),
    );

    // The windowed view: interval counter deltas plus per-window
    // histogram summaries. Omitted until the ring holds two samples
    // (the schema subset has no union types, so absence > null).
    if let Some(w) = ring.window(WINDOW_MAX_AGE) {
        let window = {
            let mut obj = BTreeMap::new();
            obj.insert("seconds".to_string(), Json::Num(w.span.as_secs_f64()));
            obj.insert(
                "counters".to_string(),
                Json::Obj(
                    w.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            );
            obj.insert(
                "hists".to_string(),
                Json::Obj(
                    w.hists
                        .iter()
                        .map(|(k, hw)| (k.clone(), hist_json(&hw.summary())))
                        .collect(),
                ),
            );
            Json::Obj(obj)
        };
        root.insert("window".to_string(), window);
    }

    root.insert(
        "peers".to_string(),
        Json::Obj(
            peers
                .iter()
                .map(|&p| {
                    let state = plane
                        .peer_state(p)
                        .map_or("unknown".to_string(), |s| format!("{s:?}").to_lowercase());
                    (p.to_string(), Json::Str(state))
                })
                .collect(),
        ),
    );

    let slow = metrics.slow_ops();
    let entries = slow.entries();
    let newest = entries.len().saturating_sub(SLOW_OPS_IN_SNAPSHOT);
    let mut slow_obj = BTreeMap::new();
    slow_obj.insert(
        "threshold_ns".to_string(),
        Json::Num(slow.threshold_ns() as f64),
    );
    slow_obj.insert("buffered".to_string(), Json::Num(entries.len() as f64));
    slow_obj.insert("dropped".to_string(), Json::Num(slow.dropped() as f64));
    slow_obj.insert(
        "entries".to_string(),
        Json::Arr(
            entries[newest..]
                .iter()
                .map(|op| {
                    let mut e = BTreeMap::new();
                    e.insert("kind".to_string(), Json::Str(op.kind.to_string()));
                    e.insert("latency_ns".to_string(), Json::Num(op.latency_ns as f64));
                    e.insert("trace_id".to_string(), Json::Num(op.trace_id as f64));
                    e.insert("key".to_string(), Json::Num(op.key as f64));
                    e.insert(
                        "age_ms".to_string(),
                        Json::Num(op.at.elapsed().as_millis() as f64),
                    );
                    Json::Obj(e)
                })
                .collect(),
        ),
    );
    root.insert("slow_ops".to_string(), Json::Obj(slow_obj));

    let mut out = String::new();
    ceh_obs::json::write(&mut out, &Json::Obj(root));
    out
}

/// One polled node's row: identity from the spec, snapshot from the
/// node itself — or `None` when the node never answered within the
/// poll deadline (render as a stale row, not an error).
#[derive(Debug)]
pub struct NodeStats {
    /// The node's plane id (spec position + 1).
    pub node: u16,
    /// Where the spec says it listens.
    pub addr: SocketAddr,
    /// What the spec says it runs.
    pub role: NodeRole,
    /// The parsed snapshot document, `None` if the node is stale.
    pub snapshot: Option<Json>,
}

impl NodeStats {
    /// Did the node answer this poll?
    pub fn is_stale(&self) -> bool {
        self.snapshot.is_none()
    }
}

/// A dial-only plane node that polls every admin endpoint of a cluster.
///
/// Unlike [`crate::TcpClusterClient`], connecting does **not** wait for
/// the cluster's manager names: a dashboard must come up against a
/// half-dead cluster and show which half answers.
pub struct AdminClient {
    plane: TcpPlane<Msg>,
    spec: ClusterSpec,
}

impl AdminClient {
    /// Dial the spec's nodes. `client_node` must not collide with the
    /// spec's manager ids (they use `1..=len`; pick something higher,
    /// and different from any concurrently connected client).
    pub fn connect(
        spec: &ClusterSpec,
        client_node: u16,
        opts: &NodeOptions,
    ) -> Result<AdminClient> {
        spec.validate()?;
        if usize::from(client_node) <= spec.nodes.len() {
            return Err(Error::Config(format!(
                "admin client node id {client_node} collides with the spec's manager nodes"
            )));
        }
        let metrics = MetricsHandle::new();
        let cfg = spec.tcp_config(None, client_node, opts);
        let plane: TcpPlane<Msg> = TcpPlane::start(cfg, &metrics)
            .map_err(|e| Error::Io(format!("starting admin plane: {e}")))?;
        Ok(AdminClient {
            plane,
            spec: spec.clone(),
        })
    }

    /// Poll every node once, waiting at most `timeout` overall. Always
    /// returns one row per spec entry, in spec order; nodes that never
    /// answered (down, partitioned, name never resolved) come back
    /// stale rather than failing the poll.
    pub fn poll(&self, timeout: Duration) -> Vec<NodeStats> {
        let deadline = Instant::now() + timeout;
        let (reply_port, rx) = Transport::<Msg>::create_port(&self.plane);
        let n = self.spec.nodes.len();
        let mut asked = vec![false; n];
        let mut got: Vec<Option<Json>> = (0..n).map(|_| None).collect();
        let mut remaining = n;
        while remaining > 0 {
            // Ask every node whose admin name has resolved by now (name
            // replication races the poll; late resolvers get asked on a
            // later pass).
            for (i, sent) in asked.iter_mut().enumerate() {
                if !*sent {
                    if let Some(port) = self.plane.lookup(&admin_name(self.spec.node_id(i))) {
                        self.plane.send(port, Msg::StatsRequest { reply_port });
                        *sent = true;
                    }
                }
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match rx.recv_timeout(left.min(Duration::from_millis(25))) {
                Ok(Msg::StatsReply { json }) => {
                    let Ok(doc) = ceh_obs::json::parse(&json) else {
                        continue;
                    };
                    let Some(node) = doc.get("node").and_then(Json::as_u64) else {
                        continue;
                    };
                    if let Some(i) = (0..n).find(|&i| u64::from(self.spec.node_id(i)) == node) {
                        if got[i].is_none() {
                            got[i] = Some(doc);
                            remaining -= 1;
                        }
                    }
                }
                Ok(_) | Err(RecvError::Empty) => {}
                Err(RecvError::Disconnected) => break,
            }
        }
        got.into_iter()
            .enumerate()
            .map(|(i, snapshot)| NodeStats {
                node: self.spec.node_id(i),
                addr: self.spec.nodes[i].1,
                role: self.spec.nodes[i].0,
                snapshot,
            })
            .collect()
    }

    /// The spec this client polls.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Close the local plane.
    pub fn close(self) {
        self.plane.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::bucket_mgr_name;
    use crate::{NodeOptions, ServeNode};
    use ceh_net::{FaultPlan, TcpConfig};
    use ceh_types::ManagerId;

    fn free_addrs(n: usize) -> Vec<SocketAddr> {
        let listeners: Vec<std::net::TcpListener> = (0..n)
            .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0"))
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().expect("addr"))
            .collect()
    }

    #[test]
    fn snapshot_document_carries_identity_window_and_slow_ops() {
        let metrics = MetricsHandle::new();
        let plane: TcpPlane<Msg> =
            TcpPlane::start(TcpConfig::new(7), &metrics).expect("dial-only plane");
        metrics.slow_ops().enable(1, 8);
        metrics.counter("dist.requests").inc();
        metrics.histogram("dist.request_ns").record(5_000);
        metrics.slow_ops().observe("find", 5_000, 42, 9);
        let ring = SnapshotRing::new(4);
        ring.sample(&metrics);
        metrics.counter("dist.requests").inc();
        ring.sample(&metrics);

        let doc = ceh_obs::json::parse(&snapshot_json(
            &metrics,
            &ring,
            &plane,
            7,
            NodeRole::Bucket,
            &[1, 2],
        ))
        .expect("valid json");
        assert_eq!(doc.get("node").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("role").and_then(Json::as_str), Some("bucket"));
        assert!(doc.get("uptime_seconds").and_then(Json::as_f64).is_some());
        let build = doc.get("build").expect("build");
        assert_eq!(
            build.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("dist.requests"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let window = doc.get("window").expect("window");
        assert_eq!(
            window
                .get("counters")
                .and_then(|c| c.get("dist.requests"))
                .and_then(Json::as_u64),
            Some(1),
            "window carries the interval delta, not the cumulative count"
        );
        // Unconnected peers show up, marked unknown, rather than vanishing.
        let peers = doc.get("peers").expect("peers");
        assert_eq!(peers.get("1").and_then(Json::as_str), Some("unknown"));
        let slow = doc.get("slow_ops").expect("slow_ops");
        assert_eq!(slow.get("buffered").and_then(Json::as_u64), Some(1));
        let entries = match slow.get("entries") {
            Some(Json::Arr(a)) => a,
            other => panic!("slow_ops.entries should be an array, got {other:?}"),
        };
        assert_eq!(entries[0].get("kind").and_then(Json::as_str), Some("find"));
        assert_eq!(entries[0].get("trace_id").and_then(Json::as_u64), Some(42));
        plane.close();
    }

    #[test]
    fn poll_sees_through_total_frame_loss_and_marks_dead_nodes_stale() {
        let addrs = free_addrs(3);
        let spec = ClusterSpec {
            nodes: vec![
                (NodeRole::Dir, addrs[0]),
                (NodeRole::Bucket, addrs[1]),
                (NodeRole::Bucket, addrs[2]),
            ],
        };
        // Every data frame drops — the observability plane must still
        // answer (ServeNode exempts the stats classes itself).
        let opts = NodeOptions {
            faults: Some(FaultPlan::new(11).drop_all(1.0)),
            ..NodeOptions::default()
        };
        let nodes: Vec<ServeNode> = (0..3)
            .map(|i| ServeNode::start(&spec, i, &opts).expect("start node"))
            .collect();

        let admin = AdminClient::connect(&spec, 50, &opts).expect("admin connect");
        let rows = admin.poll(Duration::from_secs(10));
        assert_eq!(rows.len(), 3);
        for row in &rows {
            let doc = row.snapshot.as_ref().unwrap_or_else(|| {
                panic!("node {} should answer through the fault plan", row.node)
            });
            assert_eq!(
                doc.get("node").and_then(Json::as_u64),
                Some(u64::from(row.node))
            );
            assert_eq!(
                doc.get("role").and_then(Json::as_str),
                Some(row.role.to_string().as_str())
            );
            assert!(!row.is_stale());
        }

        // Kill bucket manager 1 (spec entry 2, plane node 3): its row
        // must come back stale within the bounded deadline while the
        // survivors stay fresh.
        let victim = admin
            .plane
            .lookup(&bucket_mgr_name(ManagerId(1)))
            .expect("name resolved");
        admin.plane.send(victim, Msg::Shutdown);
        let mut nodes = nodes;
        nodes
            .pop()
            .expect("victim handle")
            .join()
            .expect("clean exit");

        let rows = admin.poll(Duration::from_secs(2));
        assert!(rows[0].snapshot.is_some(), "dir node still fresh");
        assert!(rows[1].snapshot.is_some(), "bucket 0 still fresh");
        assert!(rows[2].is_stale(), "dead node reported stale, not an error");

        // Shut the survivors down from the admin client's clean plane
        // (the serve nodes' own planes drop every non-stats frame).
        for name in ["dir-mgr-0", "bucket-mgr-0"] {
            let p = admin.plane.lookup(name).expect("name resolved");
            admin.plane.send(p, Msg::Shutdown);
        }
        for node in nodes {
            node.join().expect("clean exit");
        }
        admin.close();
    }
}
