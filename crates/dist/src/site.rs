//! Per-site shared state for a bucket manager.
//!
//! "For simplicity, the bucket manager is presented here as a front end
//! process and a set of associated processes that are assumed to reside
//! at the same site and share secondary memory." (§3) — the front end
//! and its slaves share this struct: the site's page store (secondary
//! memory), the site's ρ/α/ξ lock manager, and the page quota that
//! drives `AvailablePages()` / remote splits.

use std::sync::Arc;

use ceh_locks::{LockId, LockManager, LockMode, OwnerId};
use ceh_net::PortId;
use ceh_obs::{Counter, MetricsHandle};
use ceh_storage::{DurableStore, DurableTxn, PageBuf, PageStore};
use ceh_types::bucket::Bucket;
use ceh_types::{HashFileConfig, ManagerId, PageId, Result};

use crate::DistNet;

/// Shared state of one bucket-manager site.
pub(crate) struct Site {
    /// This manager's identity.
    pub id: ManagerId,
    /// The site's secondary memory. In durable mode this is the WAL's
    /// volatile page cache — reads come from here, but every mutation
    /// must go through [`Site::putbucket`] / [`Site::alloc_page`] /
    /// [`Site::dealloc_page`] so it is logged before it is acked.
    pub store: Arc<PageStore>,
    /// Crash-consistent backing (`ClusterConfig::durable`): a redo WAL
    /// over an in-memory disk image. `None` = volatile site (the store
    /// alone is the truth, as in the original simulation).
    pub wal: Option<Arc<DurableStore>>,
    /// The site's lock manager (locks are site-local; cross-site mutual
    /// exclusion is by message protocol).
    pub locks: Arc<LockManager>,
    /// Hash-file tuning (bucket capacity, merge threshold).
    pub cfg: HashFileConfig,
    /// `AvailablePages()`: allocate locally while under this many live
    /// pages; beyond it, new split halves go to another manager.
    pub page_quota: Option<usize>,
    /// Every bucket manager in the cluster, for `MgrWithSpace()`.
    pub all_managers: Vec<ManagerId>,
    /// The message plane (simulated in [`crate::Cluster`], real sockets
    /// under `ceh serve`).
    pub net: DistNet,
    /// Wrong-bucket recovery hops taken by slaves on this site (both
    /// same-site `next` chases and hops that were forwarded in). The
    /// staleness experiment's primary observable: cross-site recoveries
    /// show up as `wrongbucket` messages, but same-site ones only here.
    /// Registered as `dist.recovery_hops`; every site of a cluster
    /// shares one registry, so the instrument is cluster-wide.
    pub recoveries: Arc<Counter>,
    /// How long a slave waits for a protocol reply (MDReply, MUReply,
    /// Goahead, Splitreply, WrongbucketAck) before treating the peer as
    /// gone. Short under fault injection so abandoned handshakes release
    /// their locks promptly.
    pub reply_timeout: std::time::Duration,
    /// `GarbageCollect` ids already executed on this site. A directory
    /// manager re-sends collection requests until acked, so a duplicate
    /// must be answered with a fresh ack *without* deallocating again —
    /// the page may have been reallocated to a live bucket in between.
    pub seen_gc: std::sync::Mutex<std::collections::HashSet<u64>>,
    /// Mutation fence: per client port, the highest `req_id` whose
    /// insert/delete was applied on this site. Clients are strictly
    /// sequential, so an arriving mutation with a *lower* id is a zombie
    /// — a re-drive of an attempt the client abandoned (it failed over
    /// to another directory manager and has since moved on). Applying it
    /// could resurrect deleted data; the fence refuses it instead. The
    /// table travels with records along every data-migration path
    /// (`Splitbucket`, `MDReply`, `Goahead`) so a migrated bucket keeps
    /// its protection.
    pub fences: std::sync::Mutex<std::collections::HashMap<PortId, u64>>,
    /// The cluster registry, for bucket-slave trace spans; slaves
    /// install the envelope's [`ceh_obs::TraceCtx`] as the ambient
    /// context so lock waits on this site nest under the request.
    pub metrics: MetricsHandle,
}

impl Site {
    /// `getbucket`.
    pub fn getbucket(&self, page: PageId, buf: &mut PageBuf) -> Result<Bucket> {
        self.store.read(page, buf)?;
        Bucket::decode(buf)
    }

    /// `putbucket`. Durable sites log the write (joining the ambient
    /// transaction if one is open, else as its own committed singleton)
    /// before the cache is updated; volatile sites write the store
    /// directly.
    pub fn putbucket(&self, page: PageId, bucket: &Bucket, buf: &mut PageBuf) -> Result<()> {
        bucket.encode(buf)?;
        match &self.wal {
            Some(wal) => wal.write(page, buf),
            None => self.store.write(page, buf),
        }
    }

    /// Allocate a page through the durability funnel.
    pub fn alloc_page(&self) -> Result<PageId> {
        match &self.wal {
            Some(wal) => wal.alloc(),
            None => self.store.alloc(),
        }
    }

    /// Deallocate a page through the durability funnel.
    pub fn dealloc_page(&self, page: PageId) -> Result<()> {
        match &self.wal {
            Some(wal) => wal.dealloc(page),
            None => self.store.dealloc(page),
        }
    }

    /// Open a logged transaction spanning the multi-page steps of a
    /// split or merge (no-op on a volatile site). Dropping the guard
    /// without committing aborts: none of its operations reach the
    /// durable image.
    pub fn begin_txn(&self) -> Result<DurableTxn> {
        match &self.wal {
            Some(wal) => wal.begin_txn(),
            None => Ok(DurableTxn::noop()),
        }
    }

    /// Fresh page-sized buffer.
    pub fn new_buf(&self) -> PageBuf {
        PageBuf::zeroed(self.store.page_size())
    }

    /// `AvailablePages()`: may this site take another bucket?
    pub fn available_pages(&self) -> bool {
        match self.page_quota {
            None => true,
            Some(q) => self.store.allocated_pages() < q,
        }
    }

    /// `MgrWithSpace()`: pick another manager to host a split half.
    /// Round-robin from our own id; the paper leaves placement policy
    /// open ("allocating buckets to servers on any basis other than
    /// availability of space is a hard problem … not considered here").
    pub fn mgr_with_space(&self) -> ManagerId {
        let n = self.all_managers.len();
        debug_assert!(n > 0);
        if n == 1 {
            return self.id;
        }
        let my_pos = self
            .all_managers
            .iter()
            .position(|&m| m == self.id)
            .expect("self in manager list");
        self.all_managers[(my_pos + 1) % n]
    }

    /// Resolve a manager id to its front-end port (`namelookup`).
    pub fn bucket_port(&self, mgr: ManagerId) -> Option<PortId> {
        self.net.lookup(&bucket_mgr_name(mgr))
    }

    /// Lock helpers mirroring the figures' vocabulary.
    // ceh-lint: allow(unpaired-lock) — delegating shorthand; pairing is the caller's obligation
    pub fn lock(&self, owner: OwnerId, page: PageId, mode: LockMode) {
        self.locks.lock(owner, LockId::Page(page), mode);
    }

    /// Unlock a page lock taken with [`Site::lock`].
    pub fn unlock(&self, owner: OwnerId, page: PageId, mode: LockMode) {
        self.locks.unlock(owner, LockId::Page(page), mode);
    }

    /// May a mutation stamped (`user_port`, `req_id`) still apply here?
    /// Equal ids are allowed — that is the same operation re-driven.
    pub fn fence_allows(&self, user_port: PortId, req_id: u64) -> bool {
        match self.fences.lock().expect("fences").get(&user_port) {
            Some(&hi) => req_id >= hi,
            None => true,
        }
    }

    /// Record a mutation execution, raising that port's fence.
    pub fn fence_record(&self, user_port: PortId, req_id: u64) {
        let mut f = self.fences.lock().expect("fences");
        let e = f.entry(user_port).or_insert(req_id);
        *e = (*e).max(req_id);
    }

    /// Snapshot the fence table for shipping alongside migrating records.
    pub fn fence_snapshot(&self) -> Vec<(PortId, u64)> {
        self.fences
            .lock()
            .expect("fences")
            .iter()
            .map(|(&p, &r)| (p, r))
            .collect()
    }

    /// Merge a shipped fence table (pointwise max).
    pub fn fence_merge(&self, shipped: &[(PortId, u64)]) {
        let mut f = self.fences.lock().expect("fences");
        for &(p, r) in shipped {
            let e = f.entry(p).or_insert(r);
            *e = (*e).max(r);
        }
    }
}

/// The registered name of a bucket manager's front-end port.
pub(crate) fn bucket_mgr_name(mgr: ManagerId) -> String {
    format!("bucket-mgr-{}", mgr.0)
}

/// The registered name of a directory manager's port.
pub(crate) fn dir_mgr_name(idx: usize) -> String {
    format!("dir-mgr-{idx}")
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ceh_types::bucket::Bucket;

    /// Build a standalone site for protocol-handler unit tests.
    pub(crate) fn test_site(id: u32, managers: u32, quota: Option<usize>) -> Arc<Site> {
        let cfg = HashFileConfig::tiny().with_bucket_capacity(4);
        let store = Arc::new(ceh_storage::PageStore::new(ceh_storage::PageStoreConfig {
            page_size: Bucket::page_size_for(cfg.bucket_capacity),
            ..Default::default()
        }));
        let metrics = MetricsHandle::default();
        Arc::new(Site {
            id: ManagerId(id),
            store,
            wal: None,
            locks: Arc::new(LockManager::default()),
            cfg,
            page_quota: quota,
            all_managers: (0..managers).map(ManagerId).collect(),
            net: Arc::new(ceh_net::SimNetwork::default()),
            recoveries: metrics.counter("dist.recovery_hops"),
            reply_timeout: std::time::Duration::from_secs(30),
            seen_gc: std::sync::Mutex::new(std::collections::HashSet::new()),
            fences: std::sync::Mutex::new(std::collections::HashMap::new()),
            metrics,
        })
    }

    #[test]
    fn available_pages_respects_quota() {
        let site = test_site(0, 1, Some(2));
        assert!(site.available_pages());
        site.store.alloc().unwrap();
        assert!(site.available_pages());
        site.store.alloc().unwrap();
        assert!(!site.available_pages(), "at quota");
        let unquoted = test_site(0, 1, None);
        for _ in 0..10 {
            unquoted.store.alloc().unwrap();
        }
        assert!(unquoted.available_pages(), "no quota = always available");
    }

    #[test]
    fn mgr_with_space_round_robins_and_skips_self() {
        let site = test_site(1, 3, Some(1));
        assert_eq!(site.mgr_with_space(), ManagerId(2));
        let last = test_site(2, 3, Some(1));
        assert_eq!(last.mgr_with_space(), ManagerId(0), "wraps around");
        let solo = test_site(0, 1, Some(1));
        assert_eq!(
            solo.mgr_with_space(),
            ManagerId(0),
            "single site must self-host"
        );
    }

    #[test]
    fn get_put_roundtrip_through_codec() {
        let site = test_site(0, 1, None);
        let page = site.store.alloc().unwrap();
        let mut b = Bucket::new(2, 0b01);
        b.add(ceh_types::Record::new(0b101, 7));
        let mut buf = site.new_buf();
        site.putbucket(page, &b, &mut buf).unwrap();
        assert_eq!(site.getbucket(page, &mut buf).unwrap(), b);
    }

    #[test]
    fn name_helpers_are_stable() {
        assert_eq!(bucket_mgr_name(ManagerId(3)), "bucket-mgr-3");
        assert_eq!(dir_mgr_name(0), "dir-mgr-0");
    }
}
