//! Wiring: spawn the managers, hand out clients, observe, shut down.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ceh_locks::{LockManager, LockManagerConfig};
use ceh_net::{FaultPlan, LatencyModel, MsgStatsSnapshot, PortId, SimNetwork};
use ceh_obs::{MetricsHandle, RunReport, TraceReport};
use ceh_storage::{
    BackendKind, DiskHandle, DurableConfig, DurableStore, PageBuf, PageStore, PageStoreConfig,
};
use ceh_types::bucket::Bucket;
use ceh_types::{BucketLink, Error, HashFileConfig, ManagerId, PageId, Result, RetryPolicy};

use crate::bucket_mgr::run_front_end;
use crate::client::DistClient;
use crate::directory_mgr::DirectoryManager;
use crate::msg::Msg;
use crate::replica::{DirEntry, DirReplica};
use crate::site::{bucket_mgr_name, dir_mgr_name, Site};
use crate::DistNet;

/// Cluster topology and tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of directory replicas (directory manager processes).
    pub dir_managers: usize,
    /// Number of bucket manager sites.
    pub bucket_managers: usize,
    /// Hash-file parameters (bucket capacity, max depth, merge threshold).
    pub file: HashFileConfig,
    /// Per-site page quota driving remote split placement
    /// (`AvailablePages()`); `None` = always place locally.
    pub page_quota: Option<usize>,
    /// Network latency model (jitter reorders deliveries).
    pub latency: LatencyModel,
    /// When set, each site's pages live in `<data_dir>/site-<i>.ceh`
    /// (file-backed, durable); [`Cluster::recover`] can rebuild the
    /// cluster from those files after a shutdown.
    pub data_dir: Option<std::path::PathBuf>,
    /// Seeded fault plan injected into the network (message drops,
    /// duplication, partitions). `None` = reliable delivery.
    pub faults: Option<FaultPlan>,
    /// Client retry/failover policy handed to every [`Cluster::client`].
    pub retry: RetryPolicy,
    /// How long a directory manager waits before re-sending unacked
    /// `Copyupdate`/`GarbageCollect` traffic and re-driving stalled
    /// requests, in milliseconds.
    pub resend_ms: u64,
    /// How long a bucket slave waits for a protocol reply before
    /// abandoning the handshake and releasing its locks, in
    /// milliseconds. Lower this under fault injection.
    pub reply_timeout_ms: u64,
    /// Crash-consistent sites: every site's pages are backed by a redo
    /// WAL over an in-memory disk image, [`Cluster::crash_site`] becomes
    /// a real power loss (all volatile state dropped), and
    /// [`Cluster::restart_site`] recovers the site from its durable
    /// image alone. With [`BackendKind::Memory`] the image is in-memory
    /// and `data_dir` must be unset; with [`BackendKind::File`] each
    /// site's frames + WAL live under `<data_dir>/site-<i>/`.
    pub durable: bool,
    /// Where a durable site's medium lives (see
    /// [`ceh_storage::PageBackend`]): the deterministic in-memory image
    /// (default), or real files with fsync under `data_dir`.
    pub backend: BackendKind,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            dir_managers: 2,
            bucket_managers: 2,
            file: HashFileConfig::tiny(),
            page_quota: None,
            latency: LatencyModel::none(),
            data_dir: None,
            faults: None,
            retry: RetryPolicy::default(),
            resend_ms: 200,
            reply_timeout_ms: 30_000,
            durable: false,
            backend: BackendKind::Memory,
        }
    }
}

/// A directory manager's observable state (from a `Status` probe).
#[derive(Debug, Clone)]
pub struct DirStatus {
    /// Requests in flight.
    pub rho: usize,
    /// Unacked copyupdates.
    pub alpha: usize,
    /// Parked updates.
    pub parked: usize,
    /// Replica depth.
    pub depth: u32,
    /// Replica entries.
    pub entries: Vec<DirEntry>,
    /// Remembered garbage not yet collected.
    pub pending_garbage: usize,
}

/// A running distributed extendible hash file.
///
/// ```
/// use ceh_dist::{Cluster, ClusterConfig};
/// use ceh_types::{Key, Value};
/// use std::time::Duration;
///
/// let cluster = Cluster::start(ClusterConfig::default())?;
/// let client = cluster.client();
/// for k in 0..50 {
///     client.insert(Key(k), Value(k * 10))?;
/// }
/// assert_eq!(client.find(Key(7))?, Some(Value(70)));
/// assert!(cluster.quiesce(Duration::from_secs(20)));
/// assert!(cluster.replicas_converged());
/// cluster.check_invariants()?;
/// cluster.shutdown();
/// # Ok::<(), ceh_types::Error>(())
/// ```
pub struct Cluster {
    net: SimNetwork<Msg>,
    dir_ports: Vec<PortId>,
    bucket_ports: Vec<PortId>,
    sites: Vec<Arc<Site>>,
    /// One slot per bucket manager; `None` while that site is crashed.
    bucket_handles: Vec<Option<std::thread::JoinHandle<()>>>,
    dir_handles: Vec<std::thread::JoinHandle<()>>,
    retry: RetryPolicy,
    /// The one metrics registry every layer of this cluster reports
    /// into: per-site stores and lock managers, the network, the
    /// directory managers, and every client.
    metrics: MetricsHandle,
    /// Rendering of the fault plan in force (`FaultPlan::describe`), so
    /// every [`Cluster::run_report`] records exactly what was injected.
    fault_plan: Option<String>,
}

impl Cluster {
    /// Spawn the managers and return the running cluster.
    pub fn start(cfg: ClusterConfig) -> Result<Cluster> {
        let metrics = MetricsHandle::new();
        let (net, sites) = Self::build_sites(&cfg, false, &metrics)?;
        // The root bucket lives on site 0 (logged when the site is
        // durable, so a power cut never yields an empty allocated page).
        let root_page = {
            let s0 = &sites[0];
            let txn = s0.begin_txn()?;
            let page = s0.alloc_page()?;
            let mut buf = s0.new_buf();
            s0.putbucket(page, &Bucket::new(0, 0), &mut buf)?;
            txn.commit()?;
            page
        };
        let root = BucketLink::new(sites[0].id, root_page);
        let replica = DirReplica::new(cfg.file.max_depth, root);
        Ok(Self::spawn(&cfg, net, sites, replica, metrics))
    }

    /// Rebuild a cluster from the durable site files a previous
    /// `data_dir`-configured cluster left behind. Scans every site's
    /// pages, collects crash debris (poisoned free pages, orphaned
    /// tombstones), reconstructs the directory — entry versions come
    /// straight from the buckets, which persist them — and starts the
    /// managers with identical replicas. The rebuilt cluster is
    /// invariant-checked before being returned.
    pub fn recover(cfg: ClusterConfig) -> Result<Cluster> {
        if cfg.data_dir.is_none() {
            return Err(Error::Config("recover requires data_dir".into()));
        }
        if cfg.durable {
            return Err(Error::Config(
                "Cluster::recover scans the legacy non-durable site files; a durable site \
                 comes back via restart_site (or ServeNode over the same data_dir)"
                    .into(),
            ));
        }
        let metrics = MetricsHandle::new();
        let (net, sites) = Self::build_sites(&cfg, true, &metrics)?;

        // Scan all sites.
        let mut live: Vec<(ManagerId, PageId, Bucket)> = Vec::new();
        for site in &sites {
            let mut buf = site.new_buf();
            for page in site.store.allocated_page_ids() {
                site.store.read(page, &mut buf)?;
                match Bucket::decode(&buf) {
                    Ok(b) if !b.is_deleted() => live.push((site.id, page, b)),
                    _ => site.store.dealloc(page)?, // free-page poison or tombstone
                }
            }
        }
        let replica = if live.is_empty() {
            let root_page = sites[0].store.alloc()?;
            let root = Bucket::new(0, 0);
            let mut buf = sites[0].new_buf();
            root.encode(&mut buf)?;
            sites[0].store.write(root_page, &buf)?;
            DirReplica::new(cfg.file.max_depth, BucketLink::new(sites[0].id, root_page))
        } else {
            let depth = live
                .iter()
                .map(|(_, _, b)| b.localdepth)
                .max()
                .expect("non-empty");
            let size = 1usize << depth;
            let mut entries: Vec<Option<DirEntry>> = vec![None; size];
            let mut depthcount = 0u32;
            for (mgr, page, b) in &live {
                if b.localdepth == depth {
                    depthcount += 1;
                }
                let step = 1usize << b.localdepth;
                let mut i = b.commonbits as usize;
                while i < size {
                    if entries[i].is_some() {
                        return Err(Error::Corrupt(format!(
                            "recovery: entry {i:0w$b} claimed twice",
                            w = depth as usize
                        )));
                    }
                    entries[i] = Some(DirEntry {
                        mgr: *mgr,
                        page: *page,
                        version: b.version,
                    });
                    i += step;
                }
            }
            let entries: Vec<DirEntry> = entries
                .into_iter()
                .enumerate()
                .map(|(i, e)| {
                    e.ok_or_else(|| {
                        Error::Corrupt(format!(
                            "recovery: no bucket covers entry {i:0w$b}",
                            w = depth as usize
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            DirReplica::restore(cfg.file.max_depth, entries, depthcount)?
        };
        let cluster = Self::spawn(&cfg, net, sites, replica, metrics);
        cluster.check_invariants()?;
        Ok(cluster)
    }

    /// Build the network and the per-site state (memory- or file-backed).
    fn build_sites(
        cfg: &ClusterConfig,
        open_existing: bool,
        metrics: &MetricsHandle,
    ) -> Result<(SimNetwork<Msg>, Vec<Arc<Site>>)> {
        if cfg.dir_managers == 0 || cfg.bucket_managers == 0 {
            return Err(Error::Config(
                "cluster needs at least one manager of each kind".into(),
            ));
        }
        match (cfg.backend, cfg.durable, &cfg.data_dir) {
            (BackendKind::File, true, Some(_)) => {}
            (BackendKind::File, _, _) => {
                return Err(Error::Config(
                    "the file backend needs durable mode and a data_dir to put its files in".into(),
                ));
            }
            (BackendKind::Memory, true, Some(_)) => {
                return Err(Error::Config(
                    "durable mode carries its own in-memory disk image; it cannot combine with data_dir (use backend: File for durable files)".into(),
                ));
            }
            _ => {}
        }
        cfg.file.validate()?;
        let net: SimNetwork<Msg> = SimNetwork::with_metrics(cfg.latency.clone(), metrics);
        net.set_fault_plan(cfg.faults.clone());
        let dnet: DistNet = Arc::new(net.clone());
        let page_size = Bucket::page_size_for(cfg.file.bucket_capacity);
        let all_managers: Vec<ManagerId> = (0..cfg.bucket_managers as u32).map(ManagerId).collect();
        let mut sites = Vec::new();
        for &id in &all_managers {
            let store_cfg = PageStoreConfig {
                page_size,
                io_latency_ns: cfg.file.io_latency_ns,
                initial_pages: if cfg.data_dir.is_some() { 0 } else { 64 },
                ..Default::default()
            };
            let (store, wal) = match (&cfg.data_dir, cfg.durable) {
                (None, true) => {
                    let wal = DurableStore::new(
                        DurableConfig {
                            page: store_cfg,
                            ..Default::default()
                        },
                        metrics,
                    );
                    (Arc::clone(wal.cache()), Some(wal))
                }
                (Some(dir), true) => {
                    // Durable site on the file backend: frames + WAL
                    // under `<data_dir>/site-<i>/`. A cluster start is
                    // always a fresh deployment (create truncates);
                    // restarting *one* site from its surviving files is
                    // `restart_site`, which recovers through the same
                    // DiskHandle regardless of backend.
                    let site_dir = dir.join(format!("site-{}", id.0));
                    let disk = DiskHandle::create_file(&site_dir, page_size)?;
                    let wal = DurableStore::with_disk(
                        disk,
                        DurableConfig {
                            page: store_cfg,
                            ..Default::default()
                        },
                        metrics,
                    )?;
                    (Arc::clone(wal.cache()), Some(wal))
                }
                (None, false) => (PageStore::new_shared_with_metrics(store_cfg, metrics), None),
                (Some(dir), false) => {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| Error::Io(format!("creating data_dir: {e}")))?;
                    let path = dir.join(format!("site-{}.ceh", id.0));
                    let store = Arc::new(if open_existing {
                        PageStore::open_file_with_metrics(&path, store_cfg, metrics)?
                    } else {
                        PageStore::create_file_with_metrics(&path, store_cfg, metrics)?
                    });
                    (store, None)
                }
            };
            sites.push(Arc::new(Site {
                id,
                store,
                wal,
                locks: Arc::new(LockManager::with_metrics(
                    LockManagerConfig::default(),
                    metrics,
                )),
                cfg: cfg.file.clone(),
                page_quota: cfg.page_quota,
                all_managers: all_managers.clone(),
                net: dnet.clone(),
                recoveries: metrics.counter("dist.recovery_hops"),
                reply_timeout: Duration::from_millis(cfg.reply_timeout_ms),
                seen_gc: std::sync::Mutex::new(std::collections::HashSet::new()),
                fences: std::sync::Mutex::new(std::collections::HashMap::new()),
                metrics: metrics.clone(),
            }));
        }
        Ok((net, sites))
    }

    /// Spawn front ends and directory managers (each directory manager
    /// starts from a clone of the initial replica).
    fn spawn(
        cfg: &ClusterConfig,
        net: SimNetwork<Msg>,
        sites: Vec<Arc<Site>>,
        replica: DirReplica,
        metrics: MetricsHandle,
    ) -> Cluster {
        let mut bucket_handles = Vec::new();
        let mut bucket_ports = Vec::new();
        for site in &sites {
            let (port, rx) = net.create_port();
            net.register_name(bucket_mgr_name(site.id), port);
            bucket_ports.push(port);
            let site = Arc::clone(site);
            bucket_handles.push(Some(
                std::thread::Builder::new()
                    .name(format!("bucket-mgr-{}", site.id))
                    .spawn(move || run_front_end(site, rx))
                    .expect("spawn bucket manager"),
            ));
        }
        let mut dir_handles = Vec::new();
        let mut dir_ports = Vec::new();
        for i in 0..cfg.dir_managers {
            let (port, rx) = net.create_port();
            net.register_name(dir_mgr_name(i), port);
            dir_ports.push(port);
            let mgr = DirectoryManager::with_metrics(
                i,
                cfg.dir_managers,
                Arc::new(net.clone()),
                rx,
                replica.clone(),
                Duration::from_millis(cfg.resend_ms),
                &metrics,
            );
            dir_handles.push(
                std::thread::Builder::new()
                    .name(format!("dir-mgr-{i}"))
                    .spawn(move || mgr.run())
                    .expect("spawn directory manager"),
            );
        }
        Cluster {
            net,
            dir_ports,
            bucket_ports,
            sites,
            bucket_handles,
            dir_handles,
            retry: cfg.retry.clone(),
            metrics,
            fault_plan: cfg.faults.as_ref().map(FaultPlan::describe),
        }
    }

    /// A new client (each owns its own reply port; make one per thread).
    pub fn client(&self) -> DistClient {
        let (_id, rx) = self.net.create_port();
        DistClient::new(
            Arc::new(self.net.clone()),
            rx,
            self.dir_ports.clone(),
            self.retry.clone(),
            &self.metrics,
        )
    }

    /// Kill a bucket manager's front end mid-run: its port closes at a
    /// message boundary (already-queued messages are processed, later
    /// sends fail) and the thread exits. On a volatile site this models
    /// the paper's process failure with intact secondary memory — the
    /// page store survives. On a durable site it is a real power loss:
    /// the site's `DurableStore` is cut, so every later access from a
    /// straggler slave fails and only the durable image (complete up to
    /// the last acked operation) survives for [`Cluster::restart_site`].
    /// Requests routed to the dead site stall and are re-driven by their
    /// directory manager until the restart. Returns `false` if the site
    /// is already down.
    pub fn crash_site(&mut self, idx: usize) -> bool {
        let Some(handle) = self.bucket_handles[idx].take() else {
            return false;
        };
        self.net.close_port(self.bucket_ports[idx]);
        let _ = handle.join();
        if let Some(wal) = &self.sites[idx].wal {
            wal.power_off();
        }
        true
    }

    /// Restart a crashed bucket manager: a fresh port is bound to the
    /// site's name (overwriting the dead registration) and a new front
    /// end is spawned. A volatile site resumes over the surviving
    /// in-memory state; a durable site is rebuilt **only** from its
    /// durable image — WAL replay, checksum verification, a decode sweep
    /// over every recovered page — with fresh locks, fences, and gc
    /// dedupe state, exactly as a machine coming back from power loss.
    /// Returns `Ok(false)` if the site is not down, and an error if the
    /// durable image fails recovery.
    pub fn restart_site(&mut self, idx: usize) -> Result<bool> {
        if self.bucket_handles[idx].is_some() {
            return Ok(false);
        }
        let old = Arc::clone(&self.sites[idx]);
        let site = match &old.wal {
            None => old,
            Some(dead) => {
                let disk = dead.disk();
                let dcfg = DurableConfig {
                    page: PageStoreConfig {
                        page_size: Bucket::page_size_for(old.cfg.bucket_capacity),
                        io_latency_ns: old.cfg.io_latency_ns,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let (wal, _report) = DurableStore::recover(&disk, dcfg, &self.metrics)?;
                // Site-local invariant sweep before rejoining: every
                // recovered page must decode as a bucket (tombstones are
                // legitimate — their collection is re-driven).
                let store = Arc::clone(wal.cache());
                let mut buf = PageBuf::zeroed(store.page_size());
                for page in store.allocated_page_ids() {
                    store.read(page, &mut buf)?;
                    Bucket::decode(&buf)?;
                }
                Arc::new(Site {
                    id: old.id,
                    store,
                    wal: Some(wal),
                    locks: Arc::new(LockManager::with_metrics(
                        LockManagerConfig::default(),
                        &self.metrics,
                    )),
                    cfg: old.cfg.clone(),
                    page_quota: old.page_quota,
                    all_managers: old.all_managers.clone(),
                    net: Arc::new(self.net.clone()),
                    recoveries: self.metrics.counter("dist.recovery_hops"),
                    reply_timeout: old.reply_timeout,
                    seen_gc: std::sync::Mutex::new(std::collections::HashSet::new()),
                    fences: std::sync::Mutex::new(std::collections::HashMap::new()),
                    metrics: self.metrics.clone(),
                })
            }
        };
        self.sites[idx] = Arc::clone(&site);
        let (port, rx) = self.net.create_port();
        self.net.register_name(bucket_mgr_name(site.id), port);
        self.bucket_ports[idx] = port;
        self.bucket_handles[idx] = Some(
            std::thread::Builder::new()
                .name(format!("bucket-mgr-{}", site.id))
                .spawn(move || run_front_end(site, rx))
                .expect("respawn bucket manager"),
        );
        Ok(true)
    }

    /// The backing page store of site `idx`. Chaos tests use the `Arc`
    /// identity to assert that a durable restart abandons the crashed
    /// site's in-memory state instead of resuming over it.
    pub fn site_store(&self, idx: usize) -> Arc<PageStore> {
        Arc::clone(&self.sites[idx].store)
    }

    /// The network (message statistics for the experiments).
    pub fn net(&self) -> &SimNetwork<Msg> {
        &self.net
    }

    /// Message counters so far.
    pub fn msg_stats(&self) -> MsgStatsSnapshot {
        self.net.stats()
    }

    /// The cluster-wide metrics handle: every site's store and lock
    /// manager, the network, the directory managers, and every client
    /// spawned by [`Cluster::client`] report into this one registry.
    pub fn metrics(&self) -> MetricsHandle {
        self.metrics.clone()
    }

    /// Collect everything the cluster has recorded so far into one
    /// [`RunReport`], tagged with the topology.
    pub fn run_report(&self, name: &str) -> RunReport {
        RunReport::collect(name, &self.metrics)
            .with_meta("dir_managers", self.dir_ports.len())
            .with_meta("bucket_managers", self.sites.len())
            .with_meta(
                "fault_plan",
                self.fault_plan.as_deref().unwrap_or("none (reliable)"),
            )
    }

    /// Drain the cluster's shared tracer (every layer of every site
    /// records into the one ring) and reassemble the events into
    /// per-trace causal trees. Tracing must have been enabled first
    /// (`cluster.metrics().tracer().enable(capacity)`); draining resets
    /// the ring, so consecutive calls cover disjoint windows.
    pub fn trace_report(&self) -> TraceReport {
        let tracer = self.metrics.tracer();
        let dropped = tracer.dropped();
        TraceReport::from_events(tracer.drain(), dropped)
    }

    /// Probe every directory manager's status.
    pub fn dir_statuses(&self) -> Vec<DirStatus> {
        let (_id, rx) = self.net.create_port();
        let mut out = Vec::new();
        for &p in &self.dir_ports {
            self.net.send(
                p,
                Msg::Status {
                    reply_port: rx.id(),
                },
            );
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(Msg::StatusReply {
                    rho,
                    alpha,
                    parked,
                    depth,
                    entries,
                    pending_garbage,
                }) => {
                    out.push(DirStatus {
                        rho,
                        alpha,
                        parked,
                        depth,
                        entries,
                        pending_garbage,
                    });
                }
                _ => out.push(DirStatus {
                    rho: usize::MAX,
                    alpha: usize::MAX,
                    parked: usize::MAX,
                    depth: 0,
                    entries: Vec::new(),
                    pending_garbage: usize::MAX,
                }),
            }
        }
        out
    }

    /// Wait until every directory manager is idle (no requests in
    /// flight, no unacked copyupdates, nothing parked, no pending
    /// garbage) and stays idle for two consecutive probes. Returns
    /// whether quiescence was reached within `timeout`. Polls with
    /// bounded exponential backoff (1 ms doubling to 100 ms) so a long
    /// drain doesn't spin the status channel.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut calm_streak = 0;
        let mut backoff = Duration::from_millis(1);
        while Instant::now() < deadline {
            let calm = self
                .dir_statuses()
                .iter()
                .all(|s| s.rho == 0 && s.alpha == 0 && s.parked == 0 && s.pending_garbage == 0);
            if calm {
                calm_streak += 1;
                if calm_streak >= 2 {
                    return true;
                }
                // A calm probe resets the backoff: confirmation should
                // come quickly.
                backoff = Duration::from_millis(1);
            } else {
                calm_streak = 0;
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
            std::thread::sleep(backoff);
        }
        false
    }

    /// Have all directory replicas converged to identical contents?
    /// (Meaningful at quiescence.)
    pub fn replicas_converged(&self) -> bool {
        let statuses = self.dir_statuses();
        statuses
            .windows(2)
            .all(|w| w[0].depth == w[1].depth && w[0].entries == w[1].entries)
    }

    /// Total live records across all sites (quiescent; walks every
    /// allocated page and decodes it).
    pub fn total_records(&self) -> Result<usize> {
        let mut total = 0;
        for site in &self.sites {
            let mut buf = site.new_buf();
            for page in site.store.allocated_page_ids() {
                site.store.read(page, &mut buf)?;
                let b = Bucket::decode(&buf)?;
                if !b.is_deleted() {
                    total += b.count();
                }
            }
        }
        Ok(total)
    }

    /// Count of reachable tombstones across all sites (quiescent; should
    /// be zero after garbage collection has drained).
    pub fn tombstone_count(&self) -> Result<usize> {
        let mut total = 0;
        for site in &self.sites {
            let mut buf = site.new_buf();
            for page in site.store.allocated_page_ids() {
                site.store.read(page, &mut buf)?;
                if Bucket::decode(&buf)?.is_deleted() {
                    total += 1;
                }
            }
        }
        Ok(total)
    }

    /// Per-site allocated page counts (placement experiments).
    pub fn pages_per_site(&self) -> Vec<usize> {
        self.sites
            .iter()
            .map(|s| s.store.allocated_pages())
            .collect()
    }

    /// Total wrong-bucket recovery hops across all sites (stale-route
    /// accounting; includes same-site chases that send no message).
    pub fn total_recovery_hops(&self) -> u64 {
        // Every site shares the registry's one `dist.recovery_hops`
        // counter, so reading it once is already the cluster total.
        self.metrics.counter("dist.recovery_hops").get()
    }

    /// Full structural invariant check across the cluster (quiescent use
    /// only). The distributed analogue of
    /// `ceh_core::invariants::check_concurrent_file`:
    ///
    /// 1. every directory replica is identical (depth + entries);
    /// 2. every entry routes to an allocated, non-tombstone bucket whose
    ///    `commonbits` match the entry index, with entry version ==
    ///    bucket version (Figure 10's "completely up to date" state);
    /// 3. the global `next` chain — followed *across sites* via
    ///    (manager, page) links — visits every live bucket exactly once,
    ///    in strictly increasing bit-reversed commonbits order, ending at
    ///    the all-ones bucket;
    /// 4. every record's pseudokey matches its bucket; no duplicate keys;
    /// 5. no allocated page is unreachable (no leaks, no uncollected
    ///    tombstones).
    pub fn check_invariants(&self) -> Result<()> {
        use ceh_types::{hash_key, mask};
        use std::collections::{BTreeMap, BTreeSet};

        let statuses = self.dir_statuses();
        let first = statuses
            .first()
            .ok_or_else(|| Error::Corrupt("no replicas".into()))?;
        for (i, s) in statuses.iter().enumerate() {
            if s.depth != first.depth || s.entries != first.entries {
                return Err(Error::Corrupt(format!(
                    "replica {i} diverges from replica 0"
                )));
            }
        }

        // Decode every allocated page on every site.
        let mut buckets: BTreeMap<(ManagerId, PageId), Bucket> = BTreeMap::new();
        for site in &self.sites {
            let mut buf = site.new_buf();
            for page in site.store.allocated_page_ids() {
                site.store.read(page, &mut buf)?;
                buckets.insert((site.id, page), Bucket::decode(&buf)?);
            }
        }
        for ((mgr, page), b) in &buckets {
            if b.is_deleted() {
                return Err(Error::Corrupt(format!(
                    "uncollected tombstone at {mgr}/{page} (GC incomplete)"
                )));
            }
            for r in &b.records {
                if !hash_key(r.key).matches(b.commonbits, b.localdepth) {
                    return Err(Error::Corrupt(format!(
                        "{mgr}/{page}: key {:?} does not match commonbits",
                        r.key
                    )));
                }
            }
        }

        // Directory routing + version agreement.
        let depth = first.depth;
        for (i, e) in first.entries.iter().enumerate() {
            let b = buckets.get(&(e.mgr, e.page)).ok_or_else(|| {
                Error::Corrupt(format!("entry {i} points at missing {}/{}", e.mgr, e.page))
            })?;
            if (i as u64) & mask(b.localdepth) != b.commonbits {
                return Err(Error::Corrupt(format!(
                    "entry {i:0w$b} routes to commonbits {:b}",
                    b.commonbits,
                    w = depth as usize
                )));
            }
            if e.version != b.version {
                return Err(Error::Corrupt(format!(
                    "entry {i} at version {} but bucket {}/{} at {}",
                    e.version, e.mgr, e.page, b.version
                )));
            }
        }

        // Cross-site chain walk.
        let head = (first.entries[0].mgr, first.entries[0].page);
        let mut visited: BTreeSet<(ManagerId, PageId)> = BTreeSet::new();
        let mut cur = head;
        let mut prev_rev: Option<u64> = None;
        loop {
            if !visited.insert(cur) {
                return Err(Error::Corrupt(format!(
                    "chain revisits {}/{}",
                    cur.0, cur.1
                )));
            }
            let b = buckets.get(&cur).ok_or_else(|| {
                Error::Corrupt(format!("chain reaches missing {}/{}", cur.0, cur.1))
            })?;
            let rev = b.commonbits.reverse_bits();
            if let Some(p) = prev_rev {
                if rev <= p {
                    return Err(Error::Corrupt(format!(
                        "chain order violated at {}/{} (cb {:b})",
                        cur.0, cur.1, b.commonbits
                    )));
                }
            }
            prev_rev = Some(rev);
            if b.next.is_null() {
                if b.localdepth > 0 && b.commonbits != mask(b.localdepth) {
                    return Err(Error::Corrupt(format!(
                        "chain ends at {}/{} (cb {:b}, not all-ones)",
                        cur.0, cur.1, b.commonbits
                    )));
                }
                break;
            }
            cur = (b.next_mgr, b.next);
        }
        if visited.len() != buckets.len() {
            return Err(Error::Corrupt(format!(
                "chain visits {} buckets of {} allocated",
                visited.len(),
                buckets.len()
            )));
        }

        // Global duplicate check.
        let mut keys: Vec<u64> = buckets
            .values()
            .flat_map(|b| b.records.iter().map(|r| r.key.0))
            .collect();
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::Corrupt("duplicate key across sites".into()));
        }
        Ok(())
    }

    /// Orderly shutdown: stop every manager loop and join. A site still
    /// crashed at shutdown is simply skipped.
    pub fn shutdown(mut self) {
        for &p in self.dir_ports.iter().chain(self.bucket_ports.iter()) {
            self.net.send(p, Msg::Shutdown);
        }
        for h in self.bucket_handles.iter_mut().filter_map(Option::take) {
            let _ = h.join();
        }
        for h in self.dir_handles.drain(..) {
            let _ = h.join();
        }
    }
}
