//! The directory manager server of Figure 13.
//!
//! "The locking of the directory in the centralized solution is embodied
//! in the manager's explicit scheduling of requests for its attention."
//! One thread, one replica, a context table multiplexing user requests,
//! the ρ (requests in flight) and α (unacked copyupdates) counters, a
//! parking lot for out-of-order updates, deferred acknowledgements for
//! merge copyupdates, and the remembered-garbage list driving the
//! garbage-collection phase.

use std::collections::HashMap;

use ceh_net::{PortId, PortRx, SimNetwork};
use ceh_types::{hash_key, Key, ManagerId, PageId, Value};

use crate::msg::{Msg, OpEnvelope, OpKind, UserOutcome};
use crate::replica::{ApplyResult, DirReplica, DirUpdate};
use crate::site::{bucket_mgr_name, dir_mgr_name};

/// A multiplexed user request's saved state (`SaveState`/`RestoreState`).
struct Context {
    op: OpKind,
    key: Key,
    value: Value,
    user_port: PortId,
    /// Re-drive count: bounded so persistent bucket-level refusals
    /// degrade to a merge-free attempt instead of looping (see the
    /// centralized Solution 2 for the same bound and rationale).
    attempt: u32,
}

struct Parked {
    update: DirUpdate,
    /// Present when this came in as a `Copyupdate` (we owe an ack).
    ack_port: Option<PortId>,
}

pub(crate) struct DirectoryManager {
    idx: usize,
    net: SimNetwork<Msg>,
    rx: PortRx<Msg>,
    my_port: PortId,
    replica: DirReplica,
    contexts: HashMap<u64, Context>,
    next_txn: u64,
    /// Requests in flight at this manager (Figure 13's `rho`).
    rho: usize,
    /// Outstanding unacked copyupdates we broadcast (Figure 13's `alpha`).
    alpha: usize,
    parked: Vec<Parked>,
    /// Acks for merge copyupdates, deferred until `rho == 0` — "when the
    /// equivalent of ξ-locking occurs".
    deferred_acks: Vec<PortId>,
    /// Garbage from merges *we* coordinated, per owning bucket manager
    /// (`RememberDeleted`).
    garbage: HashMap<ManagerId, Vec<PageId>>,
    /// Names of the other directory managers (resolved per send; peers
    /// spawn concurrently with us).
    peer_names: Vec<String>,
    /// Cap on re-drives before a request is failed back to the user.
    max_attempts: u32,
}

impl DirectoryManager {
    pub fn new(
        idx: usize,
        total_dir_mgrs: usize,
        net: SimNetwork<Msg>,
        rx: PortRx<Msg>,
        replica: DirReplica,
    ) -> Self {
        let my_port = rx.id();
        let peer_names =
            (0..total_dir_mgrs).filter(|&i| i != idx).map(dir_mgr_name).collect();
        DirectoryManager {
            idx,
            net,
            rx,
            my_port,
            replica,
            contexts: HashMap::new(),
            next_txn: 1,
            rho: 0,
            alpha: 0,
            parked: Vec::new(),
            deferred_acks: Vec::new(),
            garbage: HashMap::new(),
            peer_names,
            max_attempts: 20,
        }
    }

    /// The server loop (`while (true) { messageid = GetMessage (&msg); … }`).
    pub fn run(mut self) {
        // (recv error = network gone: exit the loop)
        while let Ok(msg) = self.rx.recv() {
            match msg {
                Msg::Request { op, key, value, user_port } => self.on_request(op, key, value, user_port),
                Msg::Bucketdone { txn, success, outcome } => self.on_bucketdone(txn, success, outcome),
                Msg::Update { txn, success, outcome, update } => {
                    self.on_update(txn, success, outcome, update)
                }
                Msg::Copyupdate { update, ack_port } => self.ingest(update, Some(ack_port)),
                Msg::CopyAck => self.alpha -= 1,
                Msg::Status { reply_port } => self.on_status(reply_port),
                Msg::Shutdown => break,
                other => {
                    debug_assert!(false, "directory manager got unexpected {}", ceh_net::MsgClass::class(&other));
                }
            }
            // "if (!rho) SendRememberedAcks(); if (!rho && !alpha) GarbageCollect();"
            self.maybe_release_acks_and_garbage();
        }
    }

    fn on_request(&mut self, op: OpKind, key: Key, value: Value, user_port: PortId) {
        // Globally unique transaction ids: manager index in the top bits.
        let txn = ((self.idx as u64) << 48) | self.next_txn;
        self.next_txn += 1;
        self.contexts.insert(txn, Context { op, key, value, user_port, attempt: 0 });
        self.rho += 1;
        self.contact_bucket(txn);
    }

    /// `ContactBucket`: construct a Find/Insert/Delete message from saved
    /// context plus a *fresh* directory lookup, and send it to the
    /// appropriate bucket manager.
    fn contact_bucket(&mut self, txn: u64) {
        let ctx = self.contexts.get(&txn).expect("contact for unknown txn");
        let pk = hash_key(ctx.key);
        let entry = self.replica.lookup(pk);
        let env = OpEnvelope {
            op: ctx.op,
            key: ctx.key,
            value: ctx.value,
            txn,
            page: entry.page,
            user_port: ctx.user_port,
            dirmgr_port: self.my_port,
            pseudokey: pk,
            attempt: ctx.attempt,
        };
        let port = self
            .net
            .lookup(&bucket_mgr_name(entry.mgr))
            .expect("bucket manager registered");
        self.net.send(port, Msg::BucketOp(env));
    }

    fn finish(&mut self, txn: u64, outcome: UserOutcome) {
        if let Some(ctx) = self.contexts.remove(&txn) {
            self.net.send(ctx.user_port, Msg::UserReply { outcome });
            self.rho -= 1;
        }
    }

    fn redrive(&mut self, txn: u64) {
        let exhausted = {
            let Some(ctx) = self.contexts.get_mut(&txn) else { return };
            ctx.attempt += 1;
            ctx.attempt >= self.max_attempts
        };
        if exhausted {
            self.finish(txn, UserOutcome::Failed);
        } else {
            self.contact_bucket(txn);
        }
    }

    fn on_bucketdone(&mut self, txn: u64, success: bool, outcome: Option<UserOutcome>) {
        if !success {
            // The slave could not safely complete (stale page, failed
            // merge validation): re-drive with fresh directory state.
            self.redrive(txn);
            return;
        }
        match outcome {
            Some(o) => self.finish(txn, o),
            None => {
                // A find: the slave answers the user directly (Figure
                // 14); we only clear our context.
                if self.contexts.remove(&txn).is_some() {
                    self.rho -= 1;
                }
            }
        }
    }

    fn on_update(&mut self, txn: u64, success: bool, outcome: Option<UserOutcome>, update: DirUpdate) {
        // Remember merge garbage: we coordinate its collection once every
        // replica has acked.
        if let Some(g) = update.garbage() {
            self.garbage.entry(g.manager).or_default().push(g.page);
        }
        // Broadcast to the other replicas, counting the outstanding acks.
        for name in self.peer_names.clone() {
            if let Some(port) = self.net.lookup(&name) {
                self.net.send(
                    port,
                    Msg::Copyupdate { update: update.clone(), ack_port: self.my_port },
                );
                self.alpha += 1;
            }
        }
        // Apply (or park) locally. No ack owed to ourselves.
        self.ingest(update, None);
        if success {
            match outcome {
                Some(o) => self.finish(txn, o),
                None => {
                    if self.contexts.remove(&txn).is_some() {
                        self.rho -= 1;
                    }
                }
            }
        } else {
            // A split that failed to place the key: re-drive the insert
            // against the post-split directory.
            self.redrive(txn);
        }
    }

    /// Apply an update or park it; on application (or staleness) settle
    /// the ack, deferring merge acks until ρ reaches zero.
    fn ingest(&mut self, update: DirUpdate, ack_port: Option<PortId>) {
        match self.replica.apply(&update) {
            Ok(ApplyResult::Applied) | Ok(ApplyResult::Stale) => {
                self.settle_ack(update.is_merge(), ack_port);
                self.release_parked();
            }
            Ok(ApplyResult::Parked) => {
                self.parked.push(Parked { update, ack_port });
            }
            Err(e) => {
                // A replica that cannot grow past max_depth has diverged
                // irrecoverably — fail loudly (see DESIGN.md: size the
                // directory with headroom; the distributed variant has no
                // global backpressure on depth).
                panic!("directory manager {} cannot apply update: {e}", self.idx);
            }
        }
    }

    fn settle_ack(&mut self, is_merge: bool, ack_port: Option<PortId>) {
        if let Some(port) = ack_port {
            if is_merge {
                self.deferred_acks.push(port);
            } else {
                self.net.send(port, Msg::CopyAck);
            }
        }
    }

    /// `ReleaseSaved`: retry parked updates until a full pass applies
    /// nothing.
    fn release_parked(&mut self) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.parked.len() {
                match self.replica.apply(&self.parked[i].update) {
                    Ok(ApplyResult::Applied) | Ok(ApplyResult::Stale) => {
                        let Parked { update, ack_port } = self.parked.remove(i);
                        self.settle_ack(update.is_merge(), ack_port);
                        progressed = true;
                    }
                    Ok(ApplyResult::Parked) => i += 1,
                    Err(e) => panic!("directory manager {} parked apply failed: {e}", self.idx),
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn maybe_release_acks_and_garbage(&mut self) {
        if self.rho == 0 && !self.deferred_acks.is_empty() {
            for port in std::mem::take(&mut self.deferred_acks) {
                self.net.send(port, Msg::CopyAck);
            }
        }
        if self.rho == 0 && self.alpha == 0 && !self.garbage.is_empty() {
            for (mgr, pages) in std::mem::take(&mut self.garbage) {
                if let Some(port) = self.net.lookup(&bucket_mgr_name(mgr)) {
                    self.net.send(port, Msg::GarbageCollect { pages });
                }
            }
        }
    }

    #[cfg(test)]
    fn set_max_attempts(&mut self, n: u32) {
        self.max_attempts = n;
    }

    fn on_status(&mut self, reply_port: PortId) {
        let pending_garbage = self.garbage.values().map(|v| v.len()).sum();
        self.net.send(
            reply_port,
            Msg::StatusReply {
                rho: self.rho,
                alpha: self.alpha,
                parked: self.parked.len(),
                depth: self.replica.depth(),
                entries: self.replica.entries().to_vec(),
                pending_garbage,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    //! Unit tests driving a directory manager thread directly, with the
    //! test standing in for both the user and the bucket manager — so
    //! the coordination paths the cluster tests can only hit
    //! statistically (re-drives, the attempt cap, deferred acks) are
    //! exercised deterministically.

    use super::*;
    use crate::msg::{OpKind, UserOutcome};
    use crate::replica::DirUpdate;
    use crate::site::bucket_mgr_name;
    use ceh_net::{PortRx, SimNetwork};
    use ceh_types::{BucketLink, DeleteOutcome, PageId, Pseudokey};
    use std::time::Duration;

    struct Rig {
        net: SimNetwork<Msg>,
        dir_port: PortId,
        /// The fake bucket manager's inbox (registered as manager 0).
        bucket_rx: PortRx<Msg>,
        user_rx: PortRx<Msg>,
        handle: std::thread::JoinHandle<()>,
    }

    fn rig(max_attempts: Option<u32>) -> Rig {
        let net: SimNetwork<Msg> = SimNetwork::default();
        let (bucket_port, bucket_rx) = net.create_port();
        net.register_name(bucket_mgr_name(ceh_types::ManagerId(0)), bucket_port);
        let (_user_port, user_rx) = net.create_port();
        let (dir_port, dir_rx) = net.create_port();
        let replica = DirReplica::new(
            8,
            BucketLink::new(ceh_types::ManagerId(0), PageId(0)),
        );
        let mut mgr = DirectoryManager::new(0, 1, net.clone(), dir_rx, replica);
        if let Some(n) = max_attempts {
            mgr.set_max_attempts(n);
        }
        let handle = std::thread::spawn(move || mgr.run());
        Rig { net, dir_port, bucket_rx, user_rx, handle }
    }

    fn recv(rx: &PortRx<Msg>) -> Msg {
        rx.recv_timeout(Duration::from_secs(5)).expect("timed out")
    }

    impl Rig {
        fn shutdown(self) {
            self.net.send(self.dir_port, Msg::Shutdown);
            self.handle.join().unwrap();
        }
    }

    #[test]
    fn request_is_forwarded_with_fresh_lookup_and_context() {
        let r = rig(None);
        r.net.send(
            r.dir_port,
            Msg::Request {
                op: OpKind::Find,
                key: Key(42),
                value: Value(0),
                user_port: r.user_rx.id(),
            },
        );
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else { panic!("expected BucketOp") };
        assert_eq!(env.op, OpKind::Find);
        assert_eq!(env.key, Key(42));
        assert_eq!(env.page, PageId(0), "depth-0 replica routes everything to the root");
        assert_eq!(env.pseudokey, hash_key(Key(42)));
        assert_eq!(env.attempt, 0);
        r.shutdown();
    }

    #[test]
    fn failed_bucketdone_redrives_with_incremented_attempt() {
        let r = rig(None);
        r.net.send(
            r.dir_port,
            Msg::Request {
                op: OpKind::Delete,
                key: Key(7),
                value: Value(0),
                user_port: r.user_rx.id(),
            },
        );
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else { panic!() };
        // Bucket level says "try again" (the distributed label-A path).
        r.net.send(
            env.dirmgr_port,
            Msg::Bucketdone { txn: env.txn, success: false, outcome: None },
        );
        let Msg::BucketOp(env2) = recv(&r.bucket_rx) else { panic!() };
        assert_eq!(env2.txn, env.txn, "same transaction re-driven");
        assert_eq!(env2.attempt, 1);
        // Now succeed: the user hears the outcome.
        r.net.send(
            env2.dirmgr_port,
            Msg::Bucketdone {
                txn: env2.txn,
                success: true,
                outcome: Some(UserOutcome::Deleted(DeleteOutcome::Deleted)),
            },
        );
        match recv(&r.user_rx) {
            Msg::UserReply { outcome: UserOutcome::Deleted(DeleteOutcome::Deleted) } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }

    #[test]
    fn attempt_cap_fails_the_request_to_the_user() {
        let r = rig(Some(3));
        r.net.send(
            r.dir_port,
            Msg::Request {
                op: OpKind::Delete,
                key: Key(7),
                value: Value(0),
                user_port: r.user_rx.id(),
            },
        );
        // Refuse forever.
        for _ in 0..3 {
            let Msg::BucketOp(env) = recv(&r.bucket_rx) else { panic!() };
            r.net.send(
                env.dirmgr_port,
                Msg::Bucketdone { txn: env.txn, success: false, outcome: None },
            );
        }
        match recv(&r.user_rx) {
            Msg::UserReply { outcome: UserOutcome::Failed } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }

    #[test]
    fn split_update_reroutes_the_retry_and_acks_are_counted() {
        let r = rig(None);
        r.net.send(
            r.dir_port,
            Msg::Request {
                op: OpKind::Insert,
                key: Key(1), // hash_key(1) is odd or even; we read it from the envelope
                value: Value(10),
                user_port: r.user_rx.id(),
            },
        );
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else { panic!() };
        // Report a split that failed to place the key (done = false):
        // the manager must apply the update and re-drive against the
        // post-split directory.
        let new_page = PageId(9);
        r.net.send(
            env.dirmgr_port,
            Msg::Update {
                txn: env.txn,
                success: false,
                outcome: None,
                update: DirUpdate::Split {
                    pseudokey: env.pseudokey,
                    old_localdepth: 0,
                    expected_version: 0,
                    new_version: 1,
                    new_bucket: BucketLink::new(ceh_types::ManagerId(0), new_page),
                },
            },
        );
        let Msg::BucketOp(env2) = recv(&r.bucket_rx) else { panic!() };
        assert_eq!(env2.txn, env.txn);
        let expected_page =
            if env.pseudokey.0 & 1 == 1 { new_page } else { PageId(0) };
        assert_eq!(env2.page, expected_page, "re-drive uses the post-split directory");
        // Finish it.
        r.net.send(
            env2.dirmgr_port,
            Msg::Bucketdone {
                txn: env2.txn,
                success: true,
                outcome: Some(UserOutcome::Inserted(ceh_types::InsertOutcome::Inserted)),
            },
        );
        match recv(&r.user_rx) {
            Msg::UserReply { outcome: UserOutcome::Inserted(_) } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }

    #[test]
    fn merge_copyupdate_ack_deferred_until_idle() {
        // Replica B receives a merge copyupdate while it has a request in
        // flight: the ack must not arrive until that request completes.
        let r = rig(None);
        let (ack_port, ack_rx) = r.net.create_port();
        // Put a request in flight (rho = 1).
        r.net.send(
            r.dir_port,
            Msg::Request {
                op: OpKind::Find,
                key: Key(3),
                value: Value(0),
                user_port: r.user_rx.id(),
            },
        );
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else { panic!() };
        // Set up: apply a split first so the merge below is applicable.
        r.net.send(
            r.dir_port,
            Msg::Copyupdate {
                update: DirUpdate::Split {
                    pseudokey: Pseudokey(0),
                    old_localdepth: 0,
                    expected_version: 0,
                    new_version: 1,
                    new_bucket: BucketLink::new(ceh_types::ManagerId(0), PageId(5)),
                },
                ack_port,
            },
        );
        // Split acks are immediate.
        match recv(&ack_rx) {
            Msg::CopyAck => {}
            other => panic!("unexpected {other:?}"),
        }
        // Merge copyupdate: ack must be *deferred* (rho = 1).
        r.net.send(
            r.dir_port,
            Msg::Copyupdate {
                update: DirUpdate::Merge {
                    pseudokey: Pseudokey(0),
                    old_localdepth: 1,
                    expected_v0: 1,
                    expected_v1: 1,
                    new_version: 2,
                    merged: BucketLink::new(ceh_types::ManagerId(0), PageId(0)),
                    garbage: BucketLink::new(ceh_types::ManagerId(0), PageId(5)),
                },
                ack_port,
            },
        );
        assert!(
            matches!(
                ack_rx.recv_timeout(Duration::from_millis(100)),
                Err(ceh_net::RecvError::Empty)
            ),
            "merge ack must wait for rho == 0"
        );
        // Complete the in-flight find: rho drops to 0 → ack released.
        r.net.send(
            env.dirmgr_port,
            Msg::Bucketdone { txn: env.txn, success: true, outcome: None },
        );
        match recv(&ack_rx) {
            Msg::CopyAck => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }
}
