//! The directory manager server of Figure 13.
//!
//! "The locking of the directory in the centralized solution is embodied
//! in the manager's explicit scheduling of requests for its attention."
//! One thread, one replica, a context table multiplexing user requests,
//! the ρ (requests in flight) and α (unacked copyupdates) counters, a
//! parking lot for out-of-order updates, deferred acknowledgements for
//! merge copyupdates, and the remembered-garbage list driving the
//! garbage-collection phase.
//!
//! Beyond the figure (which assumes reliable delivery), this manager is
//! hardened for the lossy network of DESIGN.md's fault model:
//!
//! * **Request idempotence** — the client stamps each request with a
//!   `req_id` and reuses it on retry. Completed outcomes are cached per
//!   client port, so a retry after a lost `UserReply` gets the recorded
//!   outcome instead of a second execution; a retry racing the original
//!   (still in flight) is simply ignored.
//! * **Re-driven bucket operations** — a context whose `BucketOp` or
//!   `Bucketdone` was lost (or whose bucket site crashed) is re-driven
//!   with a fresh directory lookup after `resend_after`, exactly like a
//!   bucket-level refusal. The slave side tolerates redundant drives:
//!   insert is add-if-absent and delete of an absent key is `NotFound`.
//! * **Acked replication** — every `Copyupdate` and `GarbageCollect`
//!   carries an id and is re-sent until the matching `CopyAck` / `GcAck`
//!   arrives. Duplicated deliveries are harmless: the replica's version
//!   algebra makes a re-applied update `Stale` (and re-acks), and the
//!   bucket manager deduplicates collections by `gc_id`.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use ceh_net::{PortId, PortRx, RecvError};
use ceh_obs::{Counter, Gauge, Histogram, MetricsHandle, TraceCtx};
use ceh_types::{hash_key, Key, ManagerId, PageId, Value};

use crate::msg::{Msg, OpEnvelope, OpKind, UserOutcome};
use crate::replica::{ApplyResult, DirReplica, DirUpdate};
use crate::site::{bucket_mgr_name, dir_mgr_name};
use crate::DistNet;

/// A multiplexed user request's saved state (`SaveState`/`RestoreState`).
struct Context {
    op: OpKind,
    key: Key,
    value: Value,
    user_port: PortId,
    /// The client's request id (for the reply echo and the dedupe index).
    req_id: u64,
    /// Re-drive count: bounded so persistent bucket-level refusals
    /// degrade to a merge-free attempt instead of looping (see the
    /// centralized Solution 2 for the same bound and rationale).
    attempt: u32,
    /// When the current `BucketOp` was sent; a context stalled past
    /// `resend_after` is re-driven (lost message or crashed site).
    sent_at: Instant,
    /// When the request first arrived. `sent_at` resets on every
    /// re-drive, so end-to-end latency (the `dist.request_ns`
    /// histogram and the slow-op log) is measured from here.
    started: Instant,
    /// The dispatch span this transaction runs under (child of the
    /// client's request span); every `BucketOp` — including re-drives —
    /// carries it, so all hops attribute to the originating request.
    ctx: TraceCtx,
}

struct Parked {
    update: DirUpdate,
    /// `(ack port, update id)` when this came in as a `Copyupdate` (we
    /// owe an ack).
    ack: Option<(PortId, u64)>,
}

/// An unacked `Copyupdate` broadcast to one peer, re-sent until acked.
struct OutstandingUpdate {
    peer: String,
    update: DirUpdate,
    sent_at: Instant,
    /// Context of the request whose split/merge this replicates; resends
    /// keep stamping it.
    ctx: TraceCtx,
}

/// An unacked `GarbageCollect`, re-sent until acked.
struct OutstandingGc {
    mgr: ManagerId,
    pages: Vec<PageId>,
    sent_at: Instant,
    /// Context of the (last) merge that contributed these pages.
    ctx: TraceCtx,
}

pub(crate) struct DirectoryManager {
    idx: usize,
    net: DistNet,
    rx: PortRx<Msg>,
    my_port: PortId,
    replica: DirReplica,
    contexts: HashMap<u64, Context>,
    next_txn: u64,
    /// Requests in flight at this manager (Figure 13's `rho`).
    rho: usize,
    parked: Vec<Parked>,
    /// Acks for merge copyupdates, deferred until `rho == 0` — "when the
    /// equivalent of ξ-locking occurs".
    deferred_acks: Vec<(PortId, u64)>,
    /// Garbage from merges *we* coordinated, per owning bucket manager
    /// (`RememberDeleted`), not yet sent for collection. The context is
    /// the last contributing merge's — a deliberate simplification (one
    /// `GarbageCollect` can batch pages from several merges).
    garbage: HashMap<ManagerId, (Vec<PageId>, TraceCtx)>,
    /// Copyupdates broadcast but not yet acked; its size is Figure 13's
    /// `alpha`. Entries persist across failed peer lookups and lost
    /// messages — the resend timer retries until the ack arrives.
    outstanding_updates: HashMap<u64, OutstandingUpdate>,
    next_update_id: u64,
    /// Garbage collections sent but not yet acked.
    outstanding_gc: HashMap<u64, OutstandingGc>,
    next_gc_id: u64,
    /// Completed outcomes per client port, keyed by `req_id`, so a
    /// retried request cannot double-apply. Pruned on every request from
    /// that port: clients are sequential and their ids increase, so
    /// entries older than the incoming id are unreachable.
    completed: HashMap<PortId, HashMap<u64, UserOutcome>>,
    /// In-flight request index `(user_port, req_id) → txn` for dropping
    /// duplicate retries of a request still being driven.
    inflight: HashMap<(PortId, u64), u64>,
    /// Names of the other directory managers (resolved per send; peers
    /// spawn concurrently with us).
    peer_names: Vec<String>,
    /// Cap on re-drives before a request is failed back to the user.
    max_attempts: u32,
    /// Re-send interval for unacked replication traffic and stalled
    /// contexts.
    resend_after: Duration,
    /// `dist.redrives`: requests re-driven after a bucket-level refusal,
    /// a lost message, or a crashed site.
    redrives: std::sync::Arc<Counter>,
    /// `dist.copyupdate_rounds`: directory updates broadcast to the
    /// peer replicas (one count per update, however many peers).
    copyupdate_rounds: std::sync::Arc<Counter>,
    /// `dist.resends.copyupdate`: unacked copyupdates re-sent by the
    /// timer.
    resends_copyupdate: std::sync::Arc<Counter>,
    /// `dist.resends.gc`: unacked garbage collections re-sent by the
    /// timer.
    resends_gc: std::sync::Arc<Counter>,
    /// `dist.requests`: user requests accepted (dedupe hits and
    /// duplicate retries excluded).
    requests: std::sync::Arc<Counter>,
    /// `dist.request_ns`: end-to-end request latency at this manager,
    /// arrival to completion, re-drives included.
    request_ns: std::sync::Arc<Histogram>,
    /// `dist.inflight`: live mirror of `rho` for dashboards.
    inflight_gauge: std::sync::Arc<Gauge>,
    /// For dispatch spans and dedupe/redrive instants.
    metrics: MetricsHandle,
}

impl DirectoryManager {
    /// Counters in a private throwaway registry (protocol unit tests).
    #[cfg(test)]
    pub fn new(
        idx: usize,
        total_dir_mgrs: usize,
        net: DistNet,
        rx: PortRx<Msg>,
        replica: DirReplica,
        resend_after: Duration,
    ) -> Self {
        Self::with_metrics(
            idx,
            total_dir_mgrs,
            net,
            rx,
            replica,
            resend_after,
            &MetricsHandle::default(),
        )
    }

    /// Like [`DirectoryManager::new`], reporting into `metrics` (the
    /// cluster-wide registry) under `dist.*` names.
    #[allow(clippy::too_many_arguments)]
    pub fn with_metrics(
        idx: usize,
        total_dir_mgrs: usize,
        net: DistNet,
        rx: PortRx<Msg>,
        replica: DirReplica,
        resend_after: Duration,
        metrics: &MetricsHandle,
    ) -> Self {
        let my_port = rx.id();
        let peer_names = (0..total_dir_mgrs)
            .filter(|&i| i != idx)
            .map(dir_mgr_name)
            .collect();
        DirectoryManager {
            idx,
            net,
            rx,
            my_port,
            replica,
            contexts: HashMap::new(),
            next_txn: 1,
            rho: 0,
            parked: Vec::new(),
            deferred_acks: Vec::new(),
            garbage: HashMap::new(),
            outstanding_updates: HashMap::new(),
            next_update_id: 1,
            outstanding_gc: HashMap::new(),
            // Bucket managers deduplicate collections by id across *all*
            // originators, so gc ids are namespaced per manager the same
            // way transaction ids are.
            next_gc_id: ((idx as u64) << 48) | 1,
            completed: HashMap::new(),
            inflight: HashMap::new(),
            peer_names,
            max_attempts: 20,
            resend_after,
            redrives: metrics.counter("dist.redrives"),
            copyupdate_rounds: metrics.counter("dist.copyupdate_rounds"),
            resends_copyupdate: metrics.counter("dist.resends.copyupdate"),
            resends_gc: metrics.counter("dist.resends.gc"),
            requests: metrics.counter("dist.requests"),
            request_ns: metrics.histogram("dist.request_ns"),
            inflight_gauge: metrics.gauge("dist.inflight"),
            metrics: metrics.clone(),
        }
    }

    /// Figure 13's `alpha`: outstanding unacked copyupdates.
    fn alpha(&self) -> usize {
        self.outstanding_updates.len()
    }

    /// Mirror `rho` into the `dist.inflight` gauge; call after every
    /// change so a live snapshot always sees the current depth.
    fn sync_inflight(&self) {
        self.inflight_gauge.set(self.rho as i64);
    }

    /// Record a completed (or abandoned) request's end-to-end latency:
    /// the `dist.request_ns` histogram plus the slow-op log (a no-op
    /// unless a threshold is armed).
    fn observe_latency(&self, ctx: &Context) {
        let ns = ctx.started.elapsed().as_nanos() as u64;
        self.request_ns.record(ns);
        let kind = match ctx.op {
            OpKind::Find => "find",
            OpKind::Insert => "insert",
            OpKind::Delete => "delete",
        };
        self.metrics
            .slow_ops()
            .observe(kind, ns, ctx.ctx.trace_id, ctx.key.0);
    }

    /// The server loop (`while (true) { messageid = GetMessage (&msg); … }`),
    /// with a timeout tick driving the resend timers.
    pub fn run(mut self) {
        let tick = (self.resend_after / 4).max(Duration::from_millis(1));
        loop {
            match self.rx.recv_timeout(tick) {
                Ok(Msg::Request {
                    op,
                    key,
                    value,
                    user_port,
                    req_id,
                    ctx,
                }) => self.on_request(op, key, value, user_port, req_id, ctx),
                Ok(Msg::Bucketdone {
                    txn,
                    success,
                    outcome,
                }) => self.on_bucketdone(txn, success, outcome),
                Ok(Msg::Update {
                    txn,
                    success,
                    outcome,
                    update,
                    ctx,
                }) => self.on_update(txn, success, outcome, update, ctx),
                Ok(Msg::Copyupdate {
                    update,
                    update_id,
                    ack_port,
                    ..
                }) => self.ingest(update, Some((ack_port, update_id))),
                Ok(Msg::CopyAck { update_id }) => {
                    // Unknown ids are fine: acks for re-sent duplicates.
                    self.outstanding_updates.remove(&update_id);
                }
                Ok(Msg::GcAck { gc_id }) => {
                    self.outstanding_gc.remove(&gc_id);
                }
                Ok(Msg::Status { reply_port }) => self.on_status(reply_port),
                Ok(Msg::Shutdown) => break,
                Ok(other) => {
                    debug_assert!(
                        false,
                        "directory manager got unexpected {}",
                        ceh_net::MsgClass::class(&other)
                    );
                }
                Err(RecvError::Empty) => {}
                // Network gone: exit the loop.
                Err(RecvError::Disconnected) => break,
            }
            self.resend_overdue();
            // "if (!rho) SendRememberedAcks(); if (!rho && !alpha) GarbageCollect();"
            self.maybe_release_acks_and_garbage();
        }
    }

    fn on_request(
        &mut self,
        op: OpKind,
        key: Key,
        value: Value,
        user_port: PortId,
        req_id: u64,
        req_ctx: TraceCtx,
    ) {
        // The client is sequential per port: a new id means every lower
        // in-flight id from this port was abandoned (the client timed out
        // and failed over). Stop re-driving those zombies — the bucket
        // sites additionally fence them out if one is already in flight.
        let stale: Vec<u64> = self
            .inflight
            .iter()
            .filter(|&(&(p, r), _)| p == user_port && r < req_id)
            .map(|(_, &txn)| txn)
            .collect();
        for txn in stale {
            if let Some(ctx) = self.contexts.remove(&txn) {
                self.inflight.remove(&(ctx.user_port, ctx.req_id));
                self.rho -= 1;
                self.sync_inflight();
            }
        }
        // Retry dedupe. Prune first: the client is sequential per port
        // with increasing ids, so nothing below `req_id` can recur.
        if let Some(done) = self.completed.get_mut(&user_port) {
            done.retain(|&id, _| id >= req_id);
            if let Some(&outcome) = done.get(&req_id) {
                self.metrics
                    .trace_instant(req_ctx, "dist", "dedupe_hit", key.0, req_id);
                self.net.send(user_port, Msg::UserReply { outcome, req_id });
                return;
            }
        }
        if self.inflight.contains_key(&(user_port, req_id)) {
            // Duplicate of a request we are still driving; its eventual
            // completion will answer the client.
            return;
        }
        // Globally unique transaction ids: manager index in the top bits.
        let txn = ((self.idx as u64) << 48) | self.next_txn;
        self.next_txn += 1;
        // Dispatch span: child of the client's request span, open until
        // the transaction finishes (or its context is cleared).
        let ctx = self
            .metrics
            .trace_begin(req_ctx, "dist", "dispatch", key.0, txn);
        self.contexts.insert(
            txn,
            Context {
                op,
                key,
                value,
                user_port,
                req_id,
                attempt: 0,
                sent_at: Instant::now(),
                started: Instant::now(),
                ctx,
            },
        );
        self.inflight.insert((user_port, req_id), txn);
        self.rho += 1;
        self.requests.inc();
        self.sync_inflight();
        self.contact_bucket(txn);
    }

    /// `ContactBucket`: construct a Find/Insert/Delete message from saved
    /// context plus a *fresh* directory lookup, and send it to the
    /// appropriate bucket manager. A failed send (crashed site) is left
    /// to the resend timer.
    fn contact_bucket(&mut self, txn: u64) {
        let ctx = self
            .contexts
            .get_mut(&txn)
            .expect("contact for unknown txn");
        ctx.sent_at = Instant::now();
        let pk = hash_key(ctx.key);
        let entry = self.replica.lookup(pk);
        let env = OpEnvelope {
            op: ctx.op,
            key: ctx.key,
            value: ctx.value,
            txn,
            page: entry.page,
            user_port: ctx.user_port,
            dirmgr_port: self.my_port,
            pseudokey: pk,
            attempt: ctx.attempt,
            req_id: ctx.req_id,
            ctx: ctx.ctx,
        };
        let port = self
            .net
            .lookup(&bucket_mgr_name(entry.mgr))
            .expect("bucket manager registered");
        self.net.send(port, Msg::BucketOp(env));
    }

    fn finish(&mut self, txn: u64, outcome: UserOutcome) {
        if let Some(ctx) = self.contexts.remove(&txn) {
            self.inflight.remove(&(ctx.user_port, ctx.req_id));
            // Record for retries — except `Failed`, which applied no
            // change, so a retried request deserves a fresh execution.
            if outcome != UserOutcome::Failed {
                self.completed
                    .entry(ctx.user_port)
                    .or_default()
                    .insert(ctx.req_id, outcome);
            }
            self.net.send(
                ctx.user_port,
                Msg::UserReply {
                    outcome,
                    req_id: ctx.req_id,
                },
            );
            self.metrics
                .trace_end(ctx.ctx, "dist", "dispatch", ctx.key.0, txn);
            self.observe_latency(&ctx);
            self.rho -= 1;
            self.sync_inflight();
        }
    }

    /// Drop a context whose reply path bypasses us (finds answer the
    /// user directly).
    fn clear_context(&mut self, txn: u64) {
        if let Some(ctx) = self.contexts.remove(&txn) {
            self.inflight.remove(&(ctx.user_port, ctx.req_id));
            self.metrics
                .trace_end(ctx.ctx, "dist", "dispatch", ctx.key.0, txn);
            self.observe_latency(&ctx);
            self.rho -= 1;
            self.sync_inflight();
        }
    }

    fn redrive(&mut self, txn: u64) {
        let (exhausted, tctx, attempt) = {
            let Some(ctx) = self.contexts.get_mut(&txn) else {
                return;
            };
            ctx.attempt += 1;
            (ctx.attempt >= self.max_attempts, ctx.ctx, ctx.attempt)
        };
        if exhausted {
            self.finish(txn, UserOutcome::Failed);
        } else {
            self.redrives.inc();
            self.metrics
                .trace_instant(tctx, "dist", "redrive", attempt as u64, txn);
            self.contact_bucket(txn);
        }
    }

    fn on_bucketdone(&mut self, txn: u64, success: bool, outcome: Option<UserOutcome>) {
        if !success {
            // The slave could not safely complete (stale page, failed
            // merge validation): re-drive with fresh directory state.
            self.redrive(txn);
            return;
        }
        match outcome {
            Some(o) => self.finish(txn, o),
            None => {
                // A find: the slave answers the user directly (Figure
                // 14); we only clear our context.
                self.clear_context(txn);
            }
        }
    }

    fn on_update(
        &mut self,
        txn: u64,
        success: bool,
        outcome: Option<UserOutcome>,
        update: DirUpdate,
        ctx: TraceCtx,
    ) {
        // Remember merge garbage: we coordinate its collection once every
        // replica has acked.
        if let Some(g) = update.garbage() {
            let entry = self
                .garbage
                .entry(g.manager)
                .or_insert_with(|| (Vec::new(), TraceCtx::NONE));
            entry.0.push(g.page);
            entry.1 = ctx;
        }
        // Broadcast to the other replicas; each send stays outstanding
        // (and is periodically re-sent) until its ack arrives.
        self.copyupdate_rounds.inc();
        for name in self.peer_names.clone() {
            self.send_copyupdate(name, update.clone(), ctx);
        }
        // Apply (or park) locally. No ack owed to ourselves.
        self.ingest(update, None);
        if success {
            match outcome {
                Some(o) => self.finish(txn, o),
                None => self.clear_context(txn),
            }
        } else {
            // A split that failed to place the key: re-drive the insert
            // against the post-split directory.
            self.redrive(txn);
        }
    }

    fn send_copyupdate(&mut self, peer: String, update: DirUpdate, ctx: TraceCtx) {
        let id = self.next_update_id;
        self.next_update_id += 1;
        if let Some(port) = self.net.lookup(&peer) {
            self.net.send(
                port,
                Msg::Copyupdate {
                    update: update.clone(),
                    update_id: id,
                    ack_port: self.my_port,
                    ctx,
                },
            );
        }
        // Outstanding even when the lookup or send failed: the resend
        // timer keeps trying until the peer acknowledges, so a peer that
        // is slow to register (or temporarily down) still converges.
        self.outstanding_updates.insert(
            id,
            OutstandingUpdate {
                peer,
                update,
                sent_at: Instant::now(),
                ctx,
            },
        );
    }

    fn send_garbage_collect(&mut self, mgr: ManagerId, pages: Vec<PageId>, ctx: TraceCtx) {
        let id = self.next_gc_id;
        self.next_gc_id += 1;
        if let Some(port) = self.net.lookup(&bucket_mgr_name(mgr)) {
            self.net.send(
                port,
                Msg::GarbageCollect {
                    pages: pages.clone(),
                    gc_id: id,
                    ack_port: self.my_port,
                    ctx,
                },
            );
        }
        self.outstanding_gc.insert(
            id,
            OutstandingGc {
                mgr,
                pages,
                sent_at: Instant::now(),
                ctx,
            },
        );
    }

    /// Re-send everything unacked (or stalled) past `resend_after`.
    fn resend_overdue(&mut self) {
        let now = Instant::now();
        let due = self.resend_after;
        let update_ids: Vec<u64> = self
            .outstanding_updates
            .iter()
            .filter(|(_, o)| now.duration_since(o.sent_at) >= due)
            .map(|(&id, _)| id)
            .collect();
        for id in update_ids {
            self.resends_copyupdate.inc();
            let o = self.outstanding_updates.get_mut(&id).expect("just listed");
            o.sent_at = now;
            let (peer, update, ctx) = (o.peer.clone(), o.update.clone(), o.ctx);
            if let Some(port) = self.net.lookup(&peer) {
                self.net.send(
                    port,
                    Msg::Copyupdate {
                        update,
                        update_id: id,
                        ack_port: self.my_port,
                        ctx,
                    },
                );
            }
        }
        let gc_ids: Vec<u64> = self
            .outstanding_gc
            .iter()
            .filter(|(_, o)| now.duration_since(o.sent_at) >= due)
            .map(|(&id, _)| id)
            .collect();
        for id in gc_ids {
            self.resends_gc.inc();
            let o = self.outstanding_gc.get_mut(&id).expect("just listed");
            o.sent_at = now;
            let (mgr, pages, ctx) = (o.mgr, o.pages.clone(), o.ctx);
            if let Some(port) = self.net.lookup(&bucket_mgr_name(mgr)) {
                self.net.send(
                    port,
                    Msg::GarbageCollect {
                        pages,
                        gc_id: id,
                        ack_port: self.my_port,
                        ctx,
                    },
                );
            }
        }
        // Contexts whose BucketOp or reply was lost (or whose site is
        // down): re-drive with a fresh lookup. Redundant drives are safe
        // — the bucket level is idempotent per key, late replies for
        // already-finished transactions are ignored.
        let stalled: Vec<u64> = self
            .contexts
            .iter()
            .filter(|(_, c)| now.duration_since(c.sent_at) >= due)
            .map(|(&txn, _)| txn)
            .collect();
        for txn in stalled {
            self.redrive(txn);
        }
    }

    /// Apply an update or park it; on application (or staleness) settle
    /// the ack, deferring merge acks until ρ reaches zero.
    fn ingest(&mut self, update: DirUpdate, ack: Option<(PortId, u64)>) {
        match self.replica.apply(&update) {
            Ok(ApplyResult::Applied) | Ok(ApplyResult::Stale) => {
                self.settle_ack(update.is_merge(), ack);
                self.release_parked();
            }
            Ok(ApplyResult::Parked) => {
                self.parked.push(Parked { update, ack });
            }
            Err(e) => {
                // A replica that cannot grow past max_depth has diverged
                // irrecoverably — fail loudly (see DESIGN.md: size the
                // directory with headroom; the distributed variant has no
                // global backpressure on depth).
                panic!("directory manager {} cannot apply update: {e}", self.idx);
            }
        }
    }

    fn settle_ack(&mut self, is_merge: bool, ack: Option<(PortId, u64)>) {
        if let Some((port, update_id)) = ack {
            if is_merge {
                self.deferred_acks.push((port, update_id));
            } else {
                self.net.send(port, Msg::CopyAck { update_id });
            }
        }
    }

    /// `ReleaseSaved`: retry parked updates until a full pass applies
    /// nothing.
    fn release_parked(&mut self) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.parked.len() {
                match self.replica.apply(&self.parked[i].update) {
                    Ok(ApplyResult::Applied) | Ok(ApplyResult::Stale) => {
                        let Parked { update, ack } = self.parked.remove(i);
                        self.settle_ack(update.is_merge(), ack);
                        progressed = true;
                    }
                    Ok(ApplyResult::Parked) => i += 1,
                    Err(e) => panic!("directory manager {} parked apply failed: {e}", self.idx),
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn maybe_release_acks_and_garbage(&mut self) {
        if self.rho == 0 && !self.deferred_acks.is_empty() {
            for (port, update_id) in std::mem::take(&mut self.deferred_acks) {
                self.net.send(port, Msg::CopyAck { update_id });
            }
        }
        if self.rho == 0 && self.alpha() == 0 && !self.garbage.is_empty() {
            for (mgr, (pages, ctx)) in std::mem::take(&mut self.garbage) {
                self.send_garbage_collect(mgr, pages, ctx);
            }
        }
    }

    #[cfg(test)]
    fn set_max_attempts(&mut self, n: u32) {
        self.max_attempts = n;
    }

    fn on_status(&mut self, reply_port: PortId) {
        let pending_garbage = self.garbage.values().map(|(v, _)| v.len()).sum::<usize>()
            + self
                .outstanding_gc
                .values()
                .map(|o| o.pages.len())
                .sum::<usize>();
        self.net.send(
            reply_port,
            Msg::StatusReply {
                rho: self.rho,
                alpha: self.alpha(),
                parked: self.parked.len(),
                depth: self.replica.depth(),
                entries: self.replica.entries().to_vec(),
                pending_garbage,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    //! Unit tests driving a directory manager thread directly, with the
    //! test standing in for both the user and the bucket manager — so
    //! the coordination paths the cluster tests can only hit
    //! statistically (re-drives, the attempt cap, deferred acks, retry
    //! dedupe, ack-or-resend replication) are exercised
    //! deterministically.

    use super::*;
    use crate::msg::{OpKind, UserOutcome};
    use crate::replica::DirUpdate;
    use crate::site::bucket_mgr_name;
    use ceh_net::{PortRx, SimNetwork};
    use ceh_types::{BucketLink, DeleteOutcome, PageId, Pseudokey};
    use std::time::Duration;

    struct Rig {
        net: SimNetwork<Msg>,
        dir_port: PortId,
        /// The fake bucket manager's inbox (registered as manager 0).
        bucket_rx: PortRx<Msg>,
        user_rx: PortRx<Msg>,
        handle: std::thread::JoinHandle<()>,
    }

    fn rig(max_attempts: Option<u32>) -> Rig {
        // A resend interval far beyond test duration: the timer paths
        // stay quiet unless a test opts in via `rig_resend`.
        rig_full(max_attempts, 1, Duration::from_secs(600))
    }

    fn rig_resend(resend: Duration) -> Rig {
        rig_full(None, 2, resend)
    }

    fn rig_full(max_attempts: Option<u32>, total_dir_mgrs: usize, resend: Duration) -> Rig {
        let net: SimNetwork<Msg> = SimNetwork::default();
        let (bucket_port, bucket_rx) = net.create_port();
        net.register_name(bucket_mgr_name(ceh_types::ManagerId(0)), bucket_port);
        let (_user_port, user_rx) = net.create_port();
        let (dir_port, dir_rx) = net.create_port();
        let replica = DirReplica::new(8, BucketLink::new(ceh_types::ManagerId(0), PageId(0)));
        let mut mgr = DirectoryManager::new(
            0,
            total_dir_mgrs,
            std::sync::Arc::new(net.clone()),
            dir_rx,
            replica,
            resend,
        );
        if let Some(n) = max_attempts {
            mgr.set_max_attempts(n);
        }
        let handle = std::thread::spawn(move || mgr.run());
        Rig {
            net,
            dir_port,
            bucket_rx,
            user_rx,
            handle,
        }
    }

    fn recv(rx: &PortRx<Msg>) -> Msg {
        rx.recv_timeout(Duration::from_secs(5)).expect("timed out")
    }

    impl Rig {
        fn shutdown(self) {
            self.net.send(self.dir_port, Msg::Shutdown);
            self.handle.join().unwrap();
        }

        fn request(&self, op: OpKind, key: Key, value: Value, req_id: u64) {
            self.net.send(
                self.dir_port,
                Msg::Request {
                    op,
                    key,
                    value,
                    user_port: self.user_rx.id(),
                    req_id,
                    ctx: TraceCtx::NONE,
                },
            );
        }
    }

    #[test]
    fn request_is_forwarded_with_fresh_lookup_and_context() {
        let r = rig(None);
        r.request(OpKind::Find, Key(42), Value(0), 1);
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else {
            panic!("expected BucketOp")
        };
        assert_eq!(env.op, OpKind::Find);
        assert_eq!(env.key, Key(42));
        assert_eq!(
            env.page,
            PageId(0),
            "depth-0 replica routes everything to the root"
        );
        assert_eq!(env.pseudokey, hash_key(Key(42)));
        assert_eq!(env.attempt, 0);
        assert_eq!(env.req_id, 1, "client id flows through to the envelope");
        r.shutdown();
    }

    #[test]
    fn failed_bucketdone_redrives_with_incremented_attempt() {
        let r = rig(None);
        r.request(OpKind::Delete, Key(7), Value(0), 1);
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else {
            panic!()
        };
        // Bucket level says "try again" (the distributed label-A path).
        r.net.send(
            env.dirmgr_port,
            Msg::Bucketdone {
                txn: env.txn,
                success: false,
                outcome: None,
            },
        );
        let Msg::BucketOp(env2) = recv(&r.bucket_rx) else {
            panic!()
        };
        assert_eq!(env2.txn, env.txn, "same transaction re-driven");
        assert_eq!(env2.attempt, 1);
        // Now succeed: the user hears the outcome.
        r.net.send(
            env2.dirmgr_port,
            Msg::Bucketdone {
                txn: env2.txn,
                success: true,
                outcome: Some(UserOutcome::Deleted(DeleteOutcome::Deleted)),
            },
        );
        match recv(&r.user_rx) {
            Msg::UserReply {
                outcome: UserOutcome::Deleted(DeleteOutcome::Deleted),
                req_id: 1,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }

    #[test]
    fn attempt_cap_fails_the_request_to_the_user() {
        let r = rig(Some(3));
        r.request(OpKind::Delete, Key(7), Value(0), 1);
        // Refuse forever.
        for _ in 0..3 {
            let Msg::BucketOp(env) = recv(&r.bucket_rx) else {
                panic!()
            };
            r.net.send(
                env.dirmgr_port,
                Msg::Bucketdone {
                    txn: env.txn,
                    success: false,
                    outcome: None,
                },
            );
        }
        match recv(&r.user_rx) {
            Msg::UserReply {
                outcome: UserOutcome::Failed,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }

    #[test]
    fn split_update_reroutes_the_retry_and_acks_are_counted() {
        let r = rig(None);
        r.request(OpKind::Insert, Key(1), Value(10), 1);
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else {
            panic!()
        };
        // Report a split that failed to place the key (done = false):
        // the manager must apply the update and re-drive against the
        // post-split directory.
        let new_page = PageId(9);
        r.net.send(
            env.dirmgr_port,
            Msg::Update {
                txn: env.txn,
                success: false,
                outcome: None,
                update: DirUpdate::Split {
                    pseudokey: env.pseudokey,
                    old_localdepth: 0,
                    expected_version: 0,
                    new_version: 1,
                    new_bucket: BucketLink::new(ceh_types::ManagerId(0), new_page),
                },
                ctx: TraceCtx::NONE,
            },
        );
        let Msg::BucketOp(env2) = recv(&r.bucket_rx) else {
            panic!()
        };
        assert_eq!(env2.txn, env.txn);
        let expected_page = if env.pseudokey.0 & 1 == 1 {
            new_page
        } else {
            PageId(0)
        };
        assert_eq!(
            env2.page, expected_page,
            "re-drive uses the post-split directory"
        );
        // Finish it.
        r.net.send(
            env2.dirmgr_port,
            Msg::Bucketdone {
                txn: env2.txn,
                success: true,
                outcome: Some(UserOutcome::Inserted(ceh_types::InsertOutcome::Inserted)),
            },
        );
        match recv(&r.user_rx) {
            Msg::UserReply {
                outcome: UserOutcome::Inserted(_),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }

    #[test]
    fn merge_copyupdate_ack_deferred_until_idle() {
        // Replica B receives a merge copyupdate while it has a request in
        // flight: the ack must not arrive until that request completes.
        let r = rig(None);
        let (ack_port, ack_rx) = r.net.create_port();
        // Put a request in flight (rho = 1).
        r.request(OpKind::Find, Key(3), Value(0), 1);
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else {
            panic!()
        };
        // Set up: apply a split first so the merge below is applicable.
        r.net.send(
            r.dir_port,
            Msg::Copyupdate {
                update: DirUpdate::Split {
                    pseudokey: Pseudokey(0),
                    old_localdepth: 0,
                    expected_version: 0,
                    new_version: 1,
                    new_bucket: BucketLink::new(ceh_types::ManagerId(0), PageId(5)),
                },
                update_id: 71,
                ack_port,
                ctx: TraceCtx::NONE,
            },
        );
        // Split acks are immediate, echoing the update id.
        match recv(&ack_rx) {
            Msg::CopyAck { update_id: 71 } => {}
            other => panic!("unexpected {other:?}"),
        }
        // Merge copyupdate: ack must be *deferred* (rho = 1).
        r.net.send(
            r.dir_port,
            Msg::Copyupdate {
                update: DirUpdate::Merge {
                    pseudokey: Pseudokey(0),
                    old_localdepth: 1,
                    expected_v0: 1,
                    expected_v1: 1,
                    new_version: 2,
                    merged: BucketLink::new(ceh_types::ManagerId(0), PageId(0)),
                    garbage: BucketLink::new(ceh_types::ManagerId(0), PageId(5)),
                },
                update_id: 72,
                ack_port,
                ctx: TraceCtx::NONE,
            },
        );
        assert!(
            matches!(
                ack_rx.recv_timeout(Duration::from_millis(100)),
                Err(ceh_net::RecvError::Empty)
            ),
            "merge ack must wait for rho == 0"
        );
        // Complete the in-flight find: rho drops to 0 → ack released.
        r.net.send(
            env.dirmgr_port,
            Msg::Bucketdone {
                txn: env.txn,
                success: true,
                outcome: None,
            },
        );
        match recv(&ack_rx) {
            Msg::CopyAck { update_id: 72 } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }

    #[test]
    fn duplicate_request_returns_cached_outcome_without_reexecuting() {
        let r = rig(None);
        r.request(OpKind::Insert, Key(8), Value(80), 5);
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else {
            panic!()
        };
        r.net.send(
            env.dirmgr_port,
            Msg::Bucketdone {
                txn: env.txn,
                success: true,
                outcome: Some(UserOutcome::Inserted(ceh_types::InsertOutcome::Inserted)),
            },
        );
        match recv(&r.user_rx) {
            Msg::UserReply {
                outcome: UserOutcome::Inserted(_),
                req_id: 5,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        // The reply "was lost": the client retries with the same id. The
        // manager must answer from its cache — *no* second BucketOp.
        r.request(OpKind::Insert, Key(8), Value(80), 5);
        match recv(&r.user_rx) {
            Msg::UserReply {
                outcome: UserOutcome::Inserted(_),
                req_id: 5,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            matches!(
                r.bucket_rx.recv_timeout(Duration::from_millis(100)),
                Err(ceh_net::RecvError::Empty)
            ),
            "a deduplicated retry must not reach the bucket level"
        );
        // A later id prunes the cache and executes normally.
        r.request(OpKind::Find, Key(8), Value(0), 6);
        let Msg::BucketOp(env2) = recv(&r.bucket_rx) else {
            panic!()
        };
        assert_eq!(env2.req_id, 6);
        r.shutdown();
    }

    #[test]
    fn duplicate_of_inflight_request_is_ignored() {
        let r = rig(None);
        r.request(OpKind::Insert, Key(9), Value(90), 2);
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else {
            panic!()
        };
        // Retry arrives while the original is still being driven.
        r.request(OpKind::Insert, Key(9), Value(90), 2);
        assert!(
            matches!(
                r.bucket_rx.recv_timeout(Duration::from_millis(100)),
                Err(ceh_net::RecvError::Empty)
            ),
            "the duplicate must not spawn a second transaction"
        );
        r.net.send(
            env.dirmgr_port,
            Msg::Bucketdone {
                txn: env.txn,
                success: true,
                outcome: Some(UserOutcome::Inserted(ceh_types::InsertOutcome::Inserted)),
            },
        );
        match recv(&r.user_rx) {
            Msg::UserReply {
                outcome: UserOutcome::Inserted(_),
                req_id: 2,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }

    #[test]
    fn copyupdate_is_resent_until_acked() {
        let r = rig_resend(Duration::from_millis(50));
        // Stand in for peer dir-mgr-1.
        let (peer_port, peer_rx) = r.net.create_port();
        r.net.register_name(dir_mgr_name(1), peer_port);
        // A bucket-level split lands: the manager must broadcast it.
        r.net.send(
            r.dir_port,
            Msg::Update {
                txn: 999, // no such context; broadcast must still happen
                success: true,
                outcome: None,
                update: DirUpdate::Split {
                    pseudokey: Pseudokey(0),
                    old_localdepth: 0,
                    expected_version: 0,
                    new_version: 1,
                    new_bucket: BucketLink::new(ceh_types::ManagerId(0), PageId(5)),
                },
                ctx: TraceCtx::NONE,
            },
        );
        let Msg::Copyupdate {
            update_id,
            ack_port,
            ..
        } = recv(&peer_rx)
        else {
            panic!()
        };
        // Ignore it: the resend timer must deliver it again with the
        // same id.
        let Msg::Copyupdate { update_id: id2, .. } = recv(&peer_rx) else {
            panic!()
        };
        assert_eq!(id2, update_id, "resends reuse the update id");
        // Ack: resends stop.
        r.net.send(ack_port, Msg::CopyAck { update_id });
        assert!(
            matches!(
                peer_rx.recv_timeout(Duration::from_millis(200)),
                Err(ceh_net::RecvError::Empty)
            ),
            "acked updates are not re-sent"
        );
        r.shutdown();
    }

    #[test]
    fn garbage_collect_is_resent_until_acked_and_gates_quiescence() {
        let r = rig_resend(Duration::from_millis(50));
        let (peer_port, peer_rx) = r.net.create_port();
        r.net.register_name(dir_mgr_name(1), peer_port);
        let (status_port, status_rx) = r.net.create_port();
        // A merge lands; its garbage must be collected after the peer
        // acks the copyupdate.
        r.net.send(
            r.dir_port,
            Msg::Copyupdate {
                update: DirUpdate::Split {
                    pseudokey: Pseudokey(0),
                    old_localdepth: 0,
                    expected_version: 0,
                    new_version: 1,
                    new_bucket: BucketLink::new(ceh_types::ManagerId(0), PageId(5)),
                },
                update_id: 1,
                ack_port: peer_port,
                ctx: TraceCtx::NONE,
            },
        );
        recv(&peer_rx); // our ack for the split (peer_port doubles as ack sink)
        r.net.send(
            r.dir_port,
            Msg::Update {
                txn: 999,
                success: true,
                outcome: None,
                update: DirUpdate::Merge {
                    pseudokey: Pseudokey(0),
                    old_localdepth: 1,
                    expected_v0: 1,
                    expected_v1: 1,
                    new_version: 2,
                    merged: BucketLink::new(ceh_types::ManagerId(0), PageId(0)),
                    garbage: BucketLink::new(ceh_types::ManagerId(0), PageId(5)),
                },
                ctx: TraceCtx::NONE,
            },
        );
        // The broadcast of the merge goes to the peer; ack it so alpha
        // drains and garbage collection can start.
        let Msg::Copyupdate {
            update_id,
            ack_port,
            ..
        } = recv(&peer_rx)
        else {
            panic!()
        };
        r.net.send(ack_port, Msg::CopyAck { update_id });
        // First GarbageCollect arrives at the bucket manager.
        let Msg::GarbageCollect {
            pages,
            gc_id,
            ack_port,
            ..
        } = recv(&r.bucket_rx)
        else {
            panic!()
        };
        assert_eq!(pages, vec![PageId(5)]);
        // Unacked → pending_garbage still reported (quiesce would wait).
        r.net.send(
            r.dir_port,
            Msg::Status {
                reply_port: status_port,
            },
        );
        let Msg::StatusReply {
            pending_garbage, ..
        } = recv(&status_rx)
        else {
            panic!()
        };
        assert_eq!(pending_garbage, 1, "unacked collection still pending");
        // And it is re-sent with the same id.
        let Msg::GarbageCollect { gc_id: id2, .. } = recv(&r.bucket_rx) else {
            panic!()
        };
        assert_eq!(id2, gc_id);
        // Ack: pending drains, resends stop.
        r.net.send(ack_port, Msg::GcAck { gc_id });
        r.net.send(
            r.dir_port,
            Msg::Status {
                reply_port: status_port,
            },
        );
        loop {
            // Drain possibly queued duplicate resends racing the ack.
            match recv(&status_rx) {
                Msg::StatusReply {
                    pending_garbage: 0, ..
                } => break,
                Msg::StatusReply { .. } => {
                    std::thread::sleep(Duration::from_millis(20));
                    r.net.send(
                        r.dir_port,
                        Msg::Status {
                            reply_port: status_port,
                        },
                    );
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        r.shutdown();
    }

    #[test]
    fn stalled_context_is_redriven_by_the_timer() {
        let r = rig_resend(Duration::from_millis(50));
        r.request(OpKind::Insert, Key(4), Value(40), 1);
        let Msg::BucketOp(env) = recv(&r.bucket_rx) else {
            panic!()
        };
        // Swallow it (the message "was dropped"): the timer must re-drive.
        let Msg::BucketOp(env2) = recv(&r.bucket_rx) else {
            panic!()
        };
        assert_eq!(env2.txn, env.txn, "same transaction");
        assert_eq!(env2.attempt, 1, "re-drive counts as an attempt");
        r.net.send(
            env2.dirmgr_port,
            Msg::Bucketdone {
                txn: env2.txn,
                success: true,
                outcome: Some(UserOutcome::Inserted(ceh_types::InsertOutcome::Inserted)),
            },
        );
        match recv(&r.user_rx) {
            Msg::UserReply {
                outcome: UserOutcome::Inserted(_),
                req_id: 1,
            } => {}
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown();
    }
}
