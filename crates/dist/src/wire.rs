//! Frame encoding for [`Msg`] — how the Figure 11–14 message vocabulary
//! crosses real sockets.
//!
//! The simulated plane moves `Msg` values by `clone()`; the TCP plane
//! ([`ceh_net::TcpPlane`]) needs bytes. This module implements
//! [`WireMsg`] for [`Msg`] with the same hand-rolled, dependency-free
//! discipline as the storage WAL: fixed little-endian scalars,
//! length-prefixed sequences, one tag byte per enum, and a decoder that
//! answers every malformed input with a [`WireError`] instead of a
//! panic. The payload travels inside a CRC-checked frame
//! ([`ceh_net::wire`]), so decoding here only has to be *strict*, not
//! corruption-tolerant: any leftover or missing bytes are protocol
//! errors that sever the connection.
//!
//! Compatibility is guarded by the frame header's version byte, not by
//! this encoding — a node that changes the layout below must bump
//! [`ceh_net::wire::WIRE_VERSION`].

use ceh_net::wire::{WireError, WireMsg, WireReader, WireWriter};
use ceh_net::PortId;
use ceh_obs::{SpanId, TraceCtx};
use ceh_types::bucket::Bucket;
use ceh_types::{
    BucketLink, DeleteOutcome, InsertOutcome, Key, ManagerId, PageId, Pseudokey, Record, Value,
};

use crate::msg::{Msg, OpEnvelope, OpKind, UserOutcome};
use crate::replica::{DirEntry, DirUpdate};

// One tag byte per `Msg` variant, in declaration order.
const TAG_REQUEST: u8 = 1;
const TAG_USER_REPLY: u8 = 2;
const TAG_BUCKET_OP: u8 = 3;
const TAG_WRONGBUCKET: u8 = 4;
const TAG_WRONGBUCKET_ACK: u8 = 5;
const TAG_BUCKETDONE: u8 = 6;
const TAG_UPDATE: u8 = 7;
const TAG_COPYUPDATE: u8 = 8;
const TAG_COPY_ACK: u8 = 9;
const TAG_SPLITBUCKET: u8 = 10;
const TAG_SPLITREPLY: u8 = 11;
const TAG_MERGEDOWN: u8 = 12;
const TAG_MDREPLY: u8 = 13;
const TAG_MERGEUP: u8 = 14;
const TAG_MUREPLY: u8 = 15;
const TAG_GOAHEAD: u8 = 16;
const TAG_GARBAGE_COLLECT: u8 = 17;
const TAG_GC_ACK: u8 = 18;
const TAG_STATUS: u8 = 19;
const TAG_STATUS_REPLY: u8 = 20;
const TAG_SHUTDOWN: u8 = 21;
const TAG_STATS_REQUEST: u8 = 22;
const TAG_STATS_REPLY: u8 = 23;

fn put_ctx(w: &mut WireWriter, ctx: TraceCtx) {
    w.u64(ctx.trace_id);
    w.u64(ctx.parent_span.0);
}

fn get_ctx(r: &mut WireReader<'_>) -> Result<TraceCtx, WireError> {
    Ok(TraceCtx {
        trace_id: r.u64()?,
        parent_span: SpanId(r.u64()?),
    })
}

fn put_op(w: &mut WireWriter, op: OpKind) {
    w.u8(match op {
        OpKind::Find => 0,
        OpKind::Insert => 1,
        OpKind::Delete => 2,
    });
}

fn get_op(r: &mut WireReader<'_>) -> Result<OpKind, WireError> {
    match r.u8()? {
        0 => Ok(OpKind::Find),
        1 => Ok(OpKind::Insert),
        2 => Ok(OpKind::Delete),
        _ => Err(WireError::Malformed("unknown OpKind tag")),
    }
}

fn put_outcome(w: &mut WireWriter, outcome: UserOutcome) {
    match outcome {
        UserOutcome::Found(None) => w.u8(0),
        UserOutcome::Found(Some(v)) => {
            w.u8(1);
            w.u64(v.0);
        }
        UserOutcome::Inserted(InsertOutcome::Inserted) => w.u8(2),
        UserOutcome::Inserted(InsertOutcome::AlreadyPresent) => w.u8(3),
        UserOutcome::Deleted(DeleteOutcome::Deleted) => w.u8(4),
        UserOutcome::Deleted(DeleteOutcome::NotFound) => w.u8(5),
        UserOutcome::Failed => w.u8(6),
    }
}

fn get_outcome(r: &mut WireReader<'_>) -> Result<UserOutcome, WireError> {
    Ok(match r.u8()? {
        0 => UserOutcome::Found(None),
        1 => UserOutcome::Found(Some(Value(r.u64()?))),
        2 => UserOutcome::Inserted(InsertOutcome::Inserted),
        3 => UserOutcome::Inserted(InsertOutcome::AlreadyPresent),
        4 => UserOutcome::Deleted(DeleteOutcome::Deleted),
        5 => UserOutcome::Deleted(DeleteOutcome::NotFound),
        6 => UserOutcome::Failed,
        _ => return Err(WireError::Malformed("unknown UserOutcome tag")),
    })
}

fn put_opt_outcome(w: &mut WireWriter, outcome: Option<UserOutcome>) {
    match outcome {
        None => w.bool(false),
        Some(o) => {
            w.bool(true);
            put_outcome(w, o);
        }
    }
}

fn get_opt_outcome(r: &mut WireReader<'_>) -> Result<Option<UserOutcome>, WireError> {
    if r.bool()? {
        Ok(Some(get_outcome(r)?))
    } else {
        Ok(None)
    }
}

fn put_env(w: &mut WireWriter, env: &OpEnvelope) {
    put_op(w, env.op);
    w.u64(env.key.0);
    w.u64(env.value.0);
    w.u64(env.txn);
    w.u64(env.page.0);
    w.u64(env.user_port.0);
    w.u64(env.dirmgr_port.0);
    w.u64(env.pseudokey.0);
    w.u32(env.attempt);
    w.u64(env.req_id);
    put_ctx(w, env.ctx);
}

fn get_env(r: &mut WireReader<'_>) -> Result<OpEnvelope, WireError> {
    Ok(OpEnvelope {
        op: get_op(r)?,
        key: Key(r.u64()?),
        value: Value(r.u64()?),
        txn: r.u64()?,
        page: PageId(r.u64()?),
        user_port: PortId(r.u64()?),
        dirmgr_port: PortId(r.u64()?),
        pseudokey: Pseudokey(r.u64()?),
        attempt: r.u32()?,
        req_id: r.u64()?,
        ctx: get_ctx(r)?,
    })
}

fn put_link(w: &mut WireWriter, link: BucketLink) {
    w.u32(link.manager.0);
    w.u64(link.page.0);
}

fn get_link(r: &mut WireReader<'_>) -> Result<BucketLink, WireError> {
    let manager = ManagerId(r.u32()?);
    let page = PageId(r.u64()?);
    Ok(BucketLink { manager, page })
}

fn put_update(w: &mut WireWriter, update: &DirUpdate) {
    match update {
        DirUpdate::Split {
            pseudokey,
            old_localdepth,
            expected_version,
            new_version,
            new_bucket,
        } => {
            w.u8(0);
            w.u64(pseudokey.0);
            w.u32(*old_localdepth);
            w.u64(*expected_version);
            w.u64(*new_version);
            put_link(w, *new_bucket);
        }
        DirUpdate::Merge {
            pseudokey,
            old_localdepth,
            expected_v0,
            expected_v1,
            new_version,
            merged,
            garbage,
        } => {
            w.u8(1);
            w.u64(pseudokey.0);
            w.u32(*old_localdepth);
            w.u64(*expected_v0);
            w.u64(*expected_v1);
            w.u64(*new_version);
            put_link(w, *merged);
            put_link(w, *garbage);
        }
    }
}

fn get_update(r: &mut WireReader<'_>) -> Result<DirUpdate, WireError> {
    match r.u8()? {
        0 => Ok(DirUpdate::Split {
            pseudokey: Pseudokey(r.u64()?),
            old_localdepth: r.u32()?,
            expected_version: r.u64()?,
            new_version: r.u64()?,
            new_bucket: get_link(r)?,
        }),
        1 => Ok(DirUpdate::Merge {
            pseudokey: Pseudokey(r.u64()?),
            old_localdepth: r.u32()?,
            expected_v0: r.u64()?,
            expected_v1: r.u64()?,
            new_version: r.u64()?,
            merged: get_link(r)?,
            garbage: get_link(r)?,
        }),
        _ => Err(WireError::Malformed("unknown DirUpdate tag")),
    }
}

fn put_bucket(w: &mut WireWriter, b: &Bucket) {
    w.u32(b.localdepth);
    w.u64(b.commonbits);
    w.u64(b.next.0);
    w.u32(b.next_mgr.0);
    w.u64(b.prev.0);
    w.u32(b.prev_mgr.0);
    w.u64(b.version);
    w.u32(b.records.len() as u32);
    for rec in &b.records {
        w.u64(rec.key.0);
        w.u64(rec.value.0);
    }
}

fn get_bucket(r: &mut WireReader<'_>) -> Result<Bucket, WireError> {
    let localdepth = r.u32()?;
    let commonbits = r.u64()?;
    let next = PageId(r.u64()?);
    let next_mgr = ManagerId(r.u32()?);
    let prev = PageId(r.u64()?);
    let prev_mgr = ManagerId(r.u32()?);
    let version = r.u64()?;
    let n = r.seq_len(16)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        records.push(Record {
            key: Key(r.u64()?),
            value: Value(r.u64()?),
        });
    }
    Ok(Bucket {
        localdepth,
        commonbits,
        next,
        next_mgr,
        prev,
        prev_mgr,
        version,
        records,
    })
}

fn put_fences(w: &mut WireWriter, fences: &[(PortId, u64)]) {
    w.u32(fences.len() as u32);
    for &(p, r) in fences {
        w.u64(p.0);
        w.u64(r);
    }
}

fn get_fences(r: &mut WireReader<'_>) -> Result<Vec<(PortId, u64)>, WireError> {
    let n = r.seq_len(16)?;
    let mut fences = Vec::with_capacity(n);
    for _ in 0..n {
        fences.push((PortId(r.u64()?), r.u64()?));
    }
    Ok(fences)
}

impl WireMsg for Msg {
    fn wire_encode(&self, w: &mut WireWriter) {
        match self {
            Msg::Request {
                op,
                key,
                value,
                user_port,
                req_id,
                ctx,
            } => {
                w.u8(TAG_REQUEST);
                put_op(w, *op);
                w.u64(key.0);
                w.u64(value.0);
                w.u64(user_port.0);
                w.u64(*req_id);
                put_ctx(w, *ctx);
            }
            Msg::UserReply { outcome, req_id } => {
                w.u8(TAG_USER_REPLY);
                put_outcome(w, *outcome);
                w.u64(*req_id);
            }
            Msg::BucketOp(env) => {
                w.u8(TAG_BUCKET_OP);
                put_env(w, env);
            }
            Msg::Wrongbucket { env, buckmgr_port } => {
                w.u8(TAG_WRONGBUCKET);
                put_env(w, env);
                w.u64(buckmgr_port.0);
            }
            Msg::WrongbucketAck => w.u8(TAG_WRONGBUCKET_ACK),
            Msg::Bucketdone {
                txn,
                success,
                outcome,
            } => {
                w.u8(TAG_BUCKETDONE);
                w.u64(*txn);
                w.bool(*success);
                put_opt_outcome(w, *outcome);
            }
            Msg::Update {
                txn,
                success,
                outcome,
                update,
                ctx,
            } => {
                w.u8(TAG_UPDATE);
                w.u64(*txn);
                w.bool(*success);
                put_opt_outcome(w, *outcome);
                put_update(w, update);
                put_ctx(w, *ctx);
            }
            Msg::Copyupdate {
                update,
                update_id,
                ack_port,
                ctx,
            } => {
                w.u8(TAG_COPYUPDATE);
                put_update(w, update);
                w.u64(*update_id);
                w.u64(ack_port.0);
                put_ctx(w, *ctx);
            }
            Msg::CopyAck { update_id } => {
                w.u8(TAG_COPY_ACK);
                w.u64(*update_id);
            }
            Msg::Splitbucket {
                reply_port,
                half2,
                fences,
            } => {
                w.u8(TAG_SPLITBUCKET);
                w.u64(reply_port.0);
                put_bucket(w, half2);
                put_fences(w, fences);
            }
            Msg::Splitreply { link } => {
                w.u8(TAG_SPLITREPLY);
                put_link(w, *link);
            }
            Msg::Mergedown {
                partner,
                localdepth,
                reply_port,
            } => {
                w.u8(TAG_MERGEDOWN);
                w.u64(partner.0);
                w.u32(*localdepth);
                w.u64(reply_port.0);
            }
            Msg::MDReply {
                buffer,
                success,
                fences,
            } => {
                w.u8(TAG_MDREPLY);
                match buffer {
                    None => w.bool(false),
                    Some(b) => {
                        w.bool(true);
                        put_bucket(w, b);
                    }
                }
                w.bool(*success);
                put_fences(w, fences);
            }
            Msg::Mergeup {
                partner,
                target,
                target_mgr,
                reply_port,
            } => {
                w.u8(TAG_MERGEUP);
                w.u64(partner.0);
                w.u64(target.0);
                w.u32(target_mgr.0);
                w.u64(reply_port.0);
            }
            Msg::MUReply {
                localdepth,
                version,
                goahead_port,
                success,
                count,
            } => {
                w.u8(TAG_MUREPLY);
                w.u32(*localdepth);
                w.u64(*version);
                w.u64(goahead_port.0);
                w.bool(*success);
                w.u64(*count as u64);
            }
            Msg::Goahead {
                success,
                next,
                version,
                moved,
                fences,
            } => {
                w.u8(TAG_GOAHEAD);
                w.bool(*success);
                put_link(w, *next);
                w.u64(*version);
                w.u32(moved.len() as u32);
                for rec in moved {
                    w.u64(rec.key.0);
                    w.u64(rec.value.0);
                }
                put_fences(w, fences);
            }
            Msg::GarbageCollect {
                pages,
                gc_id,
                ack_port,
                ctx,
            } => {
                w.u8(TAG_GARBAGE_COLLECT);
                w.u32(pages.len() as u32);
                for p in pages {
                    w.u64(p.0);
                }
                w.u64(*gc_id);
                w.u64(ack_port.0);
                put_ctx(w, *ctx);
            }
            Msg::GcAck { gc_id } => {
                w.u8(TAG_GC_ACK);
                w.u64(*gc_id);
            }
            Msg::Status { reply_port } => {
                w.u8(TAG_STATUS);
                w.u64(reply_port.0);
            }
            Msg::StatusReply {
                rho,
                alpha,
                parked,
                depth,
                entries,
                pending_garbage,
            } => {
                w.u8(TAG_STATUS_REPLY);
                w.u64(*rho as u64);
                w.u64(*alpha as u64);
                w.u64(*parked as u64);
                w.u32(*depth);
                w.u32(entries.len() as u32);
                for e in entries {
                    w.u32(e.mgr.0);
                    w.u64(e.page.0);
                    w.u64(e.version);
                }
                w.u64(*pending_garbage as u64);
            }
            Msg::StatsRequest { reply_port } => {
                w.u8(TAG_STATS_REQUEST);
                w.u64(reply_port.0);
            }
            Msg::StatsReply { json } => {
                w.u8(TAG_STATS_REPLY);
                w.str(json);
            }
            Msg::Shutdown => w.u8(TAG_SHUTDOWN),
        }
    }

    fn wire_decode(bytes: &[u8]) -> Result<Msg, WireError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            TAG_REQUEST => Msg::Request {
                op: get_op(&mut r)?,
                key: Key(r.u64()?),
                value: Value(r.u64()?),
                user_port: PortId(r.u64()?),
                req_id: r.u64()?,
                ctx: get_ctx(&mut r)?,
            },
            TAG_USER_REPLY => Msg::UserReply {
                outcome: get_outcome(&mut r)?,
                req_id: r.u64()?,
            },
            TAG_BUCKET_OP => Msg::BucketOp(get_env(&mut r)?),
            TAG_WRONGBUCKET => Msg::Wrongbucket {
                env: get_env(&mut r)?,
                buckmgr_port: PortId(r.u64()?),
            },
            TAG_WRONGBUCKET_ACK => Msg::WrongbucketAck,
            TAG_BUCKETDONE => Msg::Bucketdone {
                txn: r.u64()?,
                success: r.bool()?,
                outcome: get_opt_outcome(&mut r)?,
            },
            TAG_UPDATE => Msg::Update {
                txn: r.u64()?,
                success: r.bool()?,
                outcome: get_opt_outcome(&mut r)?,
                update: get_update(&mut r)?,
                ctx: get_ctx(&mut r)?,
            },
            TAG_COPYUPDATE => Msg::Copyupdate {
                update: get_update(&mut r)?,
                update_id: r.u64()?,
                ack_port: PortId(r.u64()?),
                ctx: get_ctx(&mut r)?,
            },
            TAG_COPY_ACK => Msg::CopyAck {
                update_id: r.u64()?,
            },
            TAG_SPLITBUCKET => Msg::Splitbucket {
                reply_port: PortId(r.u64()?),
                half2: Box::new(get_bucket(&mut r)?),
                fences: get_fences(&mut r)?,
            },
            TAG_SPLITREPLY => Msg::Splitreply {
                link: get_link(&mut r)?,
            },
            TAG_MERGEDOWN => Msg::Mergedown {
                partner: PageId(r.u64()?),
                localdepth: r.u32()?,
                reply_port: PortId(r.u64()?),
            },
            TAG_MDREPLY => Msg::MDReply {
                buffer: if r.bool()? {
                    Some(Box::new(get_bucket(&mut r)?))
                } else {
                    None
                },
                success: r.bool()?,
                fences: get_fences(&mut r)?,
            },
            TAG_MERGEUP => Msg::Mergeup {
                partner: PageId(r.u64()?),
                target: PageId(r.u64()?),
                target_mgr: ManagerId(r.u32()?),
                reply_port: PortId(r.u64()?),
            },
            TAG_MUREPLY => Msg::MUReply {
                localdepth: r.u32()?,
                version: r.u64()?,
                goahead_port: PortId(r.u64()?),
                success: r.bool()?,
                count: r.u64()? as usize,
            },
            TAG_GOAHEAD => Msg::Goahead {
                success: r.bool()?,
                next: get_link(&mut r)?,
                version: r.u64()?,
                moved: {
                    let n = r.seq_len(16)?;
                    let mut moved = Vec::with_capacity(n);
                    for _ in 0..n {
                        moved.push(Record {
                            key: Key(r.u64()?),
                            value: Value(r.u64()?),
                        });
                    }
                    moved
                },
                fences: get_fences(&mut r)?,
            },
            TAG_GARBAGE_COLLECT => Msg::GarbageCollect {
                pages: {
                    let n = r.seq_len(8)?;
                    let mut pages = Vec::with_capacity(n);
                    for _ in 0..n {
                        pages.push(PageId(r.u64()?));
                    }
                    pages
                },
                gc_id: r.u64()?,
                ack_port: PortId(r.u64()?),
                ctx: get_ctx(&mut r)?,
            },
            TAG_GC_ACK => Msg::GcAck { gc_id: r.u64()? },
            TAG_STATUS => Msg::Status {
                reply_port: PortId(r.u64()?),
            },
            TAG_STATUS_REPLY => Msg::StatusReply {
                rho: r.u64()? as usize,
                alpha: r.u64()? as usize,
                parked: r.u64()? as usize,
                depth: r.u32()?,
                entries: {
                    let n = r.seq_len(20)?;
                    let mut entries = Vec::with_capacity(n);
                    for _ in 0..n {
                        entries.push(DirEntry {
                            mgr: ManagerId(r.u32()?),
                            page: PageId(r.u64()?),
                            version: r.u64()?,
                        });
                    }
                    entries
                },
                pending_garbage: r.u64()? as usize,
            },
            TAG_STATS_REQUEST => Msg::StatsRequest {
                reply_port: PortId(r.u64()?),
            },
            TAG_STATS_REPLY => Msg::StatsReply {
                json: r.str()?.to_string(),
            },
            TAG_SHUTDOWN => Msg::Shutdown,
            _ => return Err(WireError::Malformed("unknown Msg tag")),
        };
        // Strictness: the payload must be exactly one message. Trailing
        // bytes mean a framing bug (or tampering) — reject, sever, redial.
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &Msg) -> Msg {
        let mut w = WireWriter::new();
        msg.wire_encode(&mut w);
        let bytes = w.into_bytes();
        Msg::wire_decode(&bytes).expect("decode")
    }

    fn sample_env() -> OpEnvelope {
        OpEnvelope {
            op: OpKind::Insert,
            key: Key(0xDEAD_BEEF),
            value: Value(42),
            txn: (3 << 48) | 7,
            page: PageId(11),
            user_port: PortId::for_node(4, 9),
            dirmgr_port: PortId::for_node(1, 2),
            pseudokey: Pseudokey(0b1011_0110),
            attempt: 3,
            req_id: 17,
            ctx: TraceCtx {
                trace_id: 0xABCD,
                parent_span: SpanId(55),
            },
        }
    }

    fn sample_bucket() -> Bucket {
        let mut b = Bucket::new(3, 0b101);
        b.next = PageId(9);
        b.next_mgr = ManagerId(2);
        b.prev = PageId(4);
        b.prev_mgr = ManagerId(0);
        b.version = 12;
        b.records.push(Record {
            key: Key(0b1101),
            value: Value(77),
        });
        b.records.push(Record {
            key: Key(0b0101),
            value: Value(78),
        });
        b
    }

    /// `assert_eq!` via Debug: `Msg` deliberately has no `PartialEq`
    /// (buckets inside boxes), but every field shows up in Debug.
    fn assert_same(a: &Msg, b: &Msg) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn every_variant_roundtrips() {
        let msgs = vec![
            Msg::Request {
                op: OpKind::Find,
                key: Key(5),
                value: Value(0),
                user_port: PortId::for_node(9, 1),
                req_id: 3,
                ctx: TraceCtx::NONE,
            },
            Msg::UserReply {
                outcome: UserOutcome::Found(Some(Value(50))),
                req_id: 3,
            },
            Msg::UserReply {
                outcome: UserOutcome::Found(None),
                req_id: 4,
            },
            Msg::UserReply {
                outcome: UserOutcome::Inserted(InsertOutcome::AlreadyPresent),
                req_id: 5,
            },
            Msg::UserReply {
                outcome: UserOutcome::Deleted(DeleteOutcome::NotFound),
                req_id: 6,
            },
            Msg::UserReply {
                outcome: UserOutcome::Failed,
                req_id: 7,
            },
            Msg::BucketOp(sample_env()),
            Msg::Wrongbucket {
                env: sample_env(),
                buckmgr_port: PortId::for_node(2, 5),
            },
            Msg::WrongbucketAck,
            Msg::Bucketdone {
                txn: 9,
                success: true,
                outcome: Some(UserOutcome::Inserted(InsertOutcome::Inserted)),
            },
            Msg::Bucketdone {
                txn: 10,
                success: false,
                outcome: None,
            },
            Msg::Update {
                txn: 11,
                success: true,
                outcome: Some(UserOutcome::Deleted(DeleteOutcome::Deleted)),
                update: DirUpdate::Split {
                    pseudokey: Pseudokey(0b11),
                    old_localdepth: 2,
                    expected_version: 4,
                    new_version: 5,
                    new_bucket: BucketLink::new(ManagerId(1), PageId(8)),
                },
                ctx: TraceCtx::NONE,
            },
            Msg::Copyupdate {
                update: DirUpdate::Merge {
                    pseudokey: Pseudokey(0b10),
                    old_localdepth: 2,
                    expected_v0: 3,
                    expected_v1: 4,
                    new_version: 5,
                    merged: BucketLink::new(ManagerId(0), PageId(1)),
                    garbage: BucketLink::new(ManagerId(1), PageId(2)),
                },
                update_id: 77,
                ack_port: PortId::for_node(1, 3),
                ctx: TraceCtx::NONE,
            },
            Msg::CopyAck { update_id: 77 },
            Msg::Splitbucket {
                reply_port: PortId::for_node(3, 4),
                half2: Box::new(sample_bucket()),
                fences: vec![(PortId(900), 12), (PortId(901), 13)],
            },
            Msg::Splitreply {
                link: BucketLink::new(ManagerId(2), PageId(6)),
            },
            Msg::Mergedown {
                partner: PageId(3),
                localdepth: 2,
                reply_port: PortId(50),
            },
            Msg::MDReply {
                buffer: Some(Box::new(sample_bucket())),
                success: true,
                fences: vec![],
            },
            Msg::MDReply {
                buffer: None,
                success: false,
                fences: vec![(PortId(7), 8)],
            },
            Msg::Mergeup {
                partner: PageId(1),
                target: PageId(2),
                target_mgr: ManagerId(1),
                reply_port: PortId(51),
            },
            Msg::MUReply {
                localdepth: 4,
                version: 9,
                goahead_port: PortId(52),
                success: true,
                count: 3,
            },
            Msg::Goahead {
                success: true,
                next: BucketLink::new(ManagerId(0), PageId(14)),
                version: 10,
                moved: vec![Record {
                    key: Key(1),
                    value: Value(2),
                }],
                fences: vec![(PortId(53), 1)],
            },
            Msg::GarbageCollect {
                pages: vec![PageId(7), PageId(8)],
                gc_id: (2 << 48) | 5,
                ack_port: PortId(54),
                ctx: TraceCtx::NONE,
            },
            Msg::GcAck { gc_id: 5 },
            Msg::Status {
                reply_port: PortId(55),
            },
            Msg::StatusReply {
                rho: 1,
                alpha: 2,
                parked: 3,
                depth: 4,
                entries: vec![
                    DirEntry {
                        mgr: ManagerId(0),
                        page: PageId(0),
                        version: 1,
                    },
                    DirEntry {
                        mgr: ManagerId(1),
                        page: PageId(3),
                        version: 2,
                    },
                ],
                pending_garbage: 5,
            },
            Msg::StatsRequest {
                reply_port: PortId::for_node(2, 7),
            },
            Msg::StatsReply {
                json: "{\"node\":3,\"counters\":{\"dist.requests\":42}}".to_string(),
            },
            Msg::StatsReply {
                json: String::new(),
            },
            Msg::Shutdown,
        ];
        for msg in &msgs {
            assert_same(msg, &roundtrip(msg));
        }
    }

    #[test]
    fn truncated_payloads_are_rejected_not_panicked() {
        let mut w = WireWriter::new();
        Msg::BucketOp(sample_env()).wire_encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Msg::wire_decode(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        Msg::Shutdown.wire_encode(&mut w);
        let mut bytes = w.into_bytes();
        bytes.push(0);
        assert!(matches!(
            Msg::wire_decode(&bytes),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(Msg::wire_decode(&[0xFF]).is_err());
        assert!(Msg::wire_decode(&[0]).is_err());
        // Inner enum tags too.
        let mut w = WireWriter::new();
        w.u8(TAG_USER_REPLY);
        w.u8(99); // no such UserOutcome
        w.u64(1);
        assert!(Msg::wire_decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn oversized_sequence_counts_are_rejected_before_allocation() {
        // A Splitbucket whose record count claims 2^31 entries in a
        // 40-byte payload must fail in seq_len, not OOM.
        let mut w = WireWriter::new();
        w.u8(TAG_SPLITBUCKET);
        w.u64(1); // reply port
        w.u32(0); // localdepth
        w.u64(0); // commonbits
        w.u64(u64::MAX); // next
        w.u32(u32::MAX); // next_mgr
        w.u64(u64::MAX); // prev
        w.u32(u32::MAX); // prev_mgr
        w.u64(0); // version
        w.u32(1 << 31); // records "length"
        assert!(Msg::wire_decode(&w.into_bytes()).is_err());
    }
}
