//! End-to-end tests for the distributed extendible hash file.

use std::sync::Arc;
use std::time::Duration;

use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::LatencyModel;
use ceh_types::{DeleteOutcome, HashFileConfig, InsertOutcome, Key, Value};

fn small_cluster(dirs: usize, buckets: usize) -> Cluster {
    Cluster::start(ClusterConfig {
        dir_managers: dirs,
        bucket_managers: buckets,
        file: HashFileConfig::tiny(),
        page_quota: None,
        latency: LatencyModel::none(),
        data_dir: None,
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn single_manager_crud() {
    let c = small_cluster(1, 1);
    let client = c.client();
    assert_eq!(
        client.insert(Key(1), Value(10)).unwrap(),
        InsertOutcome::Inserted
    );
    assert_eq!(
        client.insert(Key(1), Value(20)).unwrap(),
        InsertOutcome::AlreadyPresent
    );
    assert_eq!(client.find(Key(1)).unwrap(), Some(Value(10)));
    assert_eq!(client.find(Key(2)).unwrap(), None);
    assert_eq!(client.delete(Key(1)).unwrap(), DeleteOutcome::Deleted);
    assert_eq!(client.delete(Key(1)).unwrap(), DeleteOutcome::NotFound);
    assert!(c.quiesce(Duration::from_secs(10)));
    c.shutdown();
}

#[test]
fn grows_and_shrinks_through_the_cluster() {
    let c = small_cluster(2, 2);
    let client = c.client();
    for k in 0..200u64 {
        assert_eq!(
            client.insert(Key(k), Value(k * 3)).unwrap(),
            InsertOutcome::Inserted,
            "insert {k}"
        );
    }
    for k in 0..200u64 {
        assert_eq!(client.find(Key(k)).unwrap(), Some(Value(k * 3)), "find {k}");
    }
    assert!(c.quiesce(Duration::from_secs(20)), "cluster must go idle");
    assert!(c.replicas_converged(), "replicas must agree at quiescence");
    assert_eq!(c.total_records().unwrap(), 200);

    for k in 0..200u64 {
        assert_eq!(
            client.delete(Key(k)).unwrap(),
            DeleteOutcome::Deleted,
            "delete {k}"
        );
    }
    assert!(c.quiesce(Duration::from_secs(20)));
    assert!(c.replicas_converged());
    c.check_invariants().unwrap();
    assert_eq!(c.total_records().unwrap(), 0);
    assert_eq!(
        c.tombstone_count().unwrap(),
        0,
        "garbage collection must drain tombstones"
    );
    c.shutdown();
}

#[test]
fn page_quota_forces_cross_site_splits() {
    let c = Cluster::start(ClusterConfig {
        dir_managers: 1,
        bucket_managers: 3,
        file: HashFileConfig::tiny(),
        page_quota: Some(8),
        latency: LatencyModel::none(),
        data_dir: None,
        ..Default::default()
    })
    .unwrap();
    let client = c.client();
    for k in 0..300u64 {
        client.insert(Key(k), Value(k)).unwrap();
    }
    assert!(c.quiesce(Duration::from_secs(20)));
    let pages = c.pages_per_site();
    assert!(
        pages.iter().filter(|&&p| p > 0).count() >= 2,
        "quota must spread buckets across sites: {pages:?}"
    );
    assert!(
        c.msg_stats().get("splitbucket") > 0,
        "remote splits must have happened"
    );
    for k in 0..300u64 {
        assert_eq!(client.find(Key(k)).unwrap(), Some(Value(k)), "find {k}");
    }
    c.shutdown();
}

#[test]
fn cross_site_merges_happen() {
    // Spread buckets across sites, then delete everything: partner pairs
    // that straddle sites exercise Mergedown / Mergeup / Goahead.
    let c = Cluster::start(ClusterConfig {
        dir_managers: 2,
        bucket_managers: 3,
        file: HashFileConfig::tiny(),
        page_quota: Some(4),
        latency: LatencyModel::none(),
        data_dir: None,
        ..Default::default()
    })
    .unwrap();
    let client = c.client();
    for k in 0..200u64 {
        client.insert(Key(k), Value(k)).unwrap();
    }
    assert!(c.quiesce(Duration::from_secs(20)));
    for k in 0..200u64 {
        assert_eq!(
            client.delete(Key(k)).unwrap(),
            DeleteOutcome::Deleted,
            "delete {k}"
        );
    }
    assert!(c.quiesce(Duration::from_secs(30)));
    let stats = c.msg_stats();
    assert!(
        stats.get("mergedown") + stats.get("mergeup") > 0,
        "cross-site merges must have been exercised: {:?}",
        stats.sorted()
    );
    assert_eq!(c.total_records().unwrap(), 0);
    assert_eq!(c.tombstone_count().unwrap(), 0);
    assert!(c.replicas_converged());
    c.check_invariants().unwrap();
    c.shutdown();
}

#[test]
fn concurrent_clients_with_replicated_directory() {
    let c = Arc::new(small_cluster(3, 3));
    let threads: Vec<_> = (0..6u64)
        .map(|t| {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let client = c.client();
                let mut model = std::collections::HashMap::new();
                use rand::{Rng, SeedableRng};
                let mut rng = rand::rngs::StdRng::seed_from_u64(t);
                for i in 0..250u64 {
                    let k = rng.random_range(0..40u64) * 6 + t; // disjoint per thread
                    match rng.random_range(0..3) {
                        0 => {
                            let out = client.insert(Key(k), Value(i)).unwrap();
                            assert_eq!(out == InsertOutcome::Inserted, !model.contains_key(&k));
                            model.entry(k).or_insert(i);
                        }
                        1 => {
                            let out = client.delete(Key(k)).unwrap();
                            assert_eq!(out == DeleteOutcome::Deleted, model.remove(&k).is_some());
                        }
                        _ => {
                            let got = client.find(Key(k)).unwrap().map(|v| v.0);
                            assert_eq!(got, model.get(&k).copied(), "thread {t} find {k}");
                        }
                    }
                }
                model.len()
            })
        })
        .collect();
    let total: usize = threads.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(c.quiesce(Duration::from_secs(30)));
    assert!(c.replicas_converged());
    c.check_invariants().unwrap();
    assert_eq!(c.total_records().unwrap(), total);
    assert_eq!(c.tombstone_count().unwrap(), 0);
    match Arc::try_unwrap(c) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("client threads must have exited"),
    }
}

#[test]
fn jittered_network_reorders_but_stays_correct() {
    // Jitter reorders copyupdates between replicas — the version parking
    // machinery must still converge (the paper's §3 ordering example).
    let c = Cluster::start(ClusterConfig {
        dir_managers: 3,
        bucket_managers: 2,
        file: HashFileConfig::tiny(),
        page_quota: None,
        latency: LatencyModel::jittered(Duration::from_micros(10), Duration::from_micros(500), 7),
        data_dir: None,
        ..Default::default()
    })
    .unwrap();
    let client = c.client();
    for k in 0..120u64 {
        client.insert(Key(k), Value(k)).unwrap();
    }
    for k in 0..60u64 {
        client.delete(Key(k)).unwrap();
    }
    assert!(c.quiesce(Duration::from_secs(30)));
    assert!(c.replicas_converged(), "jitter must not break convergence");
    assert_eq!(c.total_records().unwrap(), 60);
    for k in 60..120u64 {
        assert_eq!(client.find(Key(k)).unwrap(), Some(Value(k)));
    }
    c.shutdown();
}

#[test]
fn requests_via_any_replica_reach_the_data() {
    // Round-robin across 3 directory managers: stale replicas must still
    // route via next-link recovery (wrongbucket forwarding).
    let c = small_cluster(3, 2);
    let client = c.client();
    for k in 0..150u64 {
        client.insert(Key(k), Value(k + 7)).unwrap();
        // Immediately read back through the *next* replica, which may
        // not have heard about a split yet.
        assert_eq!(
            client.find(Key(k)).unwrap(),
            Some(Value(k + 7)),
            "read-your-write {k}"
        );
    }
    c.shutdown();
}
