//! Cluster durability: file-backed sites and whole-cluster recovery.

use std::time::Duration;

use ceh_dist::{Cluster, ClusterConfig};
use ceh_net::LatencyModel;
use ceh_types::{DeleteOutcome, HashFileConfig, InsertOutcome, Key, Value};

fn durable_cfg(tag: &str, dirs: usize, sites: usize) -> ClusterConfig {
    let data_dir = std::env::temp_dir().join(format!("ceh-cluster-{}-{tag}", std::process::id()));
    ClusterConfig {
        dir_managers: dirs,
        bucket_managers: sites,
        file: HashFileConfig::tiny().with_bucket_capacity(4),
        page_quota: Some(16),
        latency: LatencyModel::none(),
        data_dir: Some(data_dir),
        ..Default::default()
    }
}

#[test]
fn cluster_survives_shutdown_and_recovery() {
    let cfg = durable_cfg("roundtrip", 2, 2);

    // Session 1: populate across both sites, then shut down cleanly.
    {
        let c = Cluster::start(cfg.clone()).unwrap();
        let client = c.client();
        for k in 0..200u64 {
            assert_eq!(
                client.insert(Key(k), Value(k * 9)).unwrap(),
                InsertOutcome::Inserted
            );
        }
        for k in 0..50u64 {
            assert_eq!(client.delete(Key(k)).unwrap(), DeleteOutcome::Deleted);
        }
        assert!(c.quiesce(Duration::from_secs(30)));
        c.check_invariants().unwrap();
        let pages = c.pages_per_site();
        assert!(pages.iter().all(|&p| p > 0), "both sites used: {pages:?}");
        c.shutdown();
    }

    // Session 2: recover from the site files.
    let c = Cluster::recover(cfg.clone()).unwrap();
    assert_eq!(c.total_records().unwrap(), 150);
    let client = c.client();
    for k in 0..50u64 {
        assert_eq!(
            client.find(Key(k)).unwrap(),
            None,
            "deleted key {k} stayed deleted"
        );
    }
    for k in 50..200u64 {
        assert_eq!(
            client.find(Key(k)).unwrap(),
            Some(Value(k * 9)),
            "key {k} survived"
        );
    }
    // The recovered cluster keeps restructuring correctly.
    for k in 200..400u64 {
        client.insert(Key(k), Value(k)).unwrap();
    }
    for k in 50..400u64 {
        assert_eq!(
            client.delete(Key(k)).unwrap(),
            DeleteOutcome::Deleted,
            "key {k}"
        );
    }
    assert!(c.quiesce(Duration::from_secs(30)));
    c.check_invariants().unwrap();
    assert_eq!(c.total_records().unwrap(), 0);
    c.shutdown();
    std::fs::remove_dir_all(cfg.data_dir.unwrap()).unwrap();
}

#[test]
fn recovery_of_empty_cluster_initializes_fresh() {
    let cfg = durable_cfg("empty", 1, 2);
    {
        let c = Cluster::start(cfg.clone()).unwrap();
        c.shutdown(); // never wrote a record (root bucket only)
    }
    let c = Cluster::recover(cfg.clone()).unwrap();
    let client = c.client();
    assert_eq!(client.find(Key(1)).unwrap(), None);
    client.insert(Key(1), Value(1)).unwrap();
    assert_eq!(client.find(Key(1)).unwrap(), Some(Value(1)));
    assert!(c.quiesce(Duration::from_secs(20)));
    c.shutdown();
    std::fs::remove_dir_all(cfg.data_dir.unwrap()).unwrap();
}

#[test]
fn recover_requires_data_dir() {
    let cfg = ClusterConfig::default();
    assert!(Cluster::recover(cfg).is_err());
}

#[test]
fn recovered_replicas_start_identical_on_every_manager() {
    let cfg = durable_cfg("replicas", 3, 2);
    {
        let c = Cluster::start(cfg.clone()).unwrap();
        let client = c.client();
        for k in 0..120u64 {
            client.insert(Key(k), Value(k)).unwrap();
        }
        assert!(c.quiesce(Duration::from_secs(30)));
        c.shutdown();
    }
    let c = Cluster::recover(cfg.clone()).unwrap();
    assert!(
        c.replicas_converged(),
        "all three managers restored the same directory"
    );
    let statuses = c.dir_statuses();
    assert_eq!(statuses.len(), 3);
    assert!(statuses[0].depth >= 4, "120 keys / capacity 4 needs depth");
    c.shutdown();
    std::fs::remove_dir_all(cfg.data_dir.unwrap()).unwrap();
}
