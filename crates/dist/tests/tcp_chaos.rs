//! The distributed hash file over real TCP under seeded socket faults.
//!
//! `tests/chaos.rs` (workspace root) drives the simulated plane through
//! drops, duplication, and crashes; this test drives the *TCP* plane —
//! every manager on its own loopback socket, every frame subject to a
//! seeded plan of drops, duplications, and connection severs — and
//! holds the same exact oracle: every operation's outcome matches an
//! in-memory model (with `Inserted|AlreadyPresent` ≡ present under
//! at-least-once retries), and after healing, a full sweep agrees with
//! the model key by key.
//!
//! `CEH_QUICK=1` shrinks the workload for CI smoke runs.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

use ceh_dist::{ClusterSpec, NodeOptions, NodeRole, ServeNode, TcpClusterClient};
use ceh_net::{FaultPlan, Transport};
use ceh_types::{DeleteOutcome, InsertOutcome, Key, RetryPolicy, Value};

fn quick() -> bool {
    std::env::var("CEH_QUICK").is_ok_and(|v| v == "1")
}

/// Message classes the resilience plane makes safe to lose or duplicate
/// (same list as the simulated chaos test): the retried client path,
/// re-driven bucket operations, and acked replication traffic.
const FAULTABLE: &[&str] = &[
    "request",
    "user-reply",
    "find",
    "insert",
    "delete",
    "bucketdone",
    "copyupdate",
    "copy-ack",
    "garbagecollect",
    "gc-ack",
];

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr"))
        .collect()
}

fn faults(seed: u64) -> FaultPlan {
    // Severs tear the carrying connection down *after* the frame is
    // written, so they are safe on every class: the supervisor redials
    // and nothing above the transport notices but latency.
    FaultPlan::new(seed)
        .drop_classes(FAULTABLE, 0.03)
        .duplicate_classes(FAULTABLE, 0.01)
        .sever_all(0.003)
}

#[test]
fn seeded_drop_dup_sever_over_tcp_converges_exactly() {
    let ops_per_client: u64 = if quick() { 60 } else { 200 };
    let clients: u64 = 3;
    let seed = 0x0CE1_17C9;

    let addrs = free_addrs(4);
    let spec = ClusterSpec {
        nodes: vec![
            (NodeRole::Dir, addrs[0]),
            (NodeRole::Dir, addrs[1]),
            (NodeRole::Bucket, addrs[2]),
            (NodeRole::Bucket, addrs[3]),
        ],
    };
    let opts = NodeOptions {
        seed,
        faults: Some(faults(seed)),
        resend_ms: 100,
        reply_timeout_ms: 2_000,
        ..Default::default()
    };
    let nodes: Vec<ServeNode> = (0..spec.nodes.len())
        .map(|i| ServeNode::start(&spec, i, &opts).expect("start node"))
        .collect();

    // The client plane is faulty too — requests and replies both cross
    // hostile sockets. Retries are generous: at-least-once is the
    // contract the oracle tolerates.
    let retry = RetryPolicy {
        attempts: 80,
        timeout_ms: 250,
        base_backoff_ms: 1,
        max_backoff_ms: 10,
    };
    let conn = TcpClusterClient::connect(&spec, 100, retry, &opts).expect("connect");

    let conn_ref = &conn;
    let models: Vec<HashMap<u64, u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    // No timeout override: the connect-time RetryPolicy's
                    // short per-attempt window is what makes losses cheap.
                    let client = conn_ref.client();
                    let mut rng = seed ^ (c.wrapping_mul(0x9E37_79B9) | 1);
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    let mut model: HashMap<u64, u64> = HashMap::new();
                    let base = (c + 1) << 32;
                    let span = ops_per_client / 2;
                    for _ in 0..ops_per_client {
                        let key = Key(base | (next() % span));
                        match next() % 10 {
                            0..=5 => {
                                let value = next();
                                let fresh = !model.contains_key(&key.0);
                                match (fresh, client.insert(key, Value(value)).expect("insert")) {
                                    (true, _) => {
                                        model.insert(key.0, value);
                                    }
                                    (false, InsertOutcome::AlreadyPresent) => {}
                                    (false, out) => {
                                        panic!("insert of present {key:?} returned {out:?}")
                                    }
                                }
                            }
                            6..=7 => {
                                let got = client.find(key).expect("find");
                                let want = model.get(&key.0).copied().map(Value);
                                assert_eq!(got, want, "find {key:?} disagrees with model");
                            }
                            _ => {
                                let present = model.remove(&key.0).is_some();
                                match (present, client.delete(key).expect("delete")) {
                                    (true, _) => {}
                                    (false, DeleteOutcome::NotFound) => {}
                                    (false, out) => {
                                        panic!("delete of absent {key:?} returned {out:?}")
                                    }
                                }
                            }
                        }
                    }
                    model
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Heal every plane, then sweep: the file must agree with the model
    // exactly — nothing lost to drops, nothing applied twice by dups or
    // by retries re-driven across severed connections.
    for node in &nodes {
        node.plane().set_fault_plan(None);
    }
    conn.plane().set_fault_plan(None);
    let client = conn.client();
    for (c, model) in models.iter().enumerate() {
        let base = ((c as u64) + 1) << 32;
        let span = ops_per_client / 2;
        for k in 0..span {
            let key = Key(base | k);
            let got = client.find(key).expect("sweep find");
            let want = model.get(&key.0).copied().map(Value);
            assert_eq!(got, want, "sweep: {key:?} disagrees with model after heal");
        }
    }

    // The fault plan must be visible in the flight recorder.
    let report = nodes[0].run_report("tcp-chaos");
    let json = report.to_json();
    assert!(
        json.contains("drop"),
        "run report must record the effective fault plan: {json}"
    );

    conn.shutdown_cluster();
    for node in nodes {
        node.join().expect("clean exit");
    }
}

/// Restarting a bucket manager with a data directory brings its records
/// back: the durable half of failover (the process-kill half lives in
/// the CLI's transport_smoke test, where managers are real processes).
#[test]
fn bucket_manager_restart_recovers_its_pages() {
    let dir = std::env::temp_dir().join(format!("ceh-tcp-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let addrs = free_addrs(2);
    let spec = ClusterSpec {
        nodes: vec![(NodeRole::Dir, addrs[0]), (NodeRole::Bucket, addrs[1])],
    };
    let opts = NodeOptions {
        data_dir: Some(dir.clone()),
        ..Default::default()
    };

    // First life: insert, shut down cleanly.
    {
        let nodes: Vec<ServeNode> = (0..2)
            .map(|i| ServeNode::start(&spec, i, &opts).expect("start node"))
            .collect();
        let conn =
            TcpClusterClient::connect(&spec, 100, RetryPolicy::default(), &opts).expect("connect");
        let client = conn.client().with_timeout(Duration::from_secs(10));
        for k in 0..30u64 {
            client.insert(Key(k), Value(k + 1000)).expect("insert");
        }
        conn.shutdown_cluster();
        for node in nodes {
            node.join().expect("clean exit");
        }
    }

    // Second life: same spec, same data dir — the records are there.
    // (Retry each bind: the first life's listener may take a beat to
    // release its port.)
    {
        let start_retrying = |i: usize| {
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                match ServeNode::start(&spec, i, &opts) {
                    Ok(n) => return n,
                    Err(e) => {
                        assert!(
                            std::time::Instant::now() < deadline,
                            "restart node {i} never bound: {e}"
                        );
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
        };
        let nodes: Vec<ServeNode> = (0..2).map(start_retrying).collect();
        let conn = TcpClusterClient::connect(&spec, 101, RetryPolicy::default(), &opts)
            .expect("reconnect");
        let client = conn.client().with_timeout(Duration::from_secs(10));
        for k in 0..30u64 {
            assert_eq!(
                client.find(Key(k)).expect("find"),
                Some(Value(k + 1000)),
                "key {k} lost across restart"
            );
        }
        conn.shutdown_cluster();
        for node in nodes {
            node.join().expect("clean exit");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
