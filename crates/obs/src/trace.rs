//! The bounded ring-buffer event tracer and causal-trace context.
//!
//! Counters say *how much*; the tracer says *in what order*. Each
//! logical operation opens a span ([`Tracer::begin`]) and closes it
//! ([`Tracer::end`]); nested work opens child spans under the parent's
//! [`TraceCtx`], and one-off facts land as [`Tracer::instant`] events.
//! Because a `TraceCtx` is two plain integers it can ride inside
//! network messages, so a request's causal chain — client send,
//! directory-manager dispatch, bucket-slave execution, wrong-bucket
//! hops, reply — reassembles under a single `trace_id` even when the
//! hops ran on different sites (see [`crate::TraceReport`]).
//!
//! Disabled by default: a disabled probe is one relaxed atomic load.
//! When enabled, events land in a bounded ring — the newest
//! `capacity` events win, older ones are overwritten — so tracing
//! never grows memory without bound under load. Overwrites are counted
//! ([`Tracer::dropped`]) and surfaced in [`crate::RunReport`], so a
//! truncated trace is never silently trusted.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifies one span (one timed region of one logical operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel, for events outside any operation.
    pub const NONE: SpanId = SpanId(0);
}

/// The causal context one unit of work runs under: which trace it
/// belongs to and which span new child spans should attach to.
///
/// A `TraceCtx` is deliberately two plain `u64`s so it can be embedded
/// in message structs and copied across thread and (simulated) site
/// boundaries for free. `trace_id` is the span id of the trace's root
/// span; `trace_id == 0` means "not traced" ([`TraceCtx::NONE`]) and
/// costs nothing to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The originating request's trace (0 = untraced).
    pub trace_id: u64,
    /// The span new children of this context attach under.
    pub parent_span: SpanId,
}

thread_local! {
    static CURRENT_CTX: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
}

impl TraceCtx {
    /// The "not traced" context. Probes given this context are no-ops.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: SpanId::NONE,
    };

    /// Is this the untraced sentinel?
    #[inline]
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// The calling thread's ambient context (set by [`TraceCtx::scope`]).
    ///
    /// Layers that cannot thread a context through their API (the lock
    /// manager, the in-process hash file) read this instead, so their
    /// spans still nest under the distributed operation that invoked
    /// them.
    #[inline]
    pub fn current() -> TraceCtx {
        CURRENT_CTX.with(|c| c.get())
    }

    /// Install `self` as the calling thread's ambient context until the
    /// returned guard drops (the previous context is then restored).
    pub fn scope(self) -> CtxScope {
        let prev = CURRENT_CTX.with(|c| c.replace(self));
        CtxScope { prev }
    }

    /// The context child work should run under once `span` is open.
    #[inline]
    pub fn child(&self, span: SpanId) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent_span: span,
        }
    }
}

/// Guard restoring the previous ambient [`TraceCtx`] on drop.
#[must_use = "dropping the scope immediately restores the previous context"]
pub struct CtxScope {
    prev: TraceCtx,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        CURRENT_CTX.with(|c| c.set(self.prev));
    }
}

/// What a [`TraceEvent`] marks: a span opening, a span closing, or a
/// point-in-time fact inside a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`span` is new; `parent` is the enclosing span).
    Begin,
    /// A span closed (`span` names the span opened by the matching
    /// [`EventKind::Begin`]).
    End,
    /// A point-in-time event attributed to `span`.
    Instant,
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The originating request's trace id (0 = untraced/standalone).
    pub trace: u64,
    /// The span this event belongs to ([`SpanId::NONE`] if none).
    pub span: SpanId,
    /// For [`EventKind::Begin`]: the enclosing span (NONE for roots).
    pub parent: SpanId,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Nanoseconds since the tracer was created.
    pub at_ns: u64,
    /// Owning layer ("core", "locks", "net", …).
    pub layer: &'static str,
    /// What happened ("find", "split", "redrive", …).
    pub event: &'static str,
    /// Event-specific detail (a page id, a hop count, …).
    pub a: u64,
    /// Second event-specific detail.
    pub b: u64,
}

/// The ring-buffer tracer. One per registry; see the crate docs.
pub struct Tracer {
    enabled: AtomicBool,
    next_span: AtomicU64,
    epoch: Instant,
    ring: Mutex<Ring>,
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A disabled tracer (the default state).
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            next_span: AtomicU64::new(1),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: 0,
                dropped: 0,
            }),
        }
    }

    /// Start recording, keeping the newest `capacity` events.
    ///
    /// Contract: `enable` is idempotent. Re-enabling with the same
    /// capacity (enabled or not) keeps the buffered events and the
    /// `dropped` count — a second subsystem calling `enable` cannot
    /// silently discard another's trace. Only an actual capacity
    /// *change* resizes the ring, which clears the buffer and resets
    /// `dropped` (the old contents no longer describe the ring's
    /// bound). Use [`Tracer::drain`] to explicitly empty the ring.
    pub fn enable(&self, capacity: usize) {
        let capacity = capacity.max(1);
        {
            let mut r = self.ring.lock().expect("tracer ring");
            if r.capacity != capacity {
                r.capacity = capacity;
                r.buf.clear();
                r.dropped = 0;
            }
        }
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (buffered events stay until [`Tracer::drain`]).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is the tracer recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        // ceh-lint: allow(relaxed-ordering) — hot-path enable probe; staleness only delays the toggle, and the paired enable/disable stores are Release
        self.enabled.load(Ordering::Relaxed)
    }

    /// A fresh span id for one logical operation. Ids are allocated
    /// even while disabled (they are just a counter) so an operation
    /// spanning an `enable` keeps a consistent id.
    #[inline]
    pub fn new_span(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Record one free-standing instant event (no-op while disabled).
    /// Legacy probe shape: untraced, attributed only to `span`.
    #[inline]
    pub fn record(&self, span: SpanId, layer: &'static str, event: &'static str, a: u64, b: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record_slow(TraceEvent {
            trace: 0,
            span,
            parent: SpanId::NONE,
            kind: EventKind::Instant,
            at_ns: 0,
            layer,
            event,
            a,
            b,
        });
    }

    /// Open a span under `ctx` and return the context its children
    /// (and its matching [`Tracer::end`]) should use.
    ///
    /// With `ctx == TraceCtx::NONE` the new span becomes a trace
    /// *root*: its `trace_id` is its own span id. While disabled this
    /// returns `TraceCtx::NONE`, so downstream probes stay free.
    #[inline]
    pub fn begin(
        &self,
        ctx: TraceCtx,
        layer: &'static str,
        event: &'static str,
        a: u64,
        b: u64,
    ) -> TraceCtx {
        if !self.is_enabled() {
            return TraceCtx::NONE;
        }
        let span = self.new_span();
        let trace = if ctx.is_none() { span.0 } else { ctx.trace_id };
        self.record_slow(TraceEvent {
            trace,
            span,
            parent: ctx.parent_span,
            kind: EventKind::Begin,
            at_ns: 0,
            layer,
            event,
            a,
            b,
        });
        TraceCtx {
            trace_id: trace,
            parent_span: span,
        }
    }

    /// Close the span `ctx` was returned for by [`Tracer::begin`].
    /// No-op while disabled or when `ctx` is the untraced sentinel.
    #[inline]
    pub fn end(&self, ctx: TraceCtx, layer: &'static str, event: &'static str, a: u64, b: u64) {
        if !self.is_enabled() || ctx.parent_span == SpanId::NONE {
            return;
        }
        self.record_slow(TraceEvent {
            trace: ctx.trace_id,
            span: ctx.parent_span,
            parent: SpanId::NONE,
            kind: EventKind::End,
            at_ns: 0,
            layer,
            event,
            a,
            b,
        });
    }

    /// Record a point-in-time event inside `ctx`'s current span.
    /// No-op while disabled or when `ctx` is the untraced sentinel.
    #[inline]
    pub fn instant(&self, ctx: TraceCtx, layer: &'static str, event: &'static str, a: u64, b: u64) {
        if !self.is_enabled() || ctx.is_none() {
            return;
        }
        self.record_slow(TraceEvent {
            trace: ctx.trace_id,
            span: ctx.parent_span,
            parent: SpanId::NONE,
            kind: EventKind::Instant,
            at_ns: 0,
            layer,
            event,
            a,
            b,
        });
    }

    #[cold]
    fn record_slow(&self, mut ev: TraceEvent) {
        ev.at_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut r = self.ring.lock().expect("tracer ring");
        if r.buf.len() == r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back(ev);
    }

    /// Take every buffered event (oldest first), leaving the ring empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut r = self.ring.lock().expect("tracer ring");
        r.buf.drain(..).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer ring").buf.len()
    }

    /// Nothing buffered?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer ring").dropped
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("buffered", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(SpanId::NONE, "core", "find.start", 0, 0);
        let ctx = t.begin(TraceCtx::NONE, "core", "find", 0, 0);
        assert!(ctx.is_none(), "disabled begin returns the sentinel");
        t.end(ctx, "core", "find", 0, 0);
        t.instant(ctx, "core", "hop", 0, 0);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn events_carry_span_and_order() {
        let t = Tracer::new();
        t.enable(16);
        let s = t.new_span();
        t.record(s, "core", "find.start", 7, 0);
        t.record(s, "core", "find.done", 7, 1);
        let ev = t.drain();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].event, "find.start");
        assert_eq!(ev[1].event, "find.done");
        assert_eq!(ev[0].span, s);
        assert!(ev[0].at_ns <= ev[1].at_ns);
        assert!(t.is_empty(), "drain empties the ring");
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let t = Tracer::new();
        t.enable(4);
        for i in 0..10u64 {
            t.record(SpanId(i), "x", "e", i, 0);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let ev = t.drain();
        assert_eq!(ev[0].a, 6, "oldest surviving event");
        assert_eq!(ev[3].a, 9, "newest event");
    }

    #[test]
    fn span_ids_are_unique() {
        let t = Tracer::new();
        let a = t.new_span();
        let b = t.new_span();
        assert_ne!(a, b);
        assert_ne!(a, SpanId::NONE);
    }

    #[test]
    fn reenable_same_capacity_keeps_buffer_and_dropped() {
        let t = Tracer::new();
        t.enable(2);
        t.record(SpanId(1), "x", "a", 0, 0);
        t.record(SpanId(2), "x", "b", 0, 0);
        t.record(SpanId(3), "x", "c", 0, 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        t.enable(2); // idempotent: nothing lost
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        t.disable();
        t.enable(2); // re-enable after disable also keeps the buffer
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        t.enable(8); // a capacity *change* resizes and clears
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn begin_roots_and_nests() {
        let t = Tracer::new();
        t.enable(64);
        let root = t.begin(TraceCtx::NONE, "dist", "request", 1, 0);
        assert_eq!(root.trace_id, root.parent_span.0, "root trace = own span");
        let child = t.begin(root, "core", "find", 2, 0);
        assert_eq!(child.trace_id, root.trace_id);
        t.instant(child, "core", "hop", 3, 0);
        t.end(child, "core", "find", 2, 0);
        t.end(root, "dist", "request", 1, 0);
        let ev = t.drain();
        assert_eq!(ev.len(), 5);
        assert_eq!(ev[0].kind, EventKind::Begin);
        assert_eq!(ev[0].parent, SpanId::NONE);
        assert_eq!(ev[1].parent, root.parent_span, "child nests under root");
        assert!(ev.iter().all(|e| e.trace == root.trace_id));
        assert_eq!(ev[2].kind, EventKind::Instant);
        assert_eq!(ev[2].span, child.parent_span);
        assert_eq!(ev[4].kind, EventKind::End);
        assert_eq!(ev[4].span, root.parent_span);
    }

    #[test]
    fn ambient_ctx_scopes_nest_and_restore() {
        assert!(TraceCtx::current().is_none());
        let a = TraceCtx {
            trace_id: 7,
            parent_span: SpanId(7),
        };
        {
            let _g = a.scope();
            assert_eq!(TraceCtx::current(), a);
            let b = a.child(SpanId(9));
            {
                let _g2 = b.scope();
                assert_eq!(TraceCtx::current(), b);
            }
            assert_eq!(TraceCtx::current(), a);
        }
        assert!(TraceCtx::current().is_none());
    }

    #[test]
    fn threads_preserve_per_span_order_and_monotone_time() {
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const EVENTS: u64 = 200;
        let t = Arc::new(Tracer::new());
        t.enable((THREADS * EVENTS) as usize);
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let s = t.new_span();
                    for i in 0..EVENTS {
                        t.record(s, "test", "tick", i, 0);
                    }
                    s
                })
            })
            .collect();
        let spans: Vec<SpanId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(t.dropped(), 0, "ring sized to hold every event");
        let ev = t.drain();
        assert_eq!(ev.len(), (THREADS * EVENTS) as usize);
        for s in spans {
            let mine: Vec<&TraceEvent> = ev.iter().filter(|e| e.span == s).collect();
            assert_eq!(mine.len(), EVENTS as usize);
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.a, i as u64, "per-span order preserved in drain");
            }
            for w in mine.windows(2) {
                assert!(w[0].at_ns <= w[1].at_ns, "at_ns monotone within a span");
            }
        }
    }

    #[test]
    fn overflow_under_threads_counts_every_drop_and_never_loses_events() {
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const EVENTS: u64 = 500;
        const CAPACITY: usize = 64; // far smaller than the event volume
        let t = Arc::new(Tracer::new());
        t.enable(CAPACITY);
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let s = t.new_span();
                    for i in 0..EVENTS {
                        t.record(s, "test", "tick", i, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // At capacity every record evicts one event: buffered + dropped
        // accounts for all of them, and nothing panicked or deadlocked.
        assert_eq!(t.len(), CAPACITY);
        assert_eq!(t.dropped() + t.len() as u64, THREADS * EVENTS);
    }
}
