//! The bounded ring-buffer event tracer.
//!
//! Counters say *how much*; the tracer says *in what order*. Each
//! logical operation takes a [`SpanId`] and stamps [`TraceEvent`]s
//! against it (op start, wrong-bucket recovery, split, merge, message
//! send, …), so a post-mortem can reconstruct one operation's path
//! through locks, storage, and the network.
//!
//! Disabled by default: a disabled probe is one relaxed atomic load.
//! When enabled, events land in a bounded ring — the newest
//! `capacity` events win, older ones are overwritten — so tracing
//! never grows memory without bound under load.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifies one logical operation across layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel, for events outside any operation.
    pub const NONE: SpanId = SpanId(0);
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The operation this event belongs to ([`SpanId::NONE`] if none).
    pub span: SpanId,
    /// Nanoseconds since the tracer was created.
    pub at_ns: u64,
    /// Owning layer ("core", "locks", "net", …).
    pub layer: &'static str,
    /// What happened ("find.start", "split", "redrive", …).
    pub event: &'static str,
    /// Event-specific detail (a page id, a hop count, …).
    pub a: u64,
    /// Second event-specific detail.
    pub b: u64,
}

/// The ring-buffer tracer. One per registry; see the crate docs.
pub struct Tracer {
    enabled: AtomicBool,
    next_span: AtomicU64,
    epoch: Instant,
    ring: Mutex<Ring>,
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A disabled tracer (the default state).
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            next_span: AtomicU64::new(1),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: 0,
                dropped: 0,
            }),
        }
    }

    /// Start recording, keeping the newest `capacity` events.
    pub fn enable(&self, capacity: usize) {
        {
            let mut r = self.ring.lock().expect("tracer ring");
            r.capacity = capacity.max(1);
            r.buf.clear();
            r.dropped = 0;
        }
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (buffered events stay until [`Tracer::drain`]).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is the tracer recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// A fresh span id for one logical operation. Ids are allocated
    /// even while disabled (they are just a counter) so an operation
    /// spanning an `enable` keeps a consistent id.
    #[inline]
    pub fn new_span(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    /// Record one event (no-op while disabled).
    #[inline]
    pub fn record(&self, span: SpanId, layer: &'static str, event: &'static str, a: u64, b: u64) {
        if !self.is_enabled() {
            return;
        }
        self.record_slow(span, layer, event, a, b);
    }

    #[cold]
    fn record_slow(&self, span: SpanId, layer: &'static str, event: &'static str, a: u64, b: u64) {
        let at_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut r = self.ring.lock().expect("tracer ring");
        if r.buf.len() == r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back(TraceEvent {
            span,
            at_ns,
            layer,
            event,
            a,
            b,
        });
    }

    /// Take every buffered event (oldest first), leaving the ring empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut r = self.ring.lock().expect("tracer ring");
        r.buf.drain(..).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer ring").buf.len()
    }

    /// Nothing buffered?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer ring").dropped
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("buffered", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(SpanId::NONE, "core", "find.start", 0, 0);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn events_carry_span_and_order() {
        let t = Tracer::new();
        t.enable(16);
        let s = t.new_span();
        t.record(s, "core", "find.start", 7, 0);
        t.record(s, "core", "find.done", 7, 1);
        let ev = t.drain();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].event, "find.start");
        assert_eq!(ev[1].event, "find.done");
        assert_eq!(ev[0].span, s);
        assert!(ev[0].at_ns <= ev[1].at_ns);
        assert!(t.is_empty(), "drain empties the ring");
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let t = Tracer::new();
        t.enable(4);
        for i in 0..10u64 {
            t.record(SpanId(i), "x", "e", i, 0);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let ev = t.drain();
        assert_eq!(ev[0].a, 6, "oldest surviving event");
        assert_eq!(ev[3].a, 9, "newest event");
    }

    #[test]
    fn span_ids_are_unique() {
        let t = Tracer::new();
        let a = t.new_span();
        let b = t.new_span();
        assert_ne!(a, b);
        assert_ne!(a, SpanId::NONE);
    }
}
