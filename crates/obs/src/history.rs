//! Operation-history recording for linearizability checking.
//!
//! A [`HistoryLog`] is the observability plane's *semantic* sibling of the
//! [`Tracer`](crate::Tracer): where the tracer records *how* an operation
//! executed (spans, lock waits), the history log records *what* it claimed
//! to do — `invoke(find k)` … `return Found(Some(v))` — stamped with a
//! global sequence number on both edges so the real-time precedence order
//! is recoverable. `ceh-check`'s Wing–Gong linearizability checker consumes
//! the drained records and verifies them against the sequential model.
//!
//! Recording is disabled by default: every probe is a single relaxed
//! atomic load until [`HistoryLog::enable`] is called, so production
//! paths pay nothing. Like the tracer, the log hangs off the shared
//! [`MetricsHandle`](crate::MetricsHandle) registry, so a cluster, a
//! concurrent file, and the checker all see the same log when wired to
//! the same handle.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Which map operation a history record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistKind {
    /// `find(key)`.
    Find,
    /// `insert(key, value)`.
    Insert,
    /// `delete(key)`.
    Delete,
}

impl std::fmt::Display for HistKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistKind::Find => write!(f, "find"),
            HistKind::Insert => write!(f, "insert"),
            HistKind::Delete => write!(f, "delete"),
        }
    }
}

/// The observed outcome of a completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistResult {
    /// `find` returned this value (or absence).
    Found(Option<u64>),
    /// `insert` returned: `true` = newly inserted, `false` = already present.
    Inserted(bool),
    /// `delete` returned: `true` = deleted, `false` = not found.
    Deleted(bool),
    /// The operation returned an error or its outcome was lost (e.g. a
    /// distributed request that exhausted its retries). The checker must
    /// treat it like a pending operation: it may or may not have taken
    /// effect.
    Unknown,
}

/// One recorded operation: an invoke edge, and (if it completed) a return
/// edge with its observed result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistRecord {
    /// Operation kind.
    pub kind: HistKind,
    /// The key operated on.
    pub key: u64,
    /// The value argument (0 for find/delete).
    pub value: u64,
    /// Global sequence number of the invoke edge.
    pub invoke: u64,
    /// Global sequence number of the return edge, or [`HistRecord::PENDING`]
    /// if the operation never returned before the log was drained.
    pub ret: u64,
    /// Observed outcome ([`HistResult::Unknown`] until the return edge).
    pub result: HistResult,
}

impl HistRecord {
    /// Sentinel `ret` value for operations that never returned.
    pub const PENDING: u64 = u64::MAX;

    /// Did the operation return with a known outcome?
    pub fn completed(&self) -> bool {
        self.ret != Self::PENDING && self.result != HistResult::Unknown
    }
}

/// Token returned by [`HistoryLog::invoke`], passed to [`HistoryLog::ret`].
///
/// The zero token (from a disabled log) makes the return edge a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistToken(u64);

impl HistToken {
    /// The no-op token handed out while recording is disabled.
    pub const NONE: HistToken = HistToken(0);
}

/// An append-only operation-history log (see module docs).
#[derive(Default)]
pub struct HistoryLog {
    enabled: AtomicBool,
    seq: AtomicU64,
    ops: Mutex<Vec<HistRecord>>,
}

impl HistoryLog {
    /// Turn recording on. Idempotent.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Turn recording off (probes return to a single atomic load).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Is recording currently enabled?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        // ceh-lint: allow(relaxed-ordering) — hot-path enable probe; staleness only delays the toggle, and the paired enable/disable stores are Release
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record the invoke edge of an operation. Returns the token to pass
    /// to [`HistoryLog::ret`]; [`HistToken::NONE`] while disabled.
    pub fn invoke(&self, kind: HistKind, key: u64, value: u64) -> HistToken {
        if !self.is_enabled() {
            return HistToken::NONE;
        }
        let mut ops = self.ops.lock().expect("history log poisoned");
        // Sequence numbers are assigned under the mutex, so `invoke < ret`
        // of the same op and both edges embed into one total order.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        ops.push(HistRecord {
            kind,
            key,
            value,
            invoke: seq,
            ret: HistRecord::PENDING,
            result: HistResult::Unknown,
        });
        HistToken(ops.len() as u64)
    }

    /// Record the return edge of the operation `token` was issued for.
    /// No-op for [`HistToken::NONE`].
    pub fn ret(&self, token: HistToken, result: HistResult) {
        if token == HistToken::NONE {
            return;
        }
        let mut ops = self.ops.lock().expect("history log poisoned");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // A drain between invoke and return orphans the token; drop the
        // edge rather than stamping some unrelated record.
        if let Some(rec) = ops.get_mut((token.0 - 1) as usize) {
            rec.ret = seq;
            rec.result = result;
        }
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.ops.lock().expect("history log poisoned").len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove and return every record. Pending operations keep
    /// `ret == PENDING`; sequence numbering continues across drains.
    pub fn drain(&self) -> Vec<HistRecord> {
        std::mem::take(&mut *self.ops.lock().expect("history log poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = HistoryLog::default();
        let t = log.invoke(HistKind::Find, 1, 0);
        assert_eq!(t, HistToken::NONE);
        log.ret(t, HistResult::Found(None));
        assert!(log.is_empty());
    }

    #[test]
    fn invoke_and_return_edges_are_ordered() {
        let log = HistoryLog::default();
        log.enable();
        let a = log.invoke(HistKind::Insert, 7, 70);
        let b = log.invoke(HistKind::Find, 7, 0);
        log.ret(b, HistResult::Found(None));
        log.ret(a, HistResult::Inserted(true));
        let recs = log.drain();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].invoke < recs[1].invoke);
        assert!(recs[1].ret < recs[0].ret, "b returned before a");
        assert!(recs[0].completed() && recs[1].completed());
        assert_eq!(recs[0].result, HistResult::Inserted(true));
        assert!(log.is_empty(), "drain empties the log");
    }

    #[test]
    fn pending_ops_stay_pending() {
        let log = HistoryLog::default();
        log.enable();
        let _t = log.invoke(HistKind::Delete, 3, 0);
        let recs = log.drain();
        assert_eq!(recs[0].ret, HistRecord::PENDING);
        assert!(!recs[0].completed());
    }
}
