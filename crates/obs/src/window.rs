//! Windowed delta snapshots: "ops/s and tail latency over the last N
//! seconds" from a live registry, without resetting anything.
//!
//! The registry's counters are monotone and its histograms never
//! forget, which is exactly right for a post-mortem [`crate::RunReport`]
//! and exactly wrong for a live dashboard: after ten minutes of uptime
//! a load spike is invisible in the cumulative p99. The fix is
//! *deltas*: a [`SnapshotRing`] keeps a small ring of timestamped raw
//! [`Sample`]s (counter values plus sparse histogram bucket captures),
//! and [`SnapshotRing::window`] subtracts the oldest in-range sample
//! from the newest — counters become interval counts (divide by the
//! span for rates), histogram buckets subtract into a
//! [`HistogramWindow`] whose p50/p99 describe only the interval.
//!
//! Global state is never reset, so windowed consumers coexist with
//! cumulative ones (`ceh stats`, the CI smokes) on the same registry.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::hist::{HistogramCapture, HistogramWindow};
use crate::registry::MetricsHandle;

/// One timestamped raw sample of a registry: counter values, gauge
/// levels, and sparse histogram bucket captures.
#[derive(Debug, Clone)]
pub struct Sample {
    /// When the sample was taken.
    pub at: Instant,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Raw histogram captures by name.
    pub hists: BTreeMap<String, HistogramCapture>,
}

impl Sample {
    /// Sample every instrument registered on `handle` right now.
    pub fn collect(handle: &MetricsHandle) -> Sample {
        let snap = handle.snapshot();
        Sample {
            at: Instant::now(),
            counters: snap.counters,
            gauges: snap.gauges,
            hists: handle.capture_hists(),
        }
    }
}

/// A fixed-capacity ring of recent [`Sample`]s. Push one per tick
/// ([`SnapshotRing::sample`], typically ~1 s from a background thread);
/// ask for the last-N-seconds delta with [`SnapshotRing::window`].
#[derive(Debug)]
pub struct SnapshotRing {
    capacity: usize,
    inner: Mutex<VecDeque<Sample>>,
}

impl SnapshotRing {
    /// A ring keeping the newest `capacity` samples (at least 2 — a
    /// window needs two endpoints).
    pub fn new(capacity: usize) -> SnapshotRing {
        let capacity = capacity.max(2);
        SnapshotRing {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Take a fresh sample of `handle` and push it (evicting the
    /// oldest when full).
    pub fn sample(&self, handle: &MetricsHandle) {
        self.push(Sample::collect(handle));
    }

    /// Push an externally built sample (tests, replay).
    pub fn push(&self, sample: Sample) {
        let mut ring = self.inner.lock().expect("snapshot ring");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
    }

    /// Samples currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("snapshot ring").len()
    }

    /// Nothing buffered yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The delta between the newest sample and the oldest sample no
    /// older than `max_age` before it. `None` until two samples exist
    /// (there is no interval to describe).
    pub fn window(&self, max_age: Duration) -> Option<WindowDelta> {
        let ring = self.inner.lock().expect("snapshot ring");
        let newest = ring.back()?;
        let base = ring
            .iter()
            .find(|s| newest.at.saturating_duration_since(s.at) <= max_age)?;
        if std::ptr::eq(base, newest) {
            // Only one in-range sample: zero-length window, nothing to
            // subtract against.
            return None;
        }
        Some(WindowDelta::between(base, newest))
    }
}

/// The difference between two [`Sample`]s of one registry: counter
/// deltas, latest gauge levels, and per-window histogram stats.
#[derive(Debug, Clone)]
pub struct WindowDelta {
    /// The interval the delta covers.
    pub span: Duration,
    /// Counter deltas by name (events inside the window).
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels from the newest sample (levels don't subtract).
    pub gauges: BTreeMap<String, i64>,
    /// Per-window histogram distributions by name.
    pub hists: BTreeMap<String, HistogramWindow>,
}

impl WindowDelta {
    /// Subtract `base` from `newest` (two samples of the same
    /// registry, `base` taken first).
    pub fn between(base: &Sample, newest: &Sample) -> WindowDelta {
        let counters = newest
            .counters
            .iter()
            .map(|(k, v)| {
                let old = base.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(old))
            })
            .collect();
        let empty = HistogramCapture::default();
        let hists = newest
            .hists
            .iter()
            .map(|(k, c)| {
                let old = base.hists.get(k).unwrap_or(&empty);
                (k.clone(), c.since(old))
            })
            .collect();
        WindowDelta {
            span: newest.at.saturating_duration_since(base.at),
            counters,
            gauges: newest.gauges.clone(),
            hists,
        }
    }

    /// A counter's delta inside the window (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level at the newest sample (0 if never registered).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's per-window distribution (`None` if never
    /// registered).
    pub fn hist(&self, name: &str) -> Option<&HistogramWindow> {
        self.hists.get(name)
    }

    /// A counter's rate over the window, per second (0.0 for a
    /// zero-length window — never NaN).
    pub fn rate(&self, name: &str) -> f64 {
        let secs = self.span.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.counter(name) as f64 / secs
    }

    /// Sum of deltas of every counter whose name starts with `prefix`.
    pub fn prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_needs_two_samples() {
        let h = MetricsHandle::new();
        let ring = SnapshotRing::new(8);
        assert!(ring.window(Duration::from_secs(60)).is_none(), "empty");
        ring.sample(&h);
        assert!(
            ring.window(Duration::from_secs(60)).is_none(),
            "one sample is not an interval"
        );
        ring.sample(&h);
        assert!(ring.window(Duration::from_secs(60)).is_some());
    }

    #[test]
    fn counters_become_interval_counts_and_rates() {
        let h = MetricsHandle::new();
        let ring = SnapshotRing::new(8);
        h.counter("dist.requests").add(100);
        ring.sample(&h);
        h.counter("dist.requests").add(40);
        h.gauge("dist.inflight").set(7);
        std::thread::sleep(Duration::from_millis(20));
        ring.sample(&h);
        let w = ring.window(Duration::from_secs(60)).expect("two samples");
        assert_eq!(w.counter("dist.requests"), 40, "delta, not cumulative");
        assert_eq!(w.gauge("dist.inflight"), 7, "gauges are latest levels");
        assert!(w.span >= Duration::from_millis(20));
        assert!(w.rate("dist.requests") > 0.0);
        assert_eq!(w.rate("dist.never"), 0.0);
    }

    #[test]
    fn hist_windows_describe_only_the_interval() {
        let h = MetricsHandle::new();
        let ring = SnapshotRing::new(8);
        let lat = h.histogram("dist.request_ns");
        for _ in 0..1_000 {
            lat.record(100);
        }
        ring.sample(&h);
        for _ in 0..100 {
            lat.record(1_000_000);
        }
        ring.sample(&h);
        let w = ring.window(Duration::from_secs(60)).expect("window");
        let hw = w.hist("dist.request_ns").expect("captured");
        assert_eq!(hw.count(), 100);
        assert!(
            hw.quantile(0.5) >= 900_000,
            "window p50 {} sees only the slow interval",
            hw.quantile(0.5)
        );
        // Cumulative view still dominated by the fast samples.
        assert!(lat.quantile(0.5) <= 200);
    }

    #[test]
    fn ring_is_bounded_and_max_age_picks_the_base() {
        let h = MetricsHandle::new();
        let ring = SnapshotRing::new(4);
        let t0 = Instant::now();
        for i in 0..10u64 {
            h.counter("c").add(1);
            let mut s = Sample::collect(&h);
            // Space the samples a synthetic second apart.
            s.at = t0 + Duration::from_secs(i);
            ring.push(s);
        }
        assert_eq!(ring.len(), 4, "ring keeps the newest capacity samples");
        // All 4 retained samples (i=6..=9) are within 60s → base is the
        // oldest retained (i=6, counter 7); newest is i=9 (counter 10).
        let w = ring.window(Duration::from_secs(60)).expect("window");
        assert_eq!(w.counter("c"), 3);
        // A 2s window only reaches back to i=7 (counter 8).
        let w = ring.window(Duration::from_secs(2)).expect("window");
        assert_eq!(w.counter("c"), 2);
    }

    #[test]
    fn idle_window_is_all_zero() {
        let h = MetricsHandle::new();
        h.counter("c").add(5);
        h.histogram("lat").record(123);
        let ring = SnapshotRing::new(4);
        ring.sample(&h);
        ring.sample(&h);
        let w = ring.window(Duration::from_secs(60)).expect("window");
        assert_eq!(w.counter("c"), 0);
        let hw = w.hist("lat").expect("captured");
        assert!(hw.is_empty());
        assert_eq!(hw.quantile(0.99), 0, "idle window quantiles are 0");
    }
}
