//! Trace reassembly and export: per-trace span trees, an indented
//! text timeline, Chrome trace-format JSON, and a lock-contention
//! profile.
//!
//! Input is the flat event stream a [`crate::Tracer`] buffered
//! (typically drained through `Cluster::trace_report()` in `ceh-dist`,
//! which merges every site's probes because all sites share one
//! registry). [`TraceReport::from_events`] groups events by `trace`,
//! matches `Begin`/`End` pairs back into spans, and hangs instants off
//! the span they were recorded under. The result can be rendered three
//! ways:
//!
//! * [`TraceReport::to_timeline`] — an indented, human-readable
//!   timeline per trace (what `ceh trace` prints);
//! * [`TraceReport::to_chrome_json`] — Chrome trace-format JSON,
//!   loadable in `chrome://tracing` or Perfetto (`pid` = trace id,
//!   `tid` = span id), validated by `schemas/trace.schema.json`;
//! * [`TraceReport::contention_table`] — lock targets ranked by total
//!   wait, attributed to the operation kind the lock mode implies
//!   (ρ → find, α → insert, ξ → delete/merge).

use std::collections::{BTreeMap, HashMap};

use crate::json::{self, Json};
use crate::trace::{EventKind, SpanId, TraceEvent};

/// One reconstructed span: a `Begin`/`End` pair plus its instants.
#[derive(Debug, Clone)]
pub struct Span {
    /// The span's id.
    pub id: SpanId,
    /// The enclosing span ([`SpanId::NONE`] for trace roots).
    pub parent: SpanId,
    /// Owning layer, from the `Begin` event.
    pub layer: &'static str,
    /// Span name, from the `Begin` event.
    pub event: &'static str,
    /// `Begin` detail payload.
    pub a: u64,
    /// Second `Begin` detail payload.
    pub b: u64,
    /// When the span opened (tracer-epoch nanoseconds).
    pub start_ns: u64,
    /// When the span closed; `None` if the `End` never arrived (the
    /// operation was cut off, or the `End` was overwritten in the ring).
    pub end_ns: Option<u64>,
    /// `End` detail payload (0 until the span closes).
    pub end_a: u64,
    /// Second `End` detail payload.
    pub end_b: u64,
    /// Point-in-time events recorded under this span, in ring order.
    pub instants: Vec<TraceEvent>,
}

impl Span {
    /// Span duration, if it closed.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }
}

/// Every span and loose event sharing one `trace_id`.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id (the root span's id; 0 groups untraced events).
    pub trace_id: u64,
    /// All spans of the trace, ordered by start time.
    pub spans: Vec<Span>,
    /// Instants whose span had no `Begin` in the buffer (e.g. the ring
    /// overwrote it, or a legacy `record` probe outside any span).
    pub loose: Vec<TraceEvent>,
}

impl TraceTree {
    /// Spans with no parent in this trace (normally exactly one: the
    /// originating client request).
    pub fn root_spans(&self) -> Vec<&Span> {
        let known: HashMap<SpanId, ()> = self.spans.iter().map(|s| (s.id, ())).collect();
        self.spans
            .iter()
            .filter(|s| s.parent == SpanId::NONE || !known.contains_key(&s.parent))
            .collect()
    }

    /// Look up a span by id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Does any span or instant in this trace match `layer`/`event`?
    pub fn has_event(&self, layer: &str, event: &str) -> bool {
        self.spans
            .iter()
            .any(|s| s.layer == layer && s.event == event)
            || self
                .spans
                .iter()
                .flat_map(|s| s.instants.iter())
                .chain(self.loose.iter())
                .any(|e| e.layer == layer && e.event == event)
    }
}

/// One row of the lock-contention profile: a lock target × mode,
/// ranked by total wait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionEntry {
    /// Encoded lock target (`u64::MAX` = the directory, else a page).
    pub target: u64,
    /// Lock mode waited in ("rho", "alpha", "xi").
    pub mode: &'static str,
    /// The operation kind the mode implies ("find", "insert",
    /// "delete/merge") — the paper's ρ/α/ξ discipline ties each mode
    /// to one mutation class.
    pub op_kind: &'static str,
    /// Number of waits observed.
    pub waits: u64,
    /// Total nanoseconds spent waiting.
    pub total_ns: u64,
    /// Longest single wait in nanoseconds.
    pub max_ns: u64,
}

/// Human label for an encoded lock target.
pub fn lock_target_label(target: u64) -> String {
    if target == u64::MAX {
        "directory".to_string()
    } else {
        format!("page:{target}")
    }
}

/// Reassembled traces, ready for rendering or assertions.
#[derive(Debug, Clone)]
pub struct TraceReport {
    traces: Vec<TraceTree>,
    /// Events overwritten in the ring before the drain; nonzero means
    /// the trees below may be missing their oldest events.
    pub dropped: u64,
    /// Total events the report was built from.
    pub total_events: usize,
}

impl TraceReport {
    /// Reassemble trees from a drained event stream. `dropped` is the
    /// tracer's overwrite count at drain time; it is carried into the
    /// report (and its renderings) so truncation stays visible.
    pub fn from_events(events: Vec<TraceEvent>, dropped: u64) -> TraceReport {
        let total_events = events.len();
        // trace id -> (span id -> span), insertion-ordered loose events.
        let mut spans: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
        let mut loose: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
        let mut index: HashMap<(u64, SpanId), usize> = HashMap::new();
        for ev in events {
            match ev.kind {
                EventKind::Begin => {
                    let list = spans.entry(ev.trace).or_default();
                    index.insert((ev.trace, ev.span), list.len());
                    list.push(Span {
                        id: ev.span,
                        parent: ev.parent,
                        layer: ev.layer,
                        event: ev.event,
                        a: ev.a,
                        b: ev.b,
                        start_ns: ev.at_ns,
                        end_ns: None,
                        end_a: 0,
                        end_b: 0,
                        instants: Vec::new(),
                    });
                }
                EventKind::End => {
                    if let Some(&i) = index.get(&(ev.trace, ev.span)) {
                        let s = &mut spans.get_mut(&ev.trace).expect("indexed trace")[i];
                        s.end_ns = Some(ev.at_ns);
                        s.end_a = ev.a;
                        s.end_b = ev.b;
                    } else {
                        loose.entry(ev.trace).or_default().push(ev);
                    }
                }
                EventKind::Instant => {
                    if let Some(&i) = index.get(&(ev.trace, ev.span)) {
                        spans.get_mut(&ev.trace).expect("indexed trace")[i]
                            .instants
                            .push(ev);
                    } else {
                        loose.entry(ev.trace).or_default().push(ev);
                    }
                }
            }
        }
        let ids: Vec<u64> = spans.keys().chain(loose.keys()).copied().collect();
        let mut traces = Vec::new();
        for id in ids {
            if traces.iter().any(|t: &TraceTree| t.trace_id == id) {
                continue;
            }
            let mut tree = TraceTree {
                trace_id: id,
                spans: spans.remove(&id).unwrap_or_default(),
                loose: loose.remove(&id).unwrap_or_default(),
            };
            tree.spans.sort_by_key(|s| (s.start_ns, s.id));
            traces.push(tree);
        }
        TraceReport {
            traces,
            dropped,
            total_events,
        }
    }

    /// The reassembled traces, ordered by trace id (trace 0, when
    /// present, groups untraced/legacy events).
    pub fn traces(&self) -> &[TraceTree] {
        &self.traces
    }

    /// Look up one trace by id.
    pub fn trace(&self, id: u64) -> Option<&TraceTree> {
        self.traces.iter().find(|t| t.trace_id == id)
    }

    /// An indented per-trace timeline (what `ceh trace` prints).
    /// Times are microseconds since the tracer epoch.
    pub fn to_timeline(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# trace report: {} events, {} traces, {} overwritten in ring\n",
            self.total_events,
            self.traces.iter().filter(|t| t.trace_id != 0).count(),
            self.dropped,
        ));
        if self.dropped > 0 {
            out.push_str("# WARNING: ring overflow — oldest events were overwritten; trees may be incomplete\n");
        }
        for tree in &self.traces {
            if tree.trace_id == 0 {
                out.push_str(&format!(
                    "\nuntraced events: {} spans, {} loose\n",
                    tree.spans.len(),
                    tree.loose.len()
                ));
                continue;
            }
            out.push_str(&format!(
                "\ntrace {} — {} spans\n",
                tree.trace_id,
                tree.spans.len()
            ));
            let mut children: HashMap<SpanId, Vec<usize>> = HashMap::new();
            let known: HashMap<SpanId, ()> = tree.spans.iter().map(|s| (s.id, ())).collect();
            let mut roots = Vec::new();
            for (i, s) in tree.spans.iter().enumerate() {
                if s.parent != SpanId::NONE && known.contains_key(&s.parent) {
                    children.entry(s.parent).or_default().push(i);
                } else {
                    roots.push(i);
                }
            }
            for r in roots {
                Self::render_span(&mut out, tree, &children, r, 1);
            }
            for ev in &tree.loose {
                out.push_str(&format!(
                    "  ~ [{:>10.1}us] {}.{} (a={}, b={})\n",
                    ev.at_ns as f64 / 1e3,
                    ev.layer,
                    ev.event,
                    ev.a,
                    ev.b
                ));
            }
        }
        out
    }

    fn render_span(
        out: &mut String,
        tree: &TraceTree,
        children: &HashMap<SpanId, Vec<usize>>,
        i: usize,
        depth: usize,
    ) {
        let s = &tree.spans[i];
        let pad = "  ".repeat(depth);
        match s.duration_ns() {
            Some(d) => out.push_str(&format!(
                "{pad}[{:>10.1}us +{:>8.1}us] {}.{} (a={}, b={})\n",
                s.start_ns as f64 / 1e3,
                d as f64 / 1e3,
                s.layer,
                s.event,
                s.a,
                s.b
            )),
            None => out.push_str(&format!(
                "{pad}[{:>10.1}us   unclosed ] {}.{} (a={}, b={})\n",
                s.start_ns as f64 / 1e3,
                s.layer,
                s.event,
                s.a,
                s.b
            )),
        }
        for ev in &s.instants {
            out.push_str(&format!(
                "{pad}  · [{:>10.1}us] {}.{} (a={}, b={})\n",
                ev.at_ns as f64 / 1e3,
                ev.layer,
                ev.event,
                ev.a,
                ev.b
            ));
        }
        if let Some(kids) = children.get(&s.id) {
            for &k in kids {
                Self::render_span(out, tree, children, k, depth + 1);
            }
        }
    }

    /// Chrome trace-format JSON (`chrome://tracing` / Perfetto).
    ///
    /// Complete spans become `ph:"X"` events with `dur`; unclosed spans
    /// become `ph:"B"`; instants become `ph:"i"`. `pid` is the trace
    /// id, `tid` the span id, `ts`/`dur` are microseconds. A
    /// `trace_report` metadata event carries the drop count.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<Json> = Vec::new();
        let mut meta = BTreeMap::new();
        meta.insert("name".to_string(), Json::Str("trace_report".to_string()));
        meta.insert("cat".to_string(), Json::Str("meta".to_string()));
        meta.insert("ph".to_string(), Json::Str("i".to_string()));
        meta.insert("ts".to_string(), Json::Num(0.0));
        meta.insert("pid".to_string(), Json::Num(0.0));
        meta.insert("tid".to_string(), Json::Num(0.0));
        let mut args = BTreeMap::new();
        args.insert("dropped".to_string(), Json::Num(self.dropped as f64));
        args.insert(
            "total_events".to_string(),
            Json::Num(self.total_events as f64),
        );
        meta.insert("args".to_string(), Json::Obj(args));
        events.push(Json::Obj(meta));
        for tree in &self.traces {
            for s in &tree.spans {
                let mut o = BTreeMap::new();
                o.insert(
                    "name".to_string(),
                    Json::Str(format!("{}.{}", s.layer, s.event)),
                );
                o.insert("cat".to_string(), Json::Str(s.layer.to_string()));
                o.insert("ts".to_string(), Json::Num(s.start_ns as f64 / 1e3));
                o.insert("pid".to_string(), Json::Num(tree.trace_id as f64));
                o.insert("tid".to_string(), Json::Num(s.id.0 as f64));
                let mut args = BTreeMap::new();
                args.insert("a".to_string(), Json::Num(s.a as f64));
                args.insert("b".to_string(), Json::Num(s.b as f64));
                args.insert("parent".to_string(), Json::Num(s.parent.0 as f64));
                match s.duration_ns() {
                    Some(d) => {
                        o.insert("ph".to_string(), Json::Str("X".to_string()));
                        o.insert("dur".to_string(), Json::Num(d as f64 / 1e3));
                        args.insert("end_a".to_string(), Json::Num(s.end_a as f64));
                        args.insert("end_b".to_string(), Json::Num(s.end_b as f64));
                    }
                    None => {
                        o.insert("ph".to_string(), Json::Str("B".to_string()));
                    }
                }
                o.insert("args".to_string(), Json::Obj(args));
                events.push(Json::Obj(o));
                for ev in &s.instants {
                    events.push(Self::instant_json(tree.trace_id, ev));
                }
            }
            for ev in &tree.loose {
                events.push(Self::instant_json(tree.trace_id, ev));
            }
        }
        let mut top = BTreeMap::new();
        top.insert("traceEvents".to_string(), Json::Arr(events));
        top.insert("displayTimeUnit".to_string(), Json::Str("ns".to_string()));
        let mut out = String::new();
        json::write(&mut out, &Json::Obj(top));
        out
    }

    fn instant_json(trace: u64, ev: &TraceEvent) -> Json {
        let mut o = BTreeMap::new();
        o.insert(
            "name".to_string(),
            Json::Str(format!("{}.{}", ev.layer, ev.event)),
        );
        o.insert("cat".to_string(), Json::Str(ev.layer.to_string()));
        o.insert("ph".to_string(), Json::Str("i".to_string()));
        o.insert("ts".to_string(), Json::Num(ev.at_ns as f64 / 1e3));
        o.insert("pid".to_string(), Json::Num(trace as f64));
        o.insert("tid".to_string(), Json::Num(ev.span.0 as f64));
        let mut args = BTreeMap::new();
        args.insert("a".to_string(), Json::Num(ev.a as f64));
        args.insert("b".to_string(), Json::Num(ev.b as f64));
        o.insert("args".to_string(), Json::Obj(args));
        Json::Obj(o)
    }

    /// Lock targets ranked by total wait (descending), split per mode.
    ///
    /// Built from the `locks.wait.*` span `End` events (`a` = encoded
    /// target, `b` = wait nanoseconds); the mode maps to the operation
    /// kind its discipline serves (ρ → find, α → insert, ξ →
    /// delete/merge).
    pub fn contention_profile(&self) -> Vec<ContentionEntry> {
        let mut by_key: BTreeMap<(u64, &'static str), ContentionEntry> = BTreeMap::new();
        let all_spans = self.traces.iter().flat_map(|t| t.spans.iter());
        for s in all_spans {
            if s.layer != "locks" || s.end_ns.is_none() {
                continue;
            }
            let (mode, op_kind) = match s.event {
                "wait.rho" => ("rho", "find"),
                "wait.alpha" => ("alpha", "insert"),
                "wait.xi" => ("xi", "delete/merge"),
                _ => continue,
            };
            let wait_ns = s.end_b;
            let e = by_key
                .entry((s.a, mode))
                .or_insert_with(|| ContentionEntry {
                    target: s.a,
                    mode,
                    op_kind,
                    waits: 0,
                    total_ns: 0,
                    max_ns: 0,
                });
            e.waits += 1;
            e.total_ns += wait_ns;
            e.max_ns = e.max_ns.max(wait_ns);
        }
        let mut v: Vec<ContentionEntry> = by_key.into_values().collect();
        v.sort_by(|x, y| y.total_ns.cmp(&x.total_ns).then(x.target.cmp(&y.target)));
        v
    }

    /// The contention profile as an aligned text table.
    pub fn contention_table(&self) -> String {
        let profile = self.contention_profile();
        let mut out = String::new();
        out.push_str("# lock contention (by total wait)\n");
        if profile.is_empty() {
            out.push_str("  (no lock waits recorded)\n");
            return out;
        }
        out.push_str(&format!(
            "  {:<14} {:<6} {:<12} {:>6} {:>12} {:>12}\n",
            "target", "mode", "op-kind", "waits", "total-us", "max-us"
        ));
        for e in profile {
            out.push_str(&format!(
                "  {:<14} {:<6} {:<12} {:>6} {:>12.1} {:>12.1}\n",
                lock_target_label(e.target),
                e.mode,
                e.op_kind,
                e.waits,
                e.total_ns as f64 / 1e3,
                e.max_ns as f64 / 1e3
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceCtx, Tracer};

    fn sample_tracer() -> Tracer {
        let t = Tracer::new();
        t.enable(256);
        t
    }

    #[test]
    fn reassembles_nested_spans_into_one_trace() {
        let t = sample_tracer();
        let root = t.begin(TraceCtx::NONE, "dist", "request", 11, 0);
        let child = t.begin(root, "core", "find", 3, 0);
        t.instant(child, "net", "find", 9, 0);
        t.end(child, "core", "find", 3, 1);
        t.end(root, "dist", "request", 11, 1);
        let r = TraceReport::from_events(t.drain(), t.dropped());
        assert_eq!(r.traces().len(), 1);
        let tree = &r.traces()[0];
        assert_eq!(tree.trace_id, root.trace_id);
        assert_eq!(tree.spans.len(), 2);
        assert_eq!(tree.root_spans().len(), 1);
        assert_eq!(tree.root_spans()[0].event, "request");
        let c = tree.span(child.parent_span).unwrap();
        assert_eq!(c.parent, root.parent_span);
        assert!(c.duration_ns().is_some());
        assert_eq!(c.instants.len(), 1);
        assert!(tree.has_event("net", "find"));
        let text = r.to_timeline();
        assert!(text.contains("dist.request"));
        assert!(text.contains("core.find"));
    }

    #[test]
    fn unclosed_spans_render_and_export() {
        let t = sample_tracer();
        let root = t.begin(TraceCtx::NONE, "dist", "request", 1, 0);
        let _child = t.begin(root, "core", "insert", 2, 0);
        // neither span ends: simulate a cut-off operation
        let r = TraceReport::from_events(t.drain(), t.dropped());
        assert!(r.to_timeline().contains("unclosed"));
        let chrome = r.to_chrome_json();
        let doc = json::parse(&chrome).expect("valid json");
        let events = doc.get("traceEvents").unwrap();
        if let Json::Arr(evs) = events {
            assert!(evs
                .iter()
                .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B")));
        } else {
            panic!("traceEvents must be an array");
        }
    }

    #[test]
    fn chrome_json_parses_and_carries_drop_count() {
        let t = sample_tracer();
        let root = t.begin(TraceCtx::NONE, "dist", "request", 1, 0);
        t.end(root, "dist", "request", 1, 0);
        let r = TraceReport::from_events(t.drain(), 7);
        let doc = json::parse(&r.to_chrome_json()).expect("valid json");
        let evs = match doc.get("traceEvents") {
            Some(Json::Arr(evs)) => evs,
            other => panic!("traceEvents missing: {other:?}"),
        };
        let meta = &evs[0];
        assert_eq!(
            meta.get("name").and_then(|n| n.as_str()),
            Some("trace_report")
        );
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("dropped"))
                .and_then(|d| d.as_u64()),
            Some(7)
        );
        assert!(evs
            .iter()
            .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")));
    }

    #[test]
    fn contention_profile_ranks_by_total_wait() {
        let t = sample_tracer();
        // Two waits on page 5 in alpha, one wait on the directory in rho.
        for wait_ns in [2_000u64, 3_000] {
            let w = t.begin(TraceCtx::NONE, "locks", "wait.alpha", 5, 1);
            t.end(w, "locks", "wait.alpha", 5, wait_ns);
        }
        let w = t.begin(TraceCtx::NONE, "locks", "wait.rho", u64::MAX, 0);
        t.end(w, "locks", "wait.rho", u64::MAX, 1_000);
        let r = TraceReport::from_events(t.drain(), 0);
        let profile = r.contention_profile();
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0].target, 5);
        assert_eq!(profile[0].mode, "alpha");
        assert_eq!(profile[0].op_kind, "insert");
        assert_eq!(profile[0].waits, 2);
        assert_eq!(profile[0].total_ns, 5_000);
        assert_eq!(profile[0].max_ns, 3_000);
        assert_eq!(profile[1].op_kind, "find");
        let table = r.contention_table();
        assert!(table.contains("page:5"));
        assert!(table.contains("directory"));
    }

    #[test]
    fn dropped_events_flag_the_report() {
        let t = Tracer::new();
        t.enable(2);
        for i in 0..5u64 {
            t.record(SpanId(i), "x", "e", i, 0);
        }
        let r = TraceReport::from_events(t.drain(), t.dropped());
        assert_eq!(r.dropped, 3);
        assert!(r.to_timeline().contains("WARNING"));
    }
}
