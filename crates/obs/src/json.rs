//! Minimal JSON support: a writer, a parser, and a schema-subset
//! validator.
//!
//! The workspace's offline `serde` stand-in provides marker traits
//! only — there is no `serde_json` — so report emission ([`write`],
//! [`escape`]) and CI validation ([`parse`], [`validate`]) are
//! hand-rolled here. The parser accepts the JSON this crate emits (and
//! standard JSON generally); the validator understands the subset of
//! JSON Schema used by `schemas/run_report.schema.json`: `type`,
//! `required`, `properties`, `additionalProperties`, `items`,
//! `minimum`, and `enum`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as f64; integers up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered by key).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup (`None` unless this is an object with the key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn escape(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a [`Json`] value compactly.
pub fn write(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{}", n);
            }
        }
        Json::Str(s) => escape(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write(out, item);
            }
            out.push(']');
        }
        Json::Obj(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape(out, k);
                out.push(':');
                write(out, val);
            }
            out.push('}');
        }
    }
}

/// Parse a JSON document. Returns an error message with a byte offset
/// on malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates are not emitted by this crate;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid utf-8")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {}", start))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Validate `doc` against `schema` (the JSON-Schema subset in the
/// module docs). Returns every violation as a `path: message` string;
/// empty means valid.
pub fn validate(doc: &Json, schema: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    validate_at(doc, schema, "$", &mut errors);
    errors
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::Num(n) if n.fract() == 0.0 => "integer",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn type_matches(v: &Json, want: &str) -> bool {
    match want {
        "number" => matches!(v, Json::Num(_)),
        "integer" => matches!(v, Json::Num(n) if n.fract() == 0.0),
        other => type_name(v) == other,
    }
}

fn validate_at(doc: &Json, schema: &Json, path: &str, errors: &mut Vec<String>) {
    let Some(schema_obj) = schema.as_obj() else {
        return; // `true`-like schema: everything validates
    };

    if let Some(want) = schema_obj.get("type").and_then(Json::as_str) {
        if !type_matches(doc, want) {
            errors.push(format!(
                "{}: expected {}, got {}",
                path,
                want,
                type_name(doc)
            ));
            return;
        }
    }

    if let Some(Json::Arr(allowed)) = schema_obj.get("enum") {
        if !allowed.contains(doc) {
            errors.push(format!("{}: value not in enum", path));
        }
    }

    if let Some(min) = schema_obj.get("minimum").and_then(Json::as_f64) {
        if let Some(n) = doc.as_f64() {
            if n < min {
                errors.push(format!("{}: {} below minimum {}", path, n, min));
            }
        }
    }

    if let Json::Obj(members) = doc {
        if let Some(Json::Arr(required)) = schema_obj.get("required") {
            for r in required {
                if let Some(name) = r.as_str() {
                    if !members.contains_key(name) {
                        errors.push(format!("{}: missing required member \"{}\"", path, name));
                    }
                }
            }
        }
        let props = schema_obj.get("properties").and_then(Json::as_obj);
        let additional = schema_obj.get("additionalProperties");
        for (k, v) in members {
            let child_path = format!("{}.{}", path, k);
            if let Some(prop_schema) = props.and_then(|p| p.get(k)) {
                validate_at(v, prop_schema, &child_path, errors);
            } else {
                match additional {
                    Some(Json::Bool(false)) => {
                        errors.push(format!("{}: unexpected member", child_path));
                    }
                    Some(s @ Json::Obj(_)) => validate_at(v, s, &child_path, errors),
                    _ => {}
                }
            }
        }
    }

    if let Json::Arr(items) = doc {
        if let Some(item_schema) = schema_obj.get("items") {
            for (i, item) in items.iter().enumerate() {
                validate_at(item, item_schema, &format!("{}[{}]", path, i), errors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Json)]) -> Json {
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn round_trips_values() {
        let v = obj(&[
            ("name", Json::Str("run \"x\"\n".into())),
            ("n", Json::Num(42.0)),
            ("f", Json::Num(1.5)),
            ("neg", Json::Num(-3.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::Num(1.0), Json::Str("two".into())]),
            ),
        ]);
        let mut s = String::new();
        write(&mut s, &v);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), obj(&[("b", Json::Null)])])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let mut s = String::new();
        escape(&mut s, "a\u{0001}b");
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(parse(&s).unwrap(), Json::Str("a\u{0001}b".into()));
    }

    #[test]
    fn validator_checks_types_required_and_extras() {
        let schema = parse(
            r#"{
              "type": "object",
              "required": ["name", "count"],
              "properties": {
                "name": {"type": "string"},
                "count": {"type": "integer", "minimum": 0},
                "hists": {
                  "type": "object",
                  "additionalProperties": {
                    "type": "object",
                    "required": ["count"],
                    "properties": {"count": {"type": "integer"}}
                  }
                }
              },
              "additionalProperties": false
            }"#,
        )
        .unwrap();

        let good = parse(r#"{"name":"x","count":3,"hists":{"h":{"count":1}}}"#).unwrap();
        assert!(validate(&good, &schema).is_empty());

        let missing = parse(r#"{"name":"x"}"#).unwrap();
        assert!(validate(&missing, &schema)
            .iter()
            .any(|e| e.contains("count")));

        let wrong_type = parse(r#"{"name":7,"count":3}"#).unwrap();
        assert!(validate(&wrong_type, &schema)
            .iter()
            .any(|e| e.contains("expected string")));

        let extra = parse(r#"{"name":"x","count":3,"zzz":1}"#).unwrap();
        assert!(validate(&extra, &schema)
            .iter()
            .any(|e| e.contains("unexpected member")));

        let negative = parse(r#"{"name":"x","count":-1}"#).unwrap();
        assert!(validate(&negative, &schema)
            .iter()
            .any(|e| e.contains("below minimum")));

        let bad_hist = parse(r#"{"name":"x","count":1,"hists":{"h":{}}}"#).unwrap();
        assert!(validate(&bad_hist, &schema)
            .iter()
            .any(|e| e.contains("missing required")));
    }
}
