//! # ceh-obs — the unified observability core
//!
//! Every layer of this workspace is evaluated quantitatively: the paper
//! argues by lock waits, messages, and I/Os per operation. Before this
//! crate each layer kept its own hand-rolled stats module; they could
//! not be correlated in one run. `ceh-obs` is the single measurement
//! plane they all report through:
//!
//! * [`Counter`] — a sharded, cache-line-padded atomic counter for hot
//!   paths (one relaxed `fetch_add` per event, no contention between
//!   recording threads);
//! * [`Gauge`] — a signed level (current value, not a rate);
//! * [`Histogram`] — *the* latency histogram: log2 buckets with 16
//!   linear sub-buckets per octave (≤ ~6% relative quantile error),
//!   lock-free recording, mergeable, with one percentile definition
//!   (nearest rank, reported as the bucket's lower bound clamped to the
//!   observed min/max) shared by every consumer;
//! * [`Tracer`] — a bounded ring buffer of [`TraceEvent`]s with
//!   begin/end spans and a propagable [`TraceCtx`], disabled by default
//!   (one relaxed atomic load per probe);
//! * [`HistoryLog`] — an operation-history log (invoke/return edges with
//!   observed outcomes, globally sequenced), disabled by default; the
//!   feed for `ceh-check`'s linearizability oracle;
//! * [`TraceReport`] — reassembles drained events into per-trace span
//!   trees and renders them as an indented timeline, Chrome
//!   trace-format JSON, or a lock-contention profile;
//! * [`MetricsHandle`] — a cheaply clonable handle to a shared
//!   [registry](MetricsHandle::snapshot) of named metrics. Layers
//!   resolve their named instruments once at construction and hold the
//!   `Arc`s, so steady-state recording never touches the registry;
//! * [`SnapshotRing`] / [`WindowDelta`] — windowed delta snapshots for
//!   live dashboards: interval rates from monotone counters and
//!   per-window p50/p99 from histogram bucket subtraction, without
//!   resetting global state;
//! * [`SlowOpLog`] — a bounded ring of operations whose latency crossed
//!   a configurable threshold, each stamped with its trace id;
//! * [`RunReport`] — one coherent snapshot of an entire run (all
//!   layers, one registry), rendered as JSON ([`RunReport::to_json`])
//!   or a pretty table ([`RunReport::to_table`]);
//! * [`json`] — a dependency-free JSON writer/parser plus the subset of
//!   JSON Schema the CI metrics smoke validates [`RunReport`]s against.
//!
//! ## Metric namespace
//!
//! Names are dot-separated, `layer.family[.detail]`:
//!
//! | prefix | owner | examples |
//! |---|---|---|
//! | `locks.` | `ceh-locks` | `locks.grants.rho`, `locks.wait_ns.xi` (hist) |
//! | `storage.` | `ceh-storage` | `storage.reads`, `storage.io_ns` (hist) |
//! | `net.` | `ceh-net` | `net.sent.find`, `net.delivery_ns` (hist) |
//! | `core.` | `ceh-core` | `core.splits`, `core.chain_hops` |
//! | `dist.` | `ceh-dist` | `dist.client.retries`, `dist.redrives` |
//!
//! One [`MetricsHandle`] threaded through the constructors of a file or
//! cluster makes all of these land in one registry; DESIGN.md §8 maps
//! the E1–E10 experiments onto these names.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod counter;
mod hist;
mod history;
pub mod json;
mod registry;
mod report;
mod slowlog;
mod trace;
mod trace_report;
mod window;

pub use counter::{Counter, Gauge};
pub use hist::{Histogram, HistogramCapture, HistogramSnapshot, HistogramWindow};
pub use history::{HistKind, HistRecord, HistResult, HistToken, HistoryLog};
pub use registry::{MetricsHandle, MetricsSnapshot};
pub use report::RunReport;
pub use slowlog::{SlowOp, SlowOpLog};
pub use trace::{CtxScope, EventKind, SpanId, TraceCtx, TraceEvent, Tracer};
pub use trace_report::{lock_target_label, ContentionEntry, Span, TraceReport, TraceTree};
pub use window::{Sample, SnapshotRing, WindowDelta};
