//! The `RunReport`: one run's metrics, renderable as JSON or a table.

use std::collections::BTreeMap;

use crate::json::{self, Json};
use crate::registry::{MetricsHandle, MetricsSnapshot};

/// Everything one run produced, gathered from a single
/// [`MetricsHandle`]: counters, gauges, and histogram summaries across
/// every layer wired to that handle, plus free-form metadata
/// (workload parameters, thread counts, …).
///
/// Render with [`RunReport::to_json`] for machines or
/// [`RunReport::to_table`] for humans.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Report name (typically the workload or experiment).
    pub name: String,
    /// Free-form run metadata (parameters, configuration).
    pub meta: BTreeMap<String, String>,
    /// The metrics snapshot.
    pub metrics: MetricsSnapshot,
    /// Trace events buffered in the tracer ring at collection time.
    pub trace_buffered: u64,
    /// Trace events overwritten by ring overflow — nonzero means any
    /// trace assembled from this run is missing its oldest events.
    pub trace_dropped: u64,
}

impl RunReport {
    /// Snapshot `handle` into a named report.
    ///
    /// Stamps the registry's uptime into the `obs.uptime_seconds`
    /// gauge and the build identity (crate version, plus the git hash
    /// when the build exported `CEH_BUILD_GIT_HASH`) into the
    /// metadata, so every report says *what* produced it and for how
    /// long it had been running.
    pub fn collect(name: &str, handle: &MetricsHandle) -> Self {
        handle
            .gauge("obs.uptime_seconds")
            .set(handle.uptime().as_secs() as i64);
        let mut meta = BTreeMap::new();
        meta.insert(
            "build.version".to_string(),
            env!("CARGO_PKG_VERSION").to_string(),
        );
        meta.insert(
            "build.git".to_string(),
            option_env!("CEH_BUILD_GIT_HASH")
                .unwrap_or("unknown")
                .to_string(),
        );
        RunReport {
            name: name.to_string(),
            meta,
            metrics: handle.snapshot(),
            trace_buffered: handle.tracer().len() as u64,
            trace_dropped: handle.tracer().dropped(),
        }
    }

    /// Attach one metadata entry (builder-style).
    pub fn with_meta(mut self, key: &str, value: impl ToString) -> Self {
        self.meta.insert(key.to_string(), value.to_string());
        self
    }

    fn to_json_value(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("name".to_string(), Json::Str(self.name.clone()));
        root.insert(
            "meta".to_string(),
            Json::Obj(
                self.meta
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        );
        root.insert(
            "counters".to_string(),
            Json::Obj(
                self.metrics
                    .counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Json::Obj(
                self.metrics
                    .gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        );
        root.insert(
            "hists".to_string(),
            Json::Obj(
                self.metrics
                    .hists
                    .iter()
                    .map(|(k, h)| {
                        let mut m = BTreeMap::new();
                        m.insert("count".into(), Json::Num(h.count as f64));
                        m.insert("min".into(), Json::Num(h.min as f64));
                        m.insert("max".into(), Json::Num(h.max as f64));
                        m.insert("sum".into(), Json::Num(h.sum as f64));
                        m.insert("mean".into(), Json::Num(h.mean));
                        m.insert("p50".into(), Json::Num(h.p50 as f64));
                        m.insert("p90".into(), Json::Num(h.p90 as f64));
                        m.insert("p99".into(), Json::Num(h.p99 as f64));
                        (k.clone(), Json::Obj(m))
                    })
                    .collect(),
            ),
        );
        let mut trace = BTreeMap::new();
        trace.insert(
            "buffered".to_string(),
            Json::Num(self.trace_buffered as f64),
        );
        trace.insert("dropped".to_string(), Json::Num(self.trace_dropped as f64));
        root.insert("trace".to_string(), Json::Obj(trace));
        Json::Obj(root)
    }

    /// Compact JSON, matching `schemas/run_report.schema.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        json::write(&mut out, &self.to_json_value());
        out
    }

    /// A human-readable table, metrics grouped by name prefix
    /// (`locks.`, `storage.`, `net.`, `core.`, `dist.`, …).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== run report: {} ===\n", self.name));
        for (k, v) in &self.meta {
            out.push_str(&format!("  {} = {}\n", k, v));
        }
        if self.trace_buffered > 0 || self.trace_dropped > 0 {
            out.push_str(&format!(
                "  tracer: {} events buffered, {} overwritten{}\n",
                self.trace_buffered,
                self.trace_dropped,
                if self.trace_dropped > 0 {
                    " (traces truncated!)"
                } else {
                    ""
                }
            ));
        }

        let mut groups: BTreeMap<&str, Vec<String>> = BTreeMap::new();
        let group_of = |name: &str| {
            let g = name.split('.').next().unwrap_or(name);
            // Borrow trick: group key must outlive the map, so match
            // against the known layer prefixes.
            match g {
                "locks" => "locks",
                "storage" => "storage",
                "net" => "net",
                "core" => "core",
                "dist" => "dist",
                _ => "other",
            }
        };
        for (name, v) in &self.metrics.counters {
            if *v == 0 {
                continue;
            }
            groups
                .entry(group_of(name))
                .or_default()
                .push(format!("  {:<40} {:>14}", name, v));
        }
        for (name, v) in &self.metrics.gauges {
            if *v == 0 {
                continue;
            }
            groups
                .entry(group_of(name))
                .or_default()
                .push(format!("  {:<40} {:>14}", name, v));
        }
        for (name, h) in &self.metrics.hists {
            if h.count == 0 {
                continue;
            }
            groups.entry(group_of(name)).or_default().push(format!(
                "  {:<40} count {:>10}  mean {:>10.1}  p50 {:>8}  p99 {:>8}  max {:>8}",
                name, h.count, h.mean, h.p50, h.p99, h.max
            ));
        }

        for layer in ["core", "locks", "storage", "net", "dist", "other"] {
            if let Some(lines) = groups.get(layer) {
                out.push_str(&format!("[{}]\n", layer));
                for line in lines {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        if groups.is_empty() {
            out.push_str("  (no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_handle() -> MetricsHandle {
        let h = MetricsHandle::new();
        h.counter("core.inserts").add(10);
        h.counter("locks.grants.rho").add(25);
        h.counter("net.sent.find").add(5);
        h.gauge("storage.live_pages").set(4);
        h.histogram("locks.wait_ns.rho").record(1000);
        h
    }

    #[test]
    fn collect_and_json_round_trip() {
        let report = RunReport::collect("smoke", &sample_handle()).with_meta("threads", 4);
        let doc = parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("smoke"));
        assert_eq!(
            doc.get("meta").unwrap().get("threads").unwrap().as_str(),
            Some("4")
        );
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("core.inserts")
                .unwrap()
                .as_u64(),
            Some(10)
        );
        let hist = doc.get("hists").unwrap().get("locks.wait_ns.rho").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn table_groups_by_layer_and_skips_zeroes() {
        let h = sample_handle();
        h.counter("core.never_happened"); // stays zero
        let table = RunReport::collect("t", &h).to_table();
        assert!(table.contains("[core]"));
        assert!(table.contains("[locks]"));
        assert!(table.contains("[net]"));
        assert!(table.contains("core.inserts"));
        assert!(!table.contains("never_happened"));
        let core_at = table.find("[core]").unwrap();
        let locks_at = table.find("[locks]").unwrap();
        assert!(core_at < locks_at, "layer order is fixed");
    }

    #[test]
    fn trace_buffered_and_dropped_surface_in_json_and_table() {
        let h = MetricsHandle::new();
        h.tracer().enable(2);
        for i in 0..5u64 {
            h.trace(crate::SpanId(i), "x", "e", i, 0);
        }
        let report = RunReport::collect("t", &h);
        assert_eq!(report.trace_buffered, 2);
        assert_eq!(report.trace_dropped, 3);
        let doc = parse(&report.to_json()).unwrap();
        let trace = doc.get("trace").unwrap();
        assert_eq!(trace.get("buffered").unwrap().as_u64(), Some(2));
        assert_eq!(trace.get("dropped").unwrap().as_u64(), Some(3));
        let table = report.to_table();
        assert!(table.contains("2 events buffered"));
        assert!(table.contains("traces truncated!"));
    }

    #[test]
    fn empty_report_renders() {
        let report = RunReport::collect("empty", &MetricsHandle::new());
        assert!(report.to_table().contains("no metrics recorded"));
        let doc = parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("counters").unwrap(), &Json::Obj(BTreeMap::new()));
    }

    #[test]
    fn collect_stamps_uptime_and_build_info() {
        let report = RunReport::collect("id", &MetricsHandle::new());
        assert_eq!(
            report.meta.get("build.version").map(String::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(report.meta.contains_key("build.git"));
        assert!(
            report.metrics.gauges.contains_key("obs.uptime_seconds"),
            "uptime gauge registered by collect()"
        );
        let doc = parse(&report.to_json()).unwrap();
        let secs = doc
            .get("gauges")
            .unwrap()
            .get("obs.uptime_seconds")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(secs < 3600, "a fresh registry has tiny uptime");
    }
}
