//! The one log2-bucketed latency histogram.
//!
// ceh-lint: allow-file(relaxed-ordering) — monotonic statistics cells; snapshots are advisory and exact only at quiescence, no data is published through them
//!
//! Recording is lock-free (relaxed atomics), O(1), and allocation-free
//! after construction; memory is fixed no matter how many samples are
//! recorded. Buckets are logarithmic with [`SUB_BUCKETS`] linear
//! sub-buckets per octave, giving ≤ ~6% relative quantile error across
//! the full `u64` range.
//!
//! ## The percentile definition
//!
//! Divergent hand-rolled histograms used to disagree on what a
//! percentile *is* (nearest rank vs. bucket upper bound). This crate
//! fixes one definition for the whole workspace:
//!
//! > `quantile(q)` is the **nearest-rank** sample — rank
//! > `round(q · (n-1))` among `n` sorted samples — reported as its
//! > bucket's **lower bound**, clamped into `[min, max]` of the
//! > observed samples.
//!
//! Lower bound (not upper) keeps quantiles conservative: a reported
//! p99 is never larger than the true p99 by more than the bucket
//! width, and exact for values below [`SUB_BUCKETS`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave. 16 → worst-case relative
/// error of 1/16 ≈ 6.25% within a bucket.
const SUB_BUCKETS: usize = 16;
const OCTAVES: usize = 64;
const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// A fixed-size concurrent histogram of `u64` samples (typically
/// nanoseconds). Recording takes `&self`; share it behind an `Arc` and
/// record from any thread.
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    total: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
    /// Wrapping sum of samples. For nanosecond samples this overflows
    /// only past ~1.8e19 ns-samples — far beyond any run here.
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let h = Histogram::new();
        h.merge(self);
        h
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            counts: counts.try_into().expect("fixed size"),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            sum: AtomicU64::new(0),
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as usize;
        // Position within the octave, scaled to SUB_BUCKETS.
        let sub = ((value >> (octave - 4)) as usize) & (SUB_BUCKETS - 1);
        octave * SUB_BUCKETS + sub
    }

    /// Lower bound of a bucket (the value a quantile reports).
    fn bucket_floor(idx: usize) -> u64 {
        let octave = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if octave < 4 {
            // Values below SUB_BUCKETS are exact.
            return (octave * SUB_BUCKETS) as u64 + sub;
        }
        (1u64 << octave) + (sub << (octave - 4))
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// No samples yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.max.load(Ordering::Relaxed)
        }
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Sum of all samples (wrapping; see the struct docs).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact mean.
    pub fn mean(&self) -> f64 {
        let n = self.len();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile (`0.0..=1.0`) under the crate's single
    /// percentile definition (see the module docs): nearest rank,
    /// bucket lower bound, clamped to `[min, max]`. Within one
    /// sub-bucket (~6%) of the true value.
    ///
    /// Concurrent recording during a read yields a sample of *some*
    /// recent state — individual bucket counts are exact, cross-bucket
    /// skew is bounded by in-flight recordings.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.len();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64).min(total - 1);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen > rank {
                return Self::bucket_floor(idx).min(self.max()).max(self.min());
            }
        }
        self.max()
    }

    /// Merge another histogram into this one (per-thread collection).
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.counts.iter().zip(other.counts.iter()) {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                a.fetch_add(n, Ordering::Relaxed);
            }
        }
        let n = other.total.load(Ordering::Relaxed);
        if n > 0 {
            self.total.fetch_add(n, Ordering::Relaxed);
            self.sum
                .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max
                .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Zero every bucket (between benchmark phases).
    pub fn reset(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
    }

    /// A raw point-in-time capture of the bucket counts, for windowed
    /// (delta) statistics: two captures of the same histogram subtract
    /// bucket-wise ([`HistogramCapture::since`]) into the distribution
    /// of just the samples recorded between them. Sparse — only
    /// nonzero buckets are stored — so a capture of a mostly-idle
    /// histogram is a few dozen bytes, cheap enough to take every
    /// second.
    ///
    /// Concurrent recording during a capture yields a sample of *some*
    /// recent state (same contract as [`Histogram::quantile`]); the
    /// delta math saturates, so skew can never underflow.
    pub fn capture(&self) -> HistogramCapture {
        let mut counts = Vec::new();
        for (idx, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                counts.push((idx as u16, n));
            }
        }
        HistogramCapture {
            counts,
            count: self.len(),
            sum: self.sum(),
        }
    }

    /// A plain-data summary for reports.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.len(),
            min: self.min(),
            max: self.max(),
            sum: self.sum(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("samples", &self.len())
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact minimum (0 when empty).
    pub min: u64,
    /// Exact maximum (0 when empty).
    pub max: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact mean (0.0 when empty).
    pub mean: f64,
    /// Median under the crate's percentile definition.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A raw, sparse copy of a [`Histogram`]'s buckets at one instant.
/// Produced by [`Histogram::capture`]; consumed by
/// [`HistogramCapture::since`] to form a [`HistogramWindow`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramCapture {
    /// `(bucket index, count)` for every nonzero bucket, ascending.
    counts: Vec<(u16, u64)>,
    count: u64,
    sum: u64,
}

impl HistogramCapture {
    /// Total samples at capture time.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples at capture time (wrapping, like the histogram).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The distribution of samples recorded between `earlier` and
    /// `self` (two captures of the *same* histogram, `earlier` taken
    /// first): bucket-wise saturating subtraction. Identical captures
    /// — an idle window — yield an empty window whose every quantile
    /// is 0.
    pub fn since(&self, earlier: &HistogramCapture) -> HistogramWindow {
        let mut counts = Vec::new();
        let mut count = 0u64;
        let mut j = 0usize;
        for &(idx, n) in &self.counts {
            while j < earlier.counts.len() && earlier.counts[j].0 < idx {
                j += 1;
            }
            let old = match earlier.counts.get(j) {
                Some(&(eidx, en)) if eidx == idx => en,
                _ => 0,
            };
            let d = n.saturating_sub(old);
            if d > 0 {
                counts.push((idx, d));
                count += d;
            }
        }
        HistogramWindow {
            counts,
            count,
            sum: self.sum.wrapping_sub(earlier.sum),
        }
    }
}

/// The distribution of samples recorded inside one interval, from
/// bucket subtraction of two [`HistogramCapture`]s.
///
/// Quantiles follow the crate's single percentile definition (nearest
/// rank, reported as the bucket's lower bound) with one documented
/// deviation: there is no clamp into `[min, max]`, because exact
/// per-window extremes are not recoverable from monotone bucket
/// counts. An empty window reports 0 for every statistic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramWindow {
    counts: Vec<(u16, u64)>,
    count: u64,
    sum: u64,
}

impl HistogramWindow {
    /// Samples recorded inside the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// No samples inside the window?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of the window's samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the window's samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile over the window's buckets, reported as
    /// the bucket's lower bound; 0 when the window is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank =
            ((q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64).min(self.count - 1);
        let mut seen = 0u64;
        for &(idx, n) in &self.counts {
            seen += n;
            if seen > rank {
                return Histogram::bucket_floor(idx as usize);
            }
        }
        self.counts
            .last()
            .map(|&(idx, _)| Histogram::bucket_floor(idx as usize))
            .unwrap_or(0)
    }

    /// A plain-data summary of the window, in the same shape reports
    /// use for whole histograms. `min`/`max` are the p0/p100 bucket
    /// floors (per-window exact extremes are not recoverable).
    pub fn summary(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            min: self.quantile(0.0),
            max: self.quantile(1.0),
            sum: self.sum,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.len(), 16);
    }

    #[test]
    fn quantiles_within_bucket_error() {
        let h = Histogram::new();
        // Uniform 1..=100_000.
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 50_000.0), (0.9, 90_000.0), (0.99, 99_000.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.07, "q{q}: got {got}, want ~{expect} (err {err:.3})");
        }
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn merge_combines() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [40u64, 50] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.max(), 50);
        assert_eq!(a.min(), 10);
        let c = a.clone();
        assert_eq!(c.len(), 5);
        assert_eq!(c.quantile(0.5), a.quantile(0.5));
    }

    #[test]
    fn huge_values_do_not_panic() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(1.0) > u64::MAX / 2);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(123);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn snapshot_summarizes() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.sum, 15);
        assert_eq!(s.p50, 3);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn concurrent_recording_is_exact_at_quiescence() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for x in handles {
            x.join().unwrap();
        }
        assert_eq!(h.len(), 40_000);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 39_999);
    }

    #[test]
    fn quantile_on_empty_histogram_and_empty_window_is_zero() {
        // The two edge cases windowed math hits constantly: a
        // histogram nobody recorded into, and the delta of identical
        // captures (an idle interval). Both must report 0 everywhere —
        // no panic, no NaN.
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        let empty = h.capture().since(&h.capture());
        assert!(empty.is_empty());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0);
        }
        assert_eq!(empty.mean(), 0.0);
        assert!(empty.mean().is_finite(), "no NaN from an empty window");
        assert_eq!(empty.summary(), HistogramSnapshot::default());

        h.record(123);
        h.record(456);
        let c = h.capture();
        let idle = c.since(&c);
        assert!(idle.is_empty(), "identical captures mean an idle window");
        assert_eq!(idle.quantile(0.99), 0);
        assert_eq!(idle.sum(), 0);
    }

    #[test]
    fn window_delta_isolates_the_interval() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let before = h.capture();
        for v in 100_000..=200_000u64 {
            h.record(v);
        }
        let w = h.capture().since(&before);
        assert_eq!(w.count(), 100_001);
        assert_eq!(
            w.sum(),
            (100_000..=200_000u64).sum::<u64>(),
            "window sum is the interval's sum"
        );
        // The window sees only the new samples, not the old 1..=1000.
        let p50 = w.quantile(0.5) as f64;
        assert!(
            (p50 - 150_000.0).abs() / 150_000.0 < 0.07,
            "window p50 {p50} should be ~150000"
        );
        assert!(w.quantile(0.0) >= Histogram::bucket_floor(Histogram::bucket_of(100_000)));
        // The full histogram still reports the global distribution
        // (rank ~101 of 101_001 lands in the old 1..=1000 samples).
        assert!(h.quantile(0.001) < 50_000);
    }

    #[test]
    fn all_one_bucket_window_reports_the_bucket_floor() {
        // Every sample in one bucket: all quantiles agree on the
        // bucket's floor, and nothing divides by zero on the way.
        let h = Histogram::new();
        let before = h.capture();
        for _ in 0..50 {
            h.record(1_000);
        }
        let w = h.capture().since(&before);
        assert_eq!(w.count(), 50);
        let floor = Histogram::bucket_floor(Histogram::bucket_of(1_000));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(w.quantile(q), floor, "q{q}");
        }
        assert!((w.mean() - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn capture_is_sparse() {
        let h = Histogram::new();
        h.record(5);
        h.record(5);
        h.record(1 << 30);
        let c = h.capture();
        assert_eq!(c.count(), 3);
        // Two nonzero buckets, not 1024 slots.
        assert_eq!(
            c.since(&HistogramCapture::default()).count(),
            3,
            "delta against the default (empty) capture is the whole histogram"
        );
    }

    #[test]
    fn bucket_floor_is_monotone_and_consistent() {
        // Monotone over the buckets values actually map to (indices
        // 16..64 are unreachable: values < 16 go to exact buckets 0..16,
        // values ≥ 16 to octave ≥ 4).
        let mut last_bucket = 0usize;
        let mut last_floor = 0u64;
        let mut v = 0u64;
        while v < (1 << 48) {
            let idx = Histogram::bucket_of(v);
            if idx != last_bucket {
                assert!(idx > last_bucket, "bucket index regressed at value {v}");
                let floor = Histogram::bucket_floor(idx);
                assert!(
                    floor >= last_floor,
                    "value {v}: floor {floor} < previous {last_floor}"
                );
                last_bucket = idx;
                last_floor = floor;
            }
            v = (v + 1).max(v + v / 7); // dense at first, then exponential
        }
        // Every value's bucket floor is ≤ the value, within one bucket.
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, 1 << 40] {
            let floor = Histogram::bucket_floor(Histogram::bucket_of(v));
            assert!(floor <= v, "value {v}: floor {floor}");
            assert!((v - floor) as f64 <= (v as f64 / SUB_BUCKETS as f64) + 1.0);
        }
    }
}
