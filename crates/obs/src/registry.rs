//! The metrics registry and its shared handle.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::counter::{Counter, Gauge};
use crate::hist::{Histogram, HistogramCapture, HistogramSnapshot};
use crate::history::HistoryLog;
use crate::slowlog::SlowOpLog;
use crate::trace::{SpanId, TraceCtx, Tracer};

struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    hists: RwLock<BTreeMap<String, Arc<Histogram>>>,
    tracer: Tracer,
    history: HistoryLog,
    slow: SlowOpLog,
    epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            counters: RwLock::default(),
            gauges: RwLock::default(),
            hists: RwLock::default(),
            tracer: Tracer::default(),
            history: HistoryLog::default(),
            slow: SlowOpLog::default(),
            epoch: Instant::now(),
        }
    }
}

/// A cheaply clonable handle to one shared metrics registry.
///
/// Thread one handle through every constructor of a file or cluster
/// and all layers' instruments land in one registry; a single
/// [`MetricsHandle::snapshot`] (or [`crate::RunReport::collect`]) then
/// yields lock, storage, network, core, and distributed metrics *from
/// the same run*.
///
/// Layers resolve their named instruments once at construction
/// ([`MetricsHandle::counter`] get-or-creates) and hold the returned
/// `Arc`s, so steady-state recording never takes the registry lock.
///
/// `MetricsHandle::default()` is a fresh private registry — the no-op
/// wiring: a component constructed without an explicit handle still
/// records (the cost is identical), its numbers just aren't correlated
/// with anyone else's.
///
/// ```
/// use ceh_obs::MetricsHandle;
///
/// let h = MetricsHandle::new();
/// let c = h.counter("core.finds_hit");
/// c.inc();
/// assert_eq!(h.snapshot().counter("core.finds_hit"), 1);
/// ```
#[derive(Clone, Default)]
pub struct MetricsHandle {
    reg: Arc<Registry>,
}

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHandle")
            .field(
                "counters",
                &self.reg.counters.read().expect("registry").len(),
            )
            .field("gauges", &self.reg.gauges.read().expect("registry").len())
            .field("hists", &self.reg.hists.read().expect("registry").len())
            .finish()
    }
}

impl MetricsHandle {
    /// A handle to a fresh registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Do two handles share one registry?
    pub fn same_registry(&self, other: &MetricsHandle) -> bool {
        Arc::ptr_eq(&self.reg, &other.reg)
    }

    fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(v) = map.read().expect("registry").get(name) {
            return Arc::clone(v);
        }
        let mut w = map.write().expect("registry");
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Get or create the named counter. Resolve once, hold the `Arc`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_create(&self.reg.counters, name)
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_create(&self.reg.gauges, name)
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_create(&self.reg.hists, name)
    }

    /// The registry's event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.reg.tracer
    }

    /// The registry's operation-history log (disabled by default; see
    /// [`HistoryLog`]).
    pub fn history(&self) -> &HistoryLog {
        &self.reg.history
    }

    /// The registry's slow-op log (disabled by default; see
    /// [`SlowOpLog`]).
    pub fn slow_ops(&self) -> &SlowOpLog {
        &self.reg.slow
    }

    /// Time since this registry was created — the process uptime when
    /// one registry spans the process (the `ceh serve` wiring).
    pub fn uptime(&self) -> Duration {
        self.reg.epoch.elapsed()
    }

    /// A fresh span id (shorthand for `tracer().new_span()`).
    pub fn new_span(&self) -> SpanId {
        self.reg.tracer.new_span()
    }

    /// Record a trace event (no-op unless the tracer is enabled).
    #[inline]
    pub fn trace(&self, span: SpanId, layer: &'static str, event: &'static str, a: u64, b: u64) {
        self.reg.tracer.record(span, layer, event, a, b);
    }

    /// Open a span under `ctx` (shorthand for `tracer().begin(..)`).
    #[inline]
    pub fn trace_begin(
        &self,
        ctx: TraceCtx,
        layer: &'static str,
        event: &'static str,
        a: u64,
        b: u64,
    ) -> TraceCtx {
        self.reg.tracer.begin(ctx, layer, event, a, b)
    }

    /// Close the span `ctx` was returned for by [`MetricsHandle::trace_begin`].
    #[inline]
    pub fn trace_end(
        &self,
        ctx: TraceCtx,
        layer: &'static str,
        event: &'static str,
        a: u64,
        b: u64,
    ) {
        self.reg.tracer.end(ctx, layer, event, a, b);
    }

    /// Record a point-in-time event inside `ctx`'s span.
    #[inline]
    pub fn trace_instant(
        &self,
        ctx: TraceCtx,
        layer: &'static str,
        event: &'static str,
        a: u64,
        b: u64,
    ) {
        self.reg.tracer.instant(ctx, layer, event, a, b);
    }

    /// A point-in-time copy of every registered metric. Counters are
    /// monotone: a later snapshot's value for any name is ≥ an earlier
    /// snapshot's (absent an explicit [`MetricsHandle::reset`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .reg
                .counters
                .read()
                .expect("registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .reg
                .gauges
                .read()
                .expect("registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            hists: self
                .reg
                .hists
                .read()
                .expect("registry")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Raw sparse bucket captures of every registered histogram, for
    /// windowed delta math ([`crate::SnapshotRing`]); the summary-level
    /// counterpart lives in [`MetricsHandle::snapshot`].
    pub fn capture_hists(&self) -> BTreeMap<String, HistogramCapture> {
        self.reg
            .hists
            .read()
            .expect("registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.capture()))
            .collect()
    }

    /// Zero every registered metric (between benchmark phases).
    /// Instruments stay registered; held `Arc`s keep working.
    pub fn reset(&self) {
        for c in self.reg.counters.read().expect("registry").values() {
            c.reset();
        }
        for g in self.reg.gauges.read().expect("registry").values() {
            g.reset();
        }
        for h in self.reg.hists.read().expect("registry").values() {
            h.reset();
        }
    }
}

/// A point-in-time copy of a registry's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's level (0 if never registered).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's summary (`None` if never registered).
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.get(name)
    }

    /// Sum of every counter whose name starts with `prefix`
    /// (`prefix_sum("net.sent.")` = total messages sent).
    pub fn prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Counter-wise difference (`self - earlier`), for measuring an
    /// interval. Names absent from `earlier` are kept whole; gauges and
    /// histograms are copied from `self` (levels and distributions are
    /// not meaningfully subtractable).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
                .collect(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let h = MetricsHandle::new();
        let a = h.counter("x.events");
        let b = h.counter("x.events");
        a.inc();
        b.inc();
        assert_eq!(h.snapshot().counter("x.events"), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn clones_share_the_registry() {
        let h = MetricsHandle::new();
        let h2 = h.clone();
        assert!(h.same_registry(&h2));
        h.counter("a").inc();
        assert_eq!(h2.snapshot().counter("a"), 1);
        let other = MetricsHandle::new();
        assert!(!h.same_registry(&other));
        assert_eq!(other.snapshot().counter("a"), 0);
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let h = MetricsHandle::new();
        h.counter("c").add(3);
        h.gauge("g").set(-2);
        h.histogram("h").record(10);
        let s = h.snapshot();
        assert_eq!(s.counter("c"), 3);
        assert_eq!(s.gauge("g"), -2);
        assert_eq!(s.hist("h").unwrap().count, 1);
        assert_eq!(s.counter("missing"), 0);
        assert!(s.hist("missing").is_none());
    }

    #[test]
    fn prefix_sum_and_since() {
        let h = MetricsHandle::new();
        h.counter("net.sent.find").add(5);
        h.counter("net.sent.update").add(2);
        h.counter("net.dropped.find").add(1);
        let before = h.snapshot();
        assert_eq!(before.prefix_sum("net.sent."), 7);
        h.counter("net.sent.find").add(3);
        let d = h.snapshot().since(&before);
        assert_eq!(d.counter("net.sent.find"), 3);
        assert_eq!(d.counter("net.sent.update"), 0);
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let h = MetricsHandle::new();
        let c = h.counter("c");
        c.add(9);
        h.reset();
        assert_eq!(h.snapshot().counter("c"), 0);
        c.inc();
        assert_eq!(h.snapshot().counter("c"), 1, "held Arc keeps working");
    }
}
