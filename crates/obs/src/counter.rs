//! Sharded atomic counters and gauges.
// ceh-lint: allow-file(relaxed-ordering) — monotonic statistics cells; snapshots are advisory and exact only at quiescence, no data is published through them

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of independent cache lines a [`Counter`] spreads its value
/// over. Recording threads are assigned a home shard round-robin, so up
/// to this many threads can increment concurrently without bouncing a
/// cache line between cores.
const SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home shard, assigned once on first use.
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// A monotone event counter: sharded per-thread so the hot path is one
/// uncontended relaxed `fetch_add`. Reads sum the shards (exact once
/// recording threads are quiescent; during recording, a read may miss
/// in-flight increments but never goes backwards).
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = THREAD_SLOT.with(|s| *s);
        self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum of shards).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zero the counter.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A signed level — a value that goes up *and* down (queue depths, live
/// pages). Unsharded: gauges are not on nanosecond-hot paths.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zero the gauge.
    pub fn reset(&self) {
        self.set(0);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_is_exact_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.add(-5);
        assert_eq!(g.get(), -4);
        g.set(7);
        assert_eq!(g.get(), 7);
        g.reset();
        assert_eq!(g.get(), 0);
    }
}
