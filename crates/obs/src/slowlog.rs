//! The slow-operation log: a bounded ring of operations whose latency
//! crossed a configurable threshold.
//!
//! Aggregates (histograms, windowed p99s) say the tail got worse;
//! the slow-op log says *which operations* sat in it. Each entry is
//! stamped with the operation's `trace_id`, so a slow request can be
//! cross-referenced into the causal trace timeline
//! ([`crate::TraceReport`]) when tracing is on.
//!
//! Same discipline as the [`crate::Tracer`] ring: disabled by default
//! (one relaxed atomic load per probe), bounded memory (newest entries
//! win), overwrites counted ([`SlowOpLog::dropped`]) and surfaced in
//! snapshots so a truncated log is never silently trusted, and the
//! hot path never blocks — the ring mutex is only touched by the
//! already-slow operations that cross the threshold.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One operation that crossed the slow threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowOp {
    /// What ran ("find", "insert", "bucket_op", …).
    pub kind: &'static str,
    /// How long it took, in nanoseconds.
    pub latency_ns: u64,
    /// The operation's trace id (0 when tracing was off), for
    /// cross-referencing into the trace timeline.
    pub trace_id: u64,
    /// Operation detail — typically the key.
    pub key: u64,
    /// When the operation completed (for age reporting).
    pub at: Instant,
}

struct Ring {
    buf: VecDeque<SlowOp>,
    capacity: usize,
    dropped: u64,
}

/// The bounded slow-op ring. One per registry
/// ([`crate::MetricsHandle::slow_ops`]); see the module docs.
pub struct SlowOpLog {
    /// 0 = disabled. A single relaxed load gates the hot path.
    threshold_ns: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for SlowOpLog {
    fn default() -> Self {
        Self::new()
    }
}

impl SlowOpLog {
    /// A disabled log (the default state).
    pub fn new() -> SlowOpLog {
        SlowOpLog {
            threshold_ns: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: 0,
                dropped: 0,
            }),
        }
    }

    /// Start capturing operations slower than `threshold_ns`, keeping
    /// the newest `capacity` entries.
    ///
    /// Same idempotence contract as [`crate::Tracer::enable`]:
    /// re-enabling with the same capacity keeps the buffered entries
    /// and the `dropped` count; a capacity *change* resizes the ring,
    /// clearing both. Changing only the threshold never clears.
    pub fn enable(&self, threshold_ns: u64, capacity: usize) {
        let capacity = capacity.max(1);
        {
            let mut r = self.ring.lock().expect("slow-op ring");
            if r.capacity != capacity {
                r.capacity = capacity;
                r.buf.clear();
                r.dropped = 0;
            }
        }
        self.threshold_ns
            .store(threshold_ns.max(1), Ordering::Release);
    }

    /// Stop capturing (buffered entries stay).
    pub fn disable(&self) {
        self.threshold_ns.store(0, Ordering::Release);
    }

    /// Is the log capturing?
    pub fn is_enabled(&self) -> bool {
        // ceh-lint: allow(relaxed-ordering) — hot-path threshold probe; staleness only delays the knob, and the setter's store is Release
        self.threshold_ns.load(Ordering::Relaxed) != 0
    }

    /// The active threshold in nanoseconds (0 = disabled).
    pub fn threshold_ns(&self) -> u64 {
        // ceh-lint: allow(relaxed-ordering) — hot-path threshold probe; staleness only delays the knob, and the setter's store is Release
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Hot-path probe: record the operation if it crossed the
    /// threshold. Fast path (disabled, or under threshold) is one
    /// relaxed load and a compare — no locks, no allocation.
    #[inline]
    pub fn observe(&self, kind: &'static str, latency_ns: u64, trace_id: u64, key: u64) {
        // ceh-lint: allow(relaxed-ordering) — hot-path threshold probe; staleness only delays the knob, and the setter's store is Release
        let t = self.threshold_ns.load(Ordering::Relaxed);
        if t == 0 || latency_ns < t {
            return;
        }
        self.record_slow(kind, latency_ns, trace_id, key);
    }

    #[cold]
    fn record_slow(&self, kind: &'static str, latency_ns: u64, trace_id: u64, key: u64) {
        let op = SlowOp {
            kind,
            latency_ns,
            trace_id,
            key,
            at: Instant::now(),
        };
        let mut r = self.ring.lock().expect("slow-op ring");
        if r.buf.len() == r.capacity {
            r.buf.pop_front();
            r.dropped += 1;
        }
        r.buf.push_back(op);
    }

    /// A non-destructive copy of the buffered entries, oldest first.
    /// (Unlike [`crate::Tracer::drain`] this does not empty the ring:
    /// several dashboards may poll the same node.)
    pub fn entries(&self) -> Vec<SlowOp> {
        let r = self.ring.lock().expect("slow-op ring");
        r.buf.iter().copied().collect()
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow-op ring").buf.len()
    }

    /// Nothing buffered?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("slow-op ring").dropped
    }
}

impl std::fmt::Debug for SlowOpLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowOpLog")
            .field("threshold_ns", &self.threshold_ns())
            .field("buffered", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let log = SlowOpLog::new();
        log.observe("find", u64::MAX, 1, 2);
        assert!(log.is_empty());
        assert!(!log.is_enabled());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn threshold_gates_capture() {
        let log = SlowOpLog::new();
        log.enable(1_000, 8);
        log.observe("fast", 999, 0, 1);
        log.observe("slow", 1_000, 7, 2);
        log.observe("slower", 5_000, 8, 3);
        let ops = log.entries();
        assert_eq!(ops.len(), 2, "under-threshold ops are not captured");
        assert_eq!(ops[0].kind, "slow");
        assert_eq!(ops[0].trace_id, 7);
        assert_eq!(ops[1].key, 3);
        assert_eq!(log.len(), 2, "entries() is non-destructive");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let log = SlowOpLog::new();
        log.enable(1, 4);
        for i in 0..10u64 {
            log.observe("op", 100 + i, 0, i);
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        let ops = log.entries();
        assert_eq!(ops[0].key, 6, "oldest surviving entry");
        assert_eq!(ops[3].key, 9, "newest entry");
    }

    #[test]
    fn reenable_same_capacity_keeps_buffer_threshold_change_does_not_clear() {
        let log = SlowOpLog::new();
        log.enable(100, 2);
        log.observe("a", 200, 0, 1);
        log.observe("b", 200, 0, 2);
        log.observe("c", 200, 0, 3);
        assert_eq!(log.dropped(), 1);
        log.enable(100, 2); // idempotent
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 1);
        log.enable(500, 2); // threshold change only: keeps everything
        assert_eq!(log.threshold_ns(), 500);
        assert_eq!(log.len(), 2);
        log.observe("d", 300, 0, 4);
        assert_eq!(log.len(), 2, "new threshold applies");
        log.enable(500, 8); // capacity change clears
        assert_eq!(log.len(), 0);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn overflow_under_threads_counts_every_drop() {
        use std::sync::Arc;
        const THREADS: u64 = 8;
        const OPS: u64 = 500;
        const CAPACITY: usize = 32; // far smaller than the op volume
        let log = Arc::new(SlowOpLog::new());
        log.enable(1, CAPACITY);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        log.observe("op", 100, t, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every over-threshold op either sits in the ring or was
        // counted as dropped; nothing blocked or panicked.
        assert_eq!(log.len(), CAPACITY);
        assert_eq!(log.dropped() + log.len() as u64, THREADS * OPS);
    }

    #[test]
    fn disable_keeps_entries_for_inspection() {
        let log = SlowOpLog::new();
        log.enable(1, 4);
        log.observe("op", 10, 0, 1);
        log.disable();
        log.observe("op", 10, 0, 2);
        assert_eq!(log.len(), 1, "disabled probe is a no-op");
        assert_eq!(log.entries()[0].key, 1);
    }
}
