//! Page buffers.

use std::ops::{Deref, DerefMut};

/// The byte written over every freed page when poisoning is enabled.
///
/// Chosen so that a bucket header read from a poisoned page cannot decode
/// as a valid bucket (the magic check fails), making use-after-free of a
/// page loud.
pub const POISON_BYTE: u8 = 0xDE;

/// A private in-memory buffer holding one page's bytes.
///
/// The paper's processes "manipulate the data after locking appropriate
/// portions of the shared structure and transferring the information into
/// private buffers" (§2.1) — the `struct buffer B; current = &B` locals of
/// Figures 5–9. A `PageBuf` is that private buffer: page-sized, owned by
/// one operation, copied in and out of the [`crate::PageStore`]
/// atomically.
#[derive(Clone, PartialEq, Eq)]
pub struct PageBuf {
    bytes: Box<[u8]>,
}

impl PageBuf {
    /// A zeroed buffer of the given page size.
    pub fn zeroed(page_size: usize) -> Self {
        PageBuf {
            bytes: vec![0u8; page_size].into_boxed_slice(),
        }
    }

    /// Build a buffer from existing bytes (must already be page-sized;
    /// callers get the size from [`crate::PageStore::page_size`]).
    pub fn from_bytes(bytes: Box<[u8]>) -> Self {
        PageBuf { bytes }
    }

    /// The page size this buffer was created with.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the buffer is zero-sized (never true for real pages).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Is every byte the poison byte? (Diagnostic helper for tests that
    /// assert use-after-free detection.)
    pub fn is_poisoned(&self) -> bool {
        !self.bytes.is_empty() && self.bytes.iter().all(|&b| b == POISON_BYTE)
    }
}

impl Deref for PageBuf {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl DerefMut for PageBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero() {
        let b = PageBuf::zeroed(128);
        assert_eq!(b.len(), 128);
        assert!(b.iter().all(|&x| x == 0));
        assert!(!b.is_poisoned());
    }

    #[test]
    fn poison_detection() {
        let b = PageBuf::from_bytes(vec![POISON_BYTE; 64].into_boxed_slice());
        assert!(b.is_poisoned());
        let mut b2 = b.clone();
        b2[0] = 0;
        assert!(!b2.is_poisoned());
    }

    #[test]
    fn deref_mut_writes_through() {
        let mut b = PageBuf::zeroed(16);
        b[3] = 7;
        assert_eq!(b[3], 7);
    }
}
