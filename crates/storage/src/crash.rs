//! Seeded power-loss injection for the durable store.
//!
//! A [`CrashPlan`] is the storage-side twin of PR 1's network
//! `FaultPlan`: deterministic, seeded, and shared by handle. The durable
//! store consults it at every **durability point** — an instant where
//! the simulated medium transitions (a WAL flush, a frame write during
//! checkpoint, the checkpoint's log swap). The plan counts points; when
//! the armed point is reached it answers with a seeded [`Tear`] telling
//! the store how much of that write survives, and the store drops dead
//! ([`ceh_types::Error::PowerLoss`]) with the medium frozen mid-write.
//!
//! The sweep protocol (see `ceh-check`'s crash module): run the workload
//! once with a **count-only** plan to learn how many durability points
//! it reaches, then re-run it once per point with the plan armed at that
//! point. Every run is bit-for-bit deterministic given the seed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What a power cut does to the write in flight at the crash point: a
/// prefix of the bytes reaches the medium, the rest never does. A whole
/// write surviving (`keep == len`) models power dying just *after* the
/// write; zero bytes models dying just before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tear {
    /// How many leading bytes of the in-flight write land.
    pub keep: usize,
}

/// Sentinel for "never fire" (count-only mode).
const COUNT_ONLY: u64 = u64::MAX;

/// A deterministic, seeded power-cut schedule. Cheap to clone by handle.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    inner: Arc<PlanInner>,
}

#[derive(Debug)]
struct PlanInner {
    seed: u64,
    /// 1-based durability point at which power dies; `COUNT_ONLY` never
    /// fires.
    crash_at: u64,
    /// Durability points reached so far.
    counter: AtomicU64,
    fired: AtomicBool,
}

impl CrashPlan {
    /// A plan that never fires but still counts durability points — the
    /// sweep's measurement run.
    pub fn count_only(seed: u64) -> Self {
        Self::build(seed, COUNT_ONLY)
    }

    /// A plan armed to cut power at the `crash_at`-th durability point
    /// (1-based; 0 behaves like `count_only`).
    pub fn armed(seed: u64, crash_at: u64) -> Self {
        Self::build(seed, if crash_at == 0 { COUNT_ONLY } else { crash_at })
    }

    fn build(seed: u64, crash_at: u64) -> Self {
        CrashPlan {
            inner: Arc::new(PlanInner {
                seed,
                crash_at,
                counter: AtomicU64::new(0),
                fired: AtomicBool::new(false),
            }),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Durability points reached so far.
    pub fn points(&self) -> u64 {
        self.inner.counter.load(Ordering::Acquire)
    }

    /// Did the armed point fire?
    pub fn fired(&self) -> bool {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// Record one durability point for a write of `len` bytes. `None`
    /// means power stays on; `Some(tear)` means the plan fired: the
    /// caller must apply the tear to the in-flight write and die.
    ///
    /// The tear length is a pure function of `(seed, point, len)` so a
    /// re-run with the same seed and arm point tears identically.
    pub fn at_point(&self, len: usize) -> Option<Tear> {
        let point = self.inner.counter.fetch_add(1, Ordering::AcqRel) + 1;
        if point != self.inner.crash_at {
            return None;
        }
        self.inner.fired.store(true, Ordering::Release);
        // keep ∈ [0, len]: inclusive upper end so "the write completed,
        // then power died" is a reachable outcome of every point.
        let r = splitmix64(self.inner.seed ^ point.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Some(Tear {
            keep: (r % (len as u64 + 1)) as usize,
        })
    }
}

/// SplitMix64 — the workspace's standard seeded scrambler (same one the
/// harness and fault plane use).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_only_never_fires() {
        let p = CrashPlan::count_only(42);
        for _ in 0..100 {
            assert!(p.at_point(64).is_none());
        }
        assert_eq!(p.points(), 100);
        assert!(!p.fired());
    }

    #[test]
    fn armed_plan_fires_exactly_once_at_its_point() {
        let p = CrashPlan::armed(42, 5);
        let mut tears = Vec::new();
        for _ in 0..10 {
            if let Some(t) = p.at_point(64) {
                tears.push((p.points(), t));
            }
        }
        assert_eq!(tears.len(), 1);
        assert_eq!(tears[0].0, 5);
        assert!(p.fired());
        assert!(tears[0].1.keep <= 64);
    }

    #[test]
    fn tears_are_deterministic_per_seed_and_point() {
        let t1 = CrashPlan::armed(7, 3);
        let t2 = CrashPlan::armed(7, 3);
        let mut a = None;
        let mut b = None;
        for _ in 0..5 {
            if let Some(t) = t1.at_point(128) {
                a = Some(t);
            }
            if let Some(t) = t2.at_point(128) {
                b = Some(t);
            }
        }
        assert_eq!(a, b);
        assert!(a.is_some());
        // A different seed tears differently somewhere in a small sweep.
        let mut differs = false;
        for point in 1..16 {
            let x = CrashPlan::armed(1, point);
            let y = CrashPlan::armed(2, point);
            let mut tx = None;
            let mut ty = None;
            for _ in 0..point {
                if let Some(t) = x.at_point(4096) {
                    tx = Some(t);
                }
                if let Some(t) = y.at_point(4096) {
                    ty = Some(t);
                }
            }
            if tx != ty {
                differs = true;
            }
        }
        assert!(differs, "seeds should produce different tears");
    }
}
