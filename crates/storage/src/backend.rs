//! Page backends: where the nonvolatile medium's bytes actually live.
//!
//! The durable layer ([`crate::durable`]) speaks to its medium through
//! the [`PageBackend`] trait — a frame array plus a write-ahead log,
//! with explicit sync points. Two implementations:
//!
//! * [`MemBackend`]: the original simulated medium, a [`DiskImage`] in
//!   memory. Deterministic and instantaneous; the chaos/crash fuzzers
//!   sweep durability points on it, and `sync` is a no-op (an in-memory
//!   append *is* the durable transition).
//! * [`FileBackend`]: real files — one frames file, one WAL file, and a
//!   tiny metadata file per medium, written with positioned
//!   `pread`/`pwrite` and made durable with `fsync`. The byte layout of
//!   frames and log records is **identical** to the in-memory image
//!   (same headers, same CRCs), so a medium written by one backend
//!   recovers on the other: [`PageBackend::snapshot`] returns a
//!   [`DiskImage`] either way, and that image is the interchange format.
//!
//! Torn writes are modeled the same way on both: a durability point
//! that tears writes only the prefix of the in-flight bytes. On the
//! file backend that is a real partial `pwrite` — exactly the state a
//! power cut can leave on disk inside one unsynced write.
//!
//! The fault-injection surface ([`DiskHandle::corrupt`]) also works on
//! both: snapshot the image, let the test mutate it arbitrarily, write
//! it back. On files that rewrites the medium wholesale — bit rot,
//! truncation, and header scribbles all round-trip.

use std::io::{Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ceh_types::{Error, Result};
use parking_lot::Mutex;

use crate::durable::FRAME_HEADER;
use crate::wal::crc32;

/// The nonvolatile medium's contents: what survives a power cut. Also
/// the cross-backend interchange format — both backends snapshot to and
/// restore from this exact byte layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskImage {
    /// Page payload size (frame size is [`FRAME_HEADER`] larger).
    pub page_size: usize,
    /// The frame array, one header-prefixed region per page id.
    pub frames: Vec<u8>,
    /// The write-ahead log bytes (see [`crate::wal`]).
    pub wal: Vec<u8>,
}

impl DiskImage {
    /// An empty medium for pages of `page_size` bytes.
    pub fn empty(page_size: usize) -> Self {
        DiskImage {
            page_size,
            frames: Vec::new(),
            wal: Vec::new(),
        }
    }

    /// Bytes per frame region (header + payload).
    pub fn frame_size(&self) -> usize {
        FRAME_HEADER + self.page_size
    }
}

/// Which [`PageBackend`] implementation a component should build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The deterministic in-memory image ([`MemBackend`]).
    #[default]
    Memory,
    /// Real files with `fsync` ([`FileBackend`]).
    File,
}

impl BackendKind {
    /// Parse a CLI/config spelling (`memory` | `file`).
    pub fn parse(s: &str) -> Result<BackendKind> {
        match s {
            "memory" | "mem" => Ok(BackendKind::Memory),
            "file" => Ok(BackendKind::File),
            other => Err(Error::Config(format!(
                "unknown storage backend '{other}' (want 'memory' or 'file')"
            ))),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Memory => "memory",
            BackendKind::File => "file",
        })
    }
}

/// The medium the durable store writes through: a frame array plus a
/// WAL byte stream, with explicit sync points.
///
/// # Contract
///
/// * Writes take effect immediately in the backend's *observable* state
///   (a [`PageBackend::snapshot`] sees them), but are only guaranteed
///   to survive a real process kill after the corresponding `sync_*`
///   call returns. The in-memory backend has no such distinction — its
///   writes are trivially "durable" — which is exactly why the crash
///   fuzzer models power cuts *at* the write, with a prefix tear.
/// * [`PageBackend::write_frame`] may be handed **fewer** bytes than a
///   full frame: that is a torn write, and the backend must persist
///   exactly the prefix (after any growth already performed).
/// * `grow_frames` zero-fills, like a file extended by `ftruncate`.
/// * Frame headers and WAL records have the same byte layout on every
///   backend; `snapshot` must return a [`DiskImage`] a different
///   backend can recover from.
pub trait PageBackend: Send {
    /// Which implementation this is.
    fn kind(&self) -> BackendKind;
    /// Page payload size of the medium.
    fn page_size(&self) -> usize;
    /// Current length of the frame array, in bytes.
    fn frames_len(&self) -> usize;
    /// Current length of the WAL, in bytes.
    fn wal_len(&self) -> usize;
    /// Append bytes to the WAL (possibly a torn prefix).
    fn append_wal(&mut self, bytes: &[u8]) -> Result<()>;
    /// Truncate the WAL to `keep` bytes (a checkpoint keeps 0; a torn
    /// in-place truncate keeps a prefix).
    fn truncate_wal(&mut self, keep: usize) -> Result<()>;
    /// Grow the frame array to at least `len` bytes, zero-filled.
    fn grow_frames(&mut self, len: usize) -> Result<()>;
    /// Write frame bytes at byte offset `at` (short `bytes` = torn).
    fn write_frame(&mut self, at: usize, bytes: &[u8]) -> Result<()>;
    /// Make every WAL write so far durable (fsync; no-op in memory).
    fn sync_wal(&mut self) -> Result<()>;
    /// Make every frame write so far durable (fsync; no-op in memory).
    fn sync_frames(&mut self) -> Result<()>;
    /// A point-in-time copy of the whole medium.
    fn snapshot(&self) -> Result<DiskImage>;
    /// Replace the whole medium with `image` (the corruption surface).
    fn restore_image(&mut self, image: &DiskImage) -> Result<()>;
    /// The directory holding the medium's files, if it has one.
    fn data_dir(&self) -> Option<&Path> {
        None
    }
}

/// The simulated nonvolatile medium: a [`DiskImage`] held in memory.
#[derive(Debug)]
pub struct MemBackend {
    img: DiskImage,
}

impl MemBackend {
    /// A blank in-memory medium.
    pub fn new(page_size: usize) -> Self {
        MemBackend {
            img: DiskImage::empty(page_size),
        }
    }

    /// A medium holding exactly `image` (the round-trip seam: feed a
    /// file backend's snapshot to an in-memory recovery).
    pub fn from_image(image: DiskImage) -> Self {
        MemBackend { img: image }
    }
}

impl PageBackend for MemBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }
    fn page_size(&self) -> usize {
        self.img.page_size
    }
    fn frames_len(&self) -> usize {
        self.img.frames.len()
    }
    fn wal_len(&self) -> usize {
        self.img.wal.len()
    }
    fn append_wal(&mut self, bytes: &[u8]) -> Result<()> {
        self.img.wal.extend_from_slice(bytes);
        Ok(())
    }
    fn truncate_wal(&mut self, keep: usize) -> Result<()> {
        self.img.wal.truncate(keep);
        Ok(())
    }
    fn grow_frames(&mut self, len: usize) -> Result<()> {
        if self.img.frames.len() < len {
            self.img.frames.resize(len, 0);
        }
        Ok(())
    }
    fn write_frame(&mut self, at: usize, bytes: &[u8]) -> Result<()> {
        self.img.frames[at..at + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }
    fn sync_wal(&mut self) -> Result<()> {
        Ok(())
    }
    fn sync_frames(&mut self) -> Result<()> {
        Ok(())
    }
    fn snapshot(&self) -> Result<DiskImage> {
        Ok(self.img.clone())
    }
    fn restore_image(&mut self, image: &DiskImage) -> Result<()> {
        self.img = image.clone();
        Ok(())
    }
}

/// Names of the three files a [`FileBackend`] keeps in its directory.
const FRAMES_FILE: &str = "frames.ceh";
const WAL_FILE: &str = "wal.ceh";
const META_FILE: &str = "meta.ceh";

const META_MAGIC: u32 = 0xCE11_0E7A; // stable arbitrary tag
const META_VERSION: u32 = 1;

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{what}: {e}"))
}

/// A real on-disk medium: `frames.ceh` + `wal.ceh` (+ `meta.ceh`) in
/// one directory, positioned I/O via `std::os::unix::fs::FileExt`,
/// durability via `File::sync_data`. No dependencies beyond `std`.
#[derive(Debug)]
pub struct FileBackend {
    dir: PathBuf,
    frames: std::fs::File,
    wal: std::fs::File,
    page_size: usize,
    frames_len: usize,
    wal_len: usize,
}

impl FileBackend {
    /// Create a fresh medium in `dir` (truncating any previous one).
    pub fn create(dir: impl Into<PathBuf>, page_size: usize) -> Result<Self> {
        Self::build(dir.into(), page_size, true)
    }

    /// Open the medium in `dir`, creating it if absent, preserving any
    /// existing contents (the restart path).
    pub fn open(dir: impl Into<PathBuf>, page_size: usize) -> Result<Self> {
        Self::build(dir.into(), page_size, false)
    }

    fn build(dir: PathBuf, page_size: usize, truncate: bool) -> Result<Self> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err(&format!("creating {}", dir.display()), e))?;
        let meta_path = dir.join(META_FILE);
        if !truncate && meta_path.exists() {
            let stored = read_meta(&meta_path)?;
            if stored != page_size {
                return Err(Error::Config(format!(
                    "{} holds {stored}-byte pages, config wants {page_size}",
                    dir.display()
                )));
            }
        } else {
            write_meta(&meta_path, page_size)?;
        }
        let open = |name: &str| -> Result<std::fs::File> {
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(truncate)
                .open(dir.join(name))
                .map_err(|e| io_err(&format!("opening {name}"), e))
        };
        let frames = open(FRAMES_FILE)?;
        let wal = open(WAL_FILE)?;
        let len = |f: &std::fs::File, name: &str| -> Result<usize> {
            Ok(f.metadata()
                .map_err(|e| io_err(&format!("stat {name}"), e))?
                .len() as usize)
        };
        let frames_len = len(&frames, FRAMES_FILE)?;
        let wal_len = len(&wal, WAL_FILE)?;
        Ok(FileBackend {
            dir,
            frames,
            wal,
            page_size,
            frames_len,
            wal_len,
        })
    }
}

/// `meta.ceh`: magic(4) + version(4) + page_size(4) + CRC32(4) over the
/// first 12 bytes, all little-endian. Returns the stored page size.
fn read_meta(path: &Path) -> Result<usize> {
    let mut f = std::fs::File::open(path).map_err(|e| io_err("opening meta.ceh", e))?;
    let mut buf = [0u8; 16];
    f.read_exact(&mut buf)
        .map_err(|e| io_err("reading meta.ceh", e))?;
    let word = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("slice len"));
    if word(0) != META_MAGIC || word(4) != META_VERSION {
        return Err(Error::Corrupt("meta.ceh: bad magic or version".into()));
    }
    if crc32(&buf[..12]) != word(12) {
        return Err(Error::Corrupt("meta.ceh: checksum mismatch".into()));
    }
    Ok(word(8) as usize)
}

fn write_meta(path: &Path, page_size: usize) -> Result<()> {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&META_MAGIC.to_le_bytes());
    buf.extend_from_slice(&META_VERSION.to_le_bytes());
    buf.extend_from_slice(&(page_size as u32).to_le_bytes());
    let sum = crc32(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    let mut f = std::fs::File::create(path).map_err(|e| io_err("creating meta.ceh", e))?;
    f.write_all(&buf)
        .map_err(|e| io_err("writing meta.ceh", e))?;
    f.sync_data().map_err(|e| io_err("syncing meta.ceh", e))?;
    Ok(())
}

impl PageBackend for FileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::File
    }
    fn page_size(&self) -> usize {
        self.page_size
    }
    fn frames_len(&self) -> usize {
        self.frames_len
    }
    fn wal_len(&self) -> usize {
        self.wal_len
    }
    fn append_wal(&mut self, bytes: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.wal
            .write_all_at(bytes, self.wal_len as u64)
            .map_err(|e| io_err("appending wal.ceh", e))?;
        self.wal_len += bytes.len();
        Ok(())
    }
    fn truncate_wal(&mut self, keep: usize) -> Result<()> {
        self.wal
            .set_len(keep as u64)
            .map_err(|e| io_err("truncating wal.ceh", e))?;
        self.wal_len = keep;
        Ok(())
    }
    fn grow_frames(&mut self, len: usize) -> Result<()> {
        if self.frames_len < len {
            // ftruncate zero-fills the extension, matching the
            // in-memory resize semantics.
            self.frames
                .set_len(len as u64)
                .map_err(|e| io_err("growing frames.ceh", e))?;
            self.frames_len = len;
        }
        Ok(())
    }
    fn write_frame(&mut self, at: usize, bytes: &[u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.frames
            .write_all_at(bytes, at as u64)
            .map_err(|e| io_err("writing frames.ceh", e))?;
        Ok(())
    }
    fn sync_wal(&mut self) -> Result<()> {
        self.wal.sync_data().map_err(|e| io_err("fsync wal.ceh", e))
    }
    fn sync_frames(&mut self) -> Result<()> {
        self.frames
            .sync_data()
            .map_err(|e| io_err("fsync frames.ceh", e))
    }
    fn snapshot(&self) -> Result<DiskImage> {
        // Re-stat rather than trusting the cached lengths: corruption
        // tests may have changed the files out from under the handle.
        let read_all = |f: &std::fs::File, name: &str| -> Result<Vec<u8>> {
            let mut f = f;
            let len = f
                .metadata()
                .map_err(|e| io_err(&format!("stat {name}"), e))?
                .len() as usize;
            let mut out = vec![0u8; len];
            f.seek(std::io::SeekFrom::Start(0))
                .map_err(|e| io_err(&format!("seek {name}"), e))?;
            f.read_exact(&mut out)
                .map_err(|e| io_err(&format!("reading {name}"), e))?;
            Ok(out)
        };
        Ok(DiskImage {
            page_size: self.page_size,
            frames: read_all(&self.frames, FRAMES_FILE)?,
            wal: read_all(&self.wal, WAL_FILE)?,
        })
    }
    fn restore_image(&mut self, image: &DiskImage) -> Result<()> {
        use std::os::unix::fs::FileExt;
        self.page_size = image.page_size;
        self.frames
            .set_len(image.frames.len() as u64)
            .map_err(|e| io_err("resizing frames.ceh", e))?;
        self.frames
            .write_all_at(&image.frames, 0)
            .map_err(|e| io_err("rewriting frames.ceh", e))?;
        self.wal
            .set_len(image.wal.len() as u64)
            .map_err(|e| io_err("resizing wal.ceh", e))?;
        self.wal
            .write_all_at(&image.wal, 0)
            .map_err(|e| io_err("rewriting wal.ceh", e))?;
        self.frames_len = image.frames.len();
        self.wal_len = image.wal.len();
        write_meta(&self.dir.join(META_FILE), image.page_size)?;
        self.sync_frames()?;
        self.sync_wal()
    }
    fn data_dir(&self) -> Option<&Path> {
        Some(&self.dir)
    }
}

/// Shared handle to a medium. Clone it before dropping the store — the
/// clone *is* the surviving disk across a (simulated or real) power
/// cut, and [`crate::DurableStore::recover`] takes it to come back.
#[derive(Clone)]
pub struct DiskHandle {
    inner: Arc<Mutex<dyn PageBackend>>,
}

impl std::fmt::Debug for DiskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let be = self.inner.lock();
        f.debug_struct("DiskHandle")
            .field("kind", &be.kind())
            .field("page_size", &be.page_size())
            .field("frames_len", &be.frames_len())
            .field("wal_len", &be.wal_len())
            .finish()
    }
}

impl DiskHandle {
    /// A blank in-memory medium for pages of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        DiskHandle {
            inner: Arc::new(Mutex::new(MemBackend::new(page_size))),
        }
    }

    /// An in-memory medium holding exactly `image` (cross-backend
    /// round trips: recover a file backend's bytes in memory).
    pub fn from_image(image: DiskImage) -> Self {
        DiskHandle {
            inner: Arc::new(Mutex::new(MemBackend::from_image(image))),
        }
    }

    /// A fresh file-backed medium in `dir` (truncates a previous one).
    pub fn create_file(dir: impl Into<PathBuf>, page_size: usize) -> Result<Self> {
        Ok(DiskHandle {
            inner: Arc::new(Mutex::new(FileBackend::create(dir, page_size)?)),
        })
    }

    /// The file-backed medium in `dir`, created if absent, preserved if
    /// present (the restart-from-disk path).
    pub fn open_file(dir: impl Into<PathBuf>, page_size: usize) -> Result<Self> {
        Ok(DiskHandle {
            inner: Arc::new(Mutex::new(FileBackend::open(dir, page_size)?)),
        })
    }

    /// Which backend this medium lives on.
    pub fn kind(&self) -> BackendKind {
        self.inner.lock().kind()
    }

    /// The directory holding the medium's files (file backend only).
    pub fn data_dir(&self) -> Option<PathBuf> {
        self.inner.lock().data_dir().map(Path::to_path_buf)
    }

    /// Is the medium blank (no frames, no log)? Callers use this to
    /// decide between a fresh store and a recovery.
    pub fn is_empty(&self) -> bool {
        let be = self.inner.lock();
        be.frames_len() == 0 && be.wal_len() == 0
    }

    /// A point-in-time copy of the medium (tests and the fuzzer's
    /// oracle use this to diff disk states). Panics on backend I/O
    /// errors; the store's own paths use [`DiskHandle::try_snapshot`].
    pub fn snapshot(&self) -> DiskImage {
        self.try_snapshot().expect("backend snapshot")
    }

    /// [`DiskHandle::snapshot`] with I/O errors surfaced.
    pub fn try_snapshot(&self) -> Result<DiskImage> {
        self.inner.lock().snapshot()
    }

    /// The medium's page payload size.
    pub fn page_size(&self) -> usize {
        self.inner.lock().page_size()
    }

    /// Mutate the raw medium in place — the fault-injection surface for
    /// corruption tests (bit rot, torn frames, truncated logs). The
    /// image is snapshotted, handed to `f`, and written back wholesale,
    /// so the same test body corrupts either backend. Never used by the
    /// store itself.
    pub fn corrupt(&self, f: impl FnOnce(&mut DiskImage)) {
        let mut be = self.inner.lock();
        let mut img = be.snapshot().expect("backend snapshot");
        f(&mut img);
        be.restore_image(&img).expect("backend restore");
    }

    /// Lock the backend for a sequence of medium operations (the
    /// durable store's write paths).
    pub(crate) fn backend(&self) -> parking_lot::MutexGuard<'_, dyn PageBackend> {
        self.inner.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ceh-backend-{tag}-{}", std::process::id()))
    }

    #[test]
    fn file_backend_round_trips_bytes_identically() {
        let dir = tmp("rt");
        let disk = DiskHandle::create_file(&dir, 64).unwrap();
        {
            let mut be = disk.backend();
            be.append_wal(&[1, 2, 3]).unwrap();
            be.grow_frames(84).unwrap();
            be.write_frame(0, &[0xAB; 84]).unwrap();
            be.sync_wal().unwrap();
            be.sync_frames().unwrap();
        }
        let img = disk.snapshot();
        assert_eq!(img.wal, vec![1, 2, 3]);
        assert_eq!(img.frames, vec![0xAB; 84]);
        // A memory backend restored from the image is indistinguishable.
        let mem = DiskHandle::from_image(img.clone());
        assert_eq!(mem.snapshot(), img);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_reopen_preserves_and_create_truncates() {
        let dir = tmp("reopen");
        {
            let disk = DiskHandle::create_file(&dir, 32).unwrap();
            disk.backend().append_wal(&[7; 10]).unwrap();
        }
        let disk = DiskHandle::open_file(&dir, 32).unwrap();
        assert_eq!(disk.snapshot().wal, vec![7; 10]);
        assert!(!disk.is_empty());
        // Mismatched page size is refused by the metadata check.
        assert!(matches!(
            DiskHandle::open_file(&dir, 64),
            Err(Error::Config(_))
        ));
        let disk = DiskHandle::create_file(&dir, 32).unwrap();
        assert!(disk.is_empty(), "create truncates");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_and_truncate_keep_prefixes_on_files() {
        let dir = tmp("tear");
        let disk = DiskHandle::create_file(&dir, 32).unwrap();
        {
            let mut be = disk.backend();
            be.append_wal(&[9; 8]).unwrap(); // torn: only 8 of 20 bytes land
            be.truncate_wal(3).unwrap(); // torn in-place truncate
        }
        assert_eq!(disk.snapshot().wal, vec![9; 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_rewrites_the_files() {
        let dir = tmp("corrupt");
        let disk = DiskHandle::create_file(&dir, 32).unwrap();
        disk.backend().append_wal(&[1; 4]).unwrap();
        disk.corrupt(|img| {
            img.wal[0] = 0xFF;
            img.frames.extend_from_slice(&[0x55; 10]);
        });
        let img = disk.snapshot();
        assert_eq!(img.wal[0], 0xFF);
        assert_eq!(img.frames, vec![0x55; 10]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!(BackendKind::parse("memory").unwrap(), BackendKind::Memory);
        assert_eq!(BackendKind::parse("file").unwrap(), BackendKind::File);
        assert!(BackendKind::parse("tape").is_err());
        assert_eq!(BackendKind::File.to_string(), "file");
    }
}
