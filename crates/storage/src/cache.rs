//! The dirty-page buffer cache between [`crate::DurableStore`] and its
//! [`crate::PageBackend`].
//!
//! The durable layer is no-steal: only *committed* page states ever
//! reach the medium's frames. Those committed-but-not-yet-checkpointed
//! states used to accumulate in an unbounded map; the [`BufferCache`]
//! bounds them to a fixed capacity with CLOCK (second-chance) eviction.
//! When a commit pushes the cache over capacity, the store writes the
//! victim back to its frame (log first — the covering records are
//! already synced, so a crash between writeback and the next checkpoint
//! recovers through the LSN-gated replay) and evicts it.
//!
//! A checkpoint drains the whole cache in page order, keeping the
//! durability-point sequence deterministic across backends and runs.

use std::collections::HashMap;

/// A committed page's pending on-medium state (the checkpoint's
/// work list).
#[derive(Debug, Clone)]
pub(crate) enum FrameState {
    /// The page's full committed image.
    Live(Vec<u8>),
    /// The page was deallocated; its frame gets a freed marker.
    Freed,
}

#[derive(Debug)]
struct Entry {
    page: u64,
    state: FrameState,
    /// CLOCK reference bit: set on every touch, cleared as the hand
    /// sweeps past; a victim is an entry found clear.
    referenced: bool,
}

/// Fixed-capacity dirty-page cache with CLOCK eviction.
#[derive(Debug)]
pub(crate) struct BufferCache {
    cap: usize,
    entries: Vec<Entry>,
    map: HashMap<u64, usize>,
    hand: usize,
}

impl BufferCache {
    pub(crate) fn new(cap: usize) -> Self {
        BufferCache {
            cap: cap.max(1),
            entries: Vec::new(),
            map: HashMap::new(),
            hand: 0,
        }
    }

    /// Does the cache hold more pages than its capacity? (Eviction
    /// runs *after* insertion, so the newest entry is never the one
    /// considered — it was just referenced.)
    pub(crate) fn over_capacity(&self) -> bool {
        self.entries.len() > self.cap
    }

    /// Record `state` as the page's latest committed image. Returns
    /// `true` if the page was already cached (a hit: the dirty slot is
    /// reused), `false` if a new slot was taken (a miss).
    pub(crate) fn insert(&mut self, page: u64, state: FrameState) -> bool {
        match self.map.get(&page) {
            Some(&i) => {
                self.entries[i].state = state;
                self.entries[i].referenced = true;
                true
            }
            None => {
                self.push_new(page, state);
                false
            }
        }
    }

    /// Like [`BufferCache::insert`], but an already-cached page keeps
    /// its existing state (the `Alloc` fold: a fresh page is all zeroes
    /// *unless* something newer is already pending).
    pub(crate) fn insert_if_absent(
        &mut self,
        page: u64,
        state: impl FnOnce() -> FrameState,
    ) -> bool {
        match self.map.get(&page) {
            Some(&i) => {
                self.entries[i].referenced = true;
                true
            }
            None => {
                self.push_new(page, state());
                false
            }
        }
    }

    /// Insert without hit/miss accounting — recovery seeding the
    /// persist-step work list.
    pub(crate) fn seed(&mut self, page: u64, state: FrameState) {
        self.insert(page, state);
    }

    fn push_new(&mut self, page: u64, state: FrameState) {
        self.map.insert(page, self.entries.len());
        self.entries.push(Entry {
            page,
            state,
            referenced: true,
        });
    }

    /// Pick and remove a victim by the CLOCK sweep: referenced entries
    /// get their second chance (bit cleared, hand advances), the first
    /// clear entry is evicted. Returns `None` only when empty.
    pub(crate) fn evict(&mut self) -> Option<(u64, FrameState)> {
        if self.entries.is_empty() {
            return None;
        }
        loop {
            if self.hand >= self.entries.len() {
                self.hand = 0;
            }
            if self.entries[self.hand].referenced {
                self.entries[self.hand].referenced = false;
                self.hand += 1;
                continue;
            }
            let victim = self.entries.swap_remove(self.hand);
            self.map.remove(&victim.page);
            // The swapped-in tail entry now lives at `hand`.
            if let Some(moved) = self.entries.get(self.hand) {
                self.map.insert(moved.page, self.hand);
            }
            return Some((victim.page, victim.state));
        }
    }

    /// Drain everything, sorted by page id — the checkpoint's
    /// deterministic flush order (matches the old `BTreeMap` walk).
    pub(crate) fn drain_sorted(&mut self) -> Vec<(u64, FrameState)> {
        self.map.clear();
        self.hand = 0;
        let mut out: Vec<(u64, FrameState)> =
            self.entries.drain(..).map(|e| (e.page, e.state)).collect();
        out.sort_by_key(|(page, _)| *page);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(b: u8) -> FrameState {
        FrameState::Live(vec![b; 4])
    }

    fn byte(fs: &FrameState) -> u8 {
        match fs {
            FrameState::Live(v) => v[0],
            FrameState::Freed => 0xFF,
        }
    }

    #[test]
    fn insert_reports_hits_and_misses() {
        let mut c = BufferCache::new(4);
        assert!(!c.insert(1, live(0x11)), "first touch is a miss");
        assert!(c.insert(1, live(0x12)), "second touch is a hit");
        assert!(c.insert_if_absent(1, || live(0x13)));
        // The hit preserved the newer state, not the alloc image.
        let drained = c.drain_sorted();
        assert_eq!(drained.len(), 1);
        assert_eq!(byte(&drained[0].1), 0x12);
    }

    #[test]
    fn clock_gives_second_chances_and_evicts_cold_pages() {
        let mut c = BufferCache::new(2);
        c.insert(1, live(1));
        c.insert(2, live(2));
        c.insert(3, live(3));
        assert!(c.over_capacity());
        // All three are referenced; the sweep clears 1 and 2, then
        // circles back — 1 loses its second chance first.
        let (victim, _) = c.evict().unwrap();
        assert_eq!(victim, 1);
        assert!(!c.over_capacity());
        // Touch 2 again: 3 (cleared during the first sweep) goes next.
        c.insert(2, live(0x22));
        c.insert(4, live(4));
        let (victim, _) = c.evict().unwrap();
        assert_eq!(victim, 3);
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let mut c = BufferCache::new(8);
        for page in [5u64, 1, 9, 3] {
            c.insert(page, live(page as u8));
        }
        let drained = c.drain_sorted();
        let pages: Vec<u64> = drained.iter().map(|(p, _)| *p).collect();
        assert_eq!(pages, vec![1, 3, 5, 9]);
        assert!(c.evict().is_none());
    }

    #[test]
    fn eviction_keeps_the_map_consistent_after_swap_remove() {
        let mut c = BufferCache::new(1);
        c.insert(10, live(1));
        c.insert(20, live(2));
        c.insert(30, live(3));
        while c.over_capacity() {
            c.evict().unwrap();
        }
        // Surviving entries are still addressable: updating one must
        // hit, not duplicate.
        let survivors: Vec<u64> = c.drain_sorted().iter().map(|(p, _)| *p).collect();
        assert_eq!(survivors.len(), 1);
        c.insert(survivors[0], live(9));
        assert!(c.insert(survivors[0], live(8)), "map stayed consistent");
    }
}
