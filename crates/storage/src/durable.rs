//! Crash-consistent durable storage: a redo write-ahead log over a
//! nonvolatile medium, wrapped around the volatile [`PageStore`].
//!
//! # The medium
//!
//! The nonvolatile state is a flat frame array (one
//! [`FRAME_HEADER`]-prefixed region per page, carrying an LSN and a
//! CRC32 over the contents) plus the log bytes, held by a
//! [`PageBackend`](crate::PageBackend) — the deterministic in-memory
//! [`DiskImage`] or real files with fsync (see [`crate::backend`]).
//! Either lives behind a [`DiskHandle`] that **outlives the store**:
//! cutting power is dropping the `DurableStore` (or calling
//! [`DurableStore::power_off`]) and keeping only the handle; recovery
//! is [`DurableStore::recover`] on that handle.
//!
//! # The protocol
//!
//! Redo-only, no-steal, full-page logging:
//!
//! * every mutation (`write`/`alloc`/`dealloc`) first appends a redo
//!   record to the in-memory log buffer, then applies to the volatile
//!   cache;
//! * mutations group into **transactions** — explicit
//!   ([`DurableStore::begin_txn`], used by the split/merge/
//!   directory-double sections upstairs) or implicit singletons. A
//!   transaction's records reach the medium together, sealed by a
//!   `Commit` record, at the group-commit **sync**. Only then is the
//!   operation acked;
//! * committed-but-not-yet-checkpointed page states sit in a
//!   fixed-capacity **buffer cache** ([`crate::cache`]); a commit that
//!   pushes it over capacity writes a CLOCK-chosen victim back to its
//!   frame (log first — its covering records are already synced) and
//!   evicts it;
//! * a **checkpoint** (every `checkpoint_every` commits) flushes the
//!   pages dirtied by *committed* transactions to their frames — never
//!   an uncommitted page image, that's the no-steal half — syncs the
//!   frames, and then truncates the log. Open transactions lose
//!   nothing: their records are (re-)written in full when they commit;
//! * **recovery** classifies every frame by magic + CRC (live / freed /
//!   never-written / torn), parses the log's valid prefix (per-record
//!   CRC — a torn tail ends the prefix), replays the records of
//!   committed transactions in order, rebuilds quarantined torn frames
//!   from their full-page redo images, and reconstructs the volatile
//!   cache with [`PageStore::restore`].
//!
//! The write ordering (log sync **before** frame flush **before** log
//! truncate) makes every torn frame rebuildable: a frame is only
//! (re)written at a checkpoint, by which time the committed records
//! covering it are already durable in the log.
//!
//! Replay is **LSN-gated**: a redo record applies only to a frame whose
//! stamp is older than the record. The gate matters when power dies
//! *mid-truncate*: the frames already hold the full checkpointed state
//! (flushes precede the truncate, each stamped with an LSN newer than
//! every logged record), but a valid *prefix* of the pre-checkpoint log
//! survives. Blindly replaying that prefix would regress exactly the
//! prefix-covered pages to older images while the rest keep their new
//! frames — tearing multi-page transactions apart after the fact (one
//! split half old, the other new). Torn frames carry no trustworthy
//! stamp, so the gate treats them as infinitely old and the newest
//! committed redo image wins, as before.
//!
//! # Durability points
//!
//! The medium transitions at exactly three kinds of instant — a log
//! sync, a frame write (checkpoint flush or cache writeback), a log
//! truncate — and each consults the [`CrashPlan`]: the armed point
//! applies a seeded prefix [`Tear`] to the in-flight bytes and the
//! store dies ([`Error::PowerLoss`]), freezing the image mid-write for
//! recovery to face. The `fsync` calls the file backend adds are *not*
//! durability points — they only promote already-written bytes — so
//! the point sequence is identical on both backends.
//!
//! [`Tear`]: crate::Tear

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ceh_obs::MetricsHandle;
use ceh_types::{Error, PageId, Result};
use parking_lot::Mutex;

use crate::backend::{DiskHandle, PageBackend};
use crate::cache::{BufferCache, FrameState};
use crate::crash::CrashPlan;
use crate::page::PageBuf;
use crate::store::{PageStore, PageStoreConfig};
use crate::wal::{check_redo_image, crc32, parse_wal, WalRecord};

/// Bytes of frame header preceding each page's payload on the medium:
/// magic (4) + flags (4) + LSN (8) + CRC32 (4).
pub const FRAME_HEADER: usize = 20;

const FRAME_MAGIC: u32 = 0xCE11_F4A3;
const FLAG_LIVE: u32 = 1;

/// Configuration for a [`DurableStore`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// The volatile cache's configuration (page size, poisoning, …).
    pub page: PageStoreConfig,
    /// Sync the log after this many commits (1 = every commit is
    /// immediately durable, the "ack ⇒ durable" default the oracle
    /// assumes).
    pub group_commit: usize,
    /// Checkpoint after this many synced commits.
    pub checkpoint_every: usize,
    /// Dirty-page buffer cache capacity, in pages: committed states
    /// beyond this are written back (CLOCK victim) before the next
    /// checkpoint. The default is large enough that the deterministic
    /// crash fixtures never evict.
    pub cache_pages: usize,
    /// Power-cut schedule; `None` = power stays on.
    pub plan: Option<CrashPlan>,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            page: PageStoreConfig::default(),
            group_commit: 1,
            checkpoint_every: 32,
            cache_pages: 1024,
            plan: None,
        }
    }
}

impl DurableConfig {
    /// Small pages for tests that want to force splits cheaply.
    pub fn small(page_size: usize) -> Self {
        DurableConfig {
            page: PageStoreConfig::small(page_size),
            ..Default::default()
        }
    }
}

/// One logged mutation, buffered until its transaction commits.
#[derive(Debug, Clone)]
enum TxnOp {
    Write(PageId, Vec<u8>),
    Alloc(PageId),
    Dealloc(PageId),
}

/// Volatile log-side bookkeeping, all under one lock (commit order =
/// log order).
#[derive(Debug)]
struct WalState {
    /// Encoded records not yet synced to the medium.
    buf: Vec<u8>,
    /// Open transactions' buffered ops, in program order.
    open: HashMap<u64, Vec<TxnOp>>,
    /// Latest committed state per page since the last checkpoint,
    /// bounded by `DurableConfig::cache_pages`.
    cache: BufferCache,
    /// Commits sitting in `buf` awaiting the group sync.
    pending_commits: usize,
    /// Synced commits since the last checkpoint.
    commits_since_ckpt: usize,
    next_txn: u64,
    next_lsn: u64,
}

impl WalState {
    fn new(cache_pages: usize, next_txn: u64, next_lsn: u64) -> Self {
        WalState {
            buf: Vec::new(),
            open: HashMap::new(),
            cache: BufferCache::new(cache_pages),
            pending_commits: 0,
            commits_since_ckpt: 0,
            next_txn,
            next_lsn,
        }
    }
}

/// WAL/replay/checkpoint instruments (all under `storage.wal.` /
/// `storage.recovery.`).
#[derive(Debug)]
struct WalMetrics {
    records: Arc<ceh_obs::Counter>,
    commits: Arc<ceh_obs::Counter>,
    aborts: Arc<ceh_obs::Counter>,
    syncs: Arc<ceh_obs::Counter>,
    sync_bytes: Arc<ceh_obs::Counter>,
    checkpoints: Arc<ceh_obs::Counter>,
    frames_flushed: Arc<ceh_obs::Counter>,
    power_cuts: Arc<ceh_obs::Counter>,
}

impl WalMetrics {
    fn new(h: &MetricsHandle) -> Self {
        WalMetrics {
            records: h.counter("storage.wal.records"),
            commits: h.counter("storage.wal.commits"),
            aborts: h.counter("storage.wal.aborts"),
            syncs: h.counter("storage.wal.syncs"),
            sync_bytes: h.counter("storage.wal.sync_bytes"),
            checkpoints: h.counter("storage.wal.checkpoints"),
            frames_flushed: h.counter("storage.wal.frames_flushed"),
            power_cuts: h.counter("storage.wal.power_cuts"),
        }
    }
}

/// Backend-level instruments (`storage.backend.*`): how often the
/// medium is synced and written, and what each sync costs — on the
/// file backend, real fsync latency.
#[derive(Debug)]
struct BackendMetrics {
    syncs: Arc<ceh_obs::Counter>,
    sync_ns: Arc<ceh_obs::Histogram>,
    frame_writes: Arc<ceh_obs::Counter>,
    wal_appends: Arc<ceh_obs::Counter>,
}

impl BackendMetrics {
    fn new(h: &MetricsHandle) -> Self {
        BackendMetrics {
            syncs: h.counter("storage.backend.syncs"),
            sync_ns: h.histogram("storage.backend.sync_ns"),
            frame_writes: h.counter("storage.backend.frame_writes"),
            wal_appends: h.counter("storage.backend.wal_appends"),
        }
    }
}

/// Buffer-cache instruments (`storage.cache.*`): a hit is a committed
/// state landing on an already-dirty page, a miss takes a new slot,
/// and evictions count the CLOCK writebacks forced by capacity.
#[derive(Debug)]
struct CacheMetrics {
    hits: Arc<ceh_obs::Counter>,
    misses: Arc<ceh_obs::Counter>,
    evictions: Arc<ceh_obs::Counter>,
    writebacks: Arc<ceh_obs::Counter>,
}

impl CacheMetrics {
    fn new(h: &MetricsHandle) -> Self {
        CacheMetrics {
            hits: h.counter("storage.cache.hits"),
            misses: h.counter("storage.cache.misses"),
            evictions: h.counter("storage.cache.evictions"),
            writebacks: h.counter("storage.cache.writebacks"),
        }
    }
}

/// What [`DurableStore::recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Frame regions on the medium.
    pub frames: usize,
    /// Frames holding a checksum-valid live page.
    pub live: usize,
    /// Frames holding a checksum-valid freed marker.
    pub freed: usize,
    /// Torn frames (bad magic/CRC) quarantined and rebuilt from redo.
    pub torn: usize,
    /// Whole records parsed from the log's valid prefix.
    pub wal_records: usize,
    /// Did the log end in a torn tail?
    pub wal_torn_tail: bool,
    /// Committed transactions replayed.
    pub txns_committed: usize,
    /// Uncommitted transactions discarded (no `Commit` record durable).
    pub txns_discarded: usize,
    /// Redo records applied.
    pub redo_applied: usize,
}

thread_local! {
    /// The calling thread's open transaction: `(store uid, txn id)`.
    /// Mutation funnels attach to it; absent, they auto-commit.
    static AMBIENT_TXN: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

static NEXT_STORE_UID: AtomicU64 = AtomicU64::new(1);

/// RAII handle for a logged multi-page transaction (a split, merge, or
/// directory double upstairs). Commit with [`DurableTxn::commit`];
/// dropping without committing **aborts** — the buffered records never
/// reach the medium, so recovery sees none of the transaction (the
/// volatile cache may retain partial effects, exactly like the
/// volatile-only store does on an error path today).
///
/// Transactions are per-thread (the funnels attach via a thread-local);
/// nested `begin_txn` calls return pass-through guards that defer to
/// the outermost one.
#[must_use = "dropping a DurableTxn without commit() aborts it"]
pub struct DurableTxn {
    store: Option<Arc<DurableStore>>,
    txn: u64,
    committed: bool,
    /// Bound to the opening thread's ambient slot.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl DurableTxn {
    /// A no-op guard for volatile-only callers, so higher layers can
    /// bracket their critical sections unconditionally.
    pub fn noop() -> Self {
        DurableTxn {
            store: None,
            txn: 0,
            committed: false,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Seal the transaction: its records become durable (synced per the
    /// group-commit config) and survive any later crash.
    pub fn commit(mut self) -> Result<()> {
        let Some(store) = self.store.take() else {
            return Ok(()); // no-op or nested guard
        };
        AMBIENT_TXN.with(|c| c.set(None));
        self.committed = true;
        store.commit_txn(self.txn)
    }
}

impl Drop for DurableTxn {
    fn drop(&mut self) {
        if let Some(store) = self.store.take() {
            if !self.committed {
                AMBIENT_TXN.with(|c| c.set(None));
                store.abort_txn(self.txn);
            }
        }
    }
}

/// The durable store: [`PageStore`] semantics (same per-page atomicity
/// contract) with write-ahead logging underneath. See the module docs
/// for the protocol.
pub struct DurableStore {
    uid: u64,
    cfg: DurableConfig,
    cache: Arc<PageStore>,
    disk: DiskHandle,
    state: Mutex<WalState>,
    dead: AtomicBool,
    wal_metrics: WalMetrics,
    backend_metrics: BackendMetrics,
    cache_metrics: CacheMetrics,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("uid", &self.uid)
            // ceh-lint: allow(relaxed-ordering) — Debug snapshot; no data depends on it
            .field("dead", &self.dead.load(Ordering::Relaxed))
            .field("cache", &self.cache)
            .finish()
    }
}

impl DurableStore {
    /// A fresh store over a blank in-memory medium.
    pub fn new(cfg: DurableConfig, metrics: &MetricsHandle) -> Arc<Self> {
        let disk = DiskHandle::new(cfg.page.page_size);
        Self::with_disk(disk, cfg, metrics).expect("fresh in-memory medium matches config")
    }

    /// A fresh store over a provided (blank) medium — the seam that
    /// picks the backend: hand it a [`DiskHandle::new`] for the
    /// simulated image or a [`DiskHandle::create_file`] /
    /// [`DiskHandle::open_file`] for real files. To bring back existing
    /// contents, use [`DurableStore::recover`] instead.
    pub fn with_disk(
        disk: DiskHandle,
        cfg: DurableConfig,
        metrics: &MetricsHandle,
    ) -> Result<Arc<Self>> {
        if disk.page_size() != cfg.page.page_size {
            return Err(Error::Config(format!(
                "medium has {}-byte pages, config wants {}",
                disk.page_size(),
                cfg.page.page_size
            )));
        }
        let cache = Arc::new(PageStore::with_metrics(cfg.page.clone(), metrics));
        Ok(Arc::new(DurableStore {
            uid: NEXT_STORE_UID.fetch_add(1, Ordering::Relaxed),
            disk,
            cache,
            state: Mutex::new(WalState::new(cfg.cache_pages, 1, 1)),
            dead: AtomicBool::new(false),
            wal_metrics: WalMetrics::new(metrics),
            backend_metrics: BackendMetrics::new(metrics),
            cache_metrics: CacheMetrics::new(metrics),
            cfg,
        }))
    }

    /// The volatile cache (for wiring into layers that take a
    /// `&PageStore`-shaped read path).
    pub fn cache(&self) -> &Arc<PageStore> {
        &self.cache
    }

    /// The nonvolatile medium's handle — clone it to survive the store.
    pub fn disk(&self) -> DiskHandle {
        self.disk.clone()
    }

    /// This store's unique id (keys the thread-local transaction slot).
    pub fn store_uid(&self) -> u64 {
        self.uid
    }

    /// Has power been cut?
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Cut power cleanly **now**: unsynced log bytes and all volatile
    /// state are lost; the medium keeps exactly what was synced. Every
    /// later operation fails with [`Error::PowerLoss`].
    pub fn power_off(&self) {
        if !self.dead.swap(true, Ordering::AcqRel) {
            self.wal_metrics.power_cuts.inc();
        }
    }

    fn die(&self) -> Error {
        self.power_off();
        Error::PowerLoss
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_dead() {
            return Err(Error::PowerLoss);
        }
        Ok(())
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.cache.page_size()
    }

    /// A fresh zeroed buffer of the right size.
    pub fn new_buf(&self) -> PageBuf {
        self.cache.new_buf()
    }

    // ----- transactions ---------------------------------------------

    /// Open a logged transaction on the calling thread. Mutations made
    /// through this store on this thread buffer into it until
    /// [`DurableTxn::commit`] (or abort on drop). Nested calls return
    /// pass-through guards.
    pub fn begin_txn(self: &Arc<Self>) -> Result<DurableTxn> {
        self.check_alive()?;
        if let Some((uid, _)) = AMBIENT_TXN.with(|c| c.get()) {
            if uid == self.uid {
                // Already inside a transaction on this store: defer to it.
                return Ok(DurableTxn::noop());
            }
        }
        let txn = {
            let mut st = self.state.lock();
            let txn = st.next_txn;
            st.next_txn += 1;
            st.open.insert(txn, Vec::new());
            txn
        };
        AMBIENT_TXN.with(|c| c.set(Some((self.uid, txn))));
        Ok(DurableTxn {
            store: Some(Arc::clone(self)),
            txn,
            committed: false,
            _not_send: std::marker::PhantomData,
        })
    }

    fn commit_txn(&self, txn: u64) -> Result<()> {
        self.check_alive()?;
        let mut st = self.state.lock();
        let ops = st.open.remove(&txn).unwrap_or_default();
        if ops.is_empty() {
            return Ok(());
        }
        self.commit_ops(&mut st, txn, ops)
    }

    fn abort_txn(&self, txn: u64) {
        self.state.lock().open.remove(&txn);
        self.wal_metrics.aborts.inc();
    }

    /// Encode `ops` + a `Commit` record into the log buffer, fold them
    /// into the checkpoint work list, and sync/checkpoint per config.
    fn commit_ops(&self, st: &mut WalState, txn: u64, ops: Vec<TxnOp>) -> Result<()> {
        for op in &ops {
            let lsn = st.next_lsn;
            st.next_lsn += 1;
            let rec = match op {
                TxnOp::Write(page, bytes) => WalRecord::PageWrite {
                    txn,
                    lsn,
                    page: *page,
                    bytes: bytes.clone(),
                },
                TxnOp::Alloc(page) => WalRecord::Alloc {
                    txn,
                    lsn,
                    page: *page,
                },
                TxnOp::Dealloc(page) => WalRecord::Dealloc {
                    txn,
                    lsn,
                    page: *page,
                },
            };
            rec.encode_into(&mut st.buf);
            self.wal_metrics.records.inc();
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        WalRecord::Commit { txn, lsn }.encode_into(&mut st.buf);
        self.wal_metrics.records.inc();
        self.wal_metrics.commits.inc();
        for op in ops {
            let hit = match op {
                TxnOp::Write(page, bytes) => st.cache.insert(page.0, FrameState::Live(bytes)),
                TxnOp::Alloc(page) => {
                    // A fresh page is all zeroes until its first write.
                    st.cache
                        .insert_if_absent(page.0, || FrameState::Live(vec![0; self.page_size()]))
                }
                TxnOp::Dealloc(page) => st.cache.insert(page.0, FrameState::Freed),
            };
            if hit {
                self.cache_metrics.hits.inc();
            } else {
                self.cache_metrics.misses.inc();
            }
        }
        st.pending_commits += 1;
        if st.pending_commits >= self.cfg.group_commit {
            self.sync_locked(st)?;
        }
        if st.commits_since_ckpt >= self.cfg.checkpoint_every {
            self.checkpoint_locked(st)?;
        }
        // Capacity pressure: write CLOCK victims back to their frames.
        // Log first — sync_locked makes the covering records durable
        // before any page image lands — so a crash after the writeback
        // replays (or LSN-skips) them consistently. Each writeback is a
        // frame-write durability point like any checkpoint flush.
        while st.cache.over_capacity() {
            self.sync_locked(st)?;
            let Some((page, fs)) = st.cache.evict() else {
                break;
            };
            {
                let mut be = self.disk.backend();
                self.flush_frame(st, &mut *be, page, &fs)?;
            }
            self.cache_metrics.evictions.inc();
            self.cache_metrics.writebacks.inc();
        }
        Ok(())
    }

    /// Record one mutation: into the thread's open transaction, or as
    /// an auto-committed singleton.
    fn log_op(&self, op: TxnOp) -> Result<()> {
        let ambient = AMBIENT_TXN.with(|c| c.get());
        let mut st = self.state.lock();
        if let Some((uid, txn)) = ambient {
            if uid == self.uid {
                if let Some(ops) = st.open.get_mut(&txn) {
                    ops.push(op);
                    return Ok(());
                }
            }
        }
        let txn = st.next_txn;
        st.next_txn += 1;
        self.commit_ops(&mut st, txn, vec![op])
    }

    // ----- durability points ----------------------------------------

    /// Sync the medium's WAL (or frames), timing the call — on the
    /// file backend this is a real fsync; in memory it's free. Not a
    /// durability point: it only promotes already-written bytes.
    fn timed_sync(&self, be: &mut dyn PageBackend, frames: bool) -> Result<()> {
        let t = std::time::Instant::now();
        if frames {
            be.sync_frames()?;
        } else {
            be.sync_wal()?;
        }
        self.backend_metrics.syncs.inc();
        self.backend_metrics
            .sync_ns
            .record(t.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Flush the log buffer to the medium and sync it (the fsync).
    /// Durability point: the appended bytes can tear.
    fn sync_locked(&self, st: &mut WalState) -> Result<()> {
        if st.buf.is_empty() {
            return Ok(());
        }
        let bytes = std::mem::take(&mut st.buf);
        st.commits_since_ckpt += st.pending_commits;
        st.pending_commits = 0;
        let mut be = self.disk.backend();
        if let Some(plan) = &self.cfg.plan {
            if let Some(tear) = plan.at_point(bytes.len()) {
                be.append_wal(&bytes[..tear.keep])?;
                drop(be);
                return Err(self.die());
            }
        }
        be.append_wal(&bytes)?;
        self.backend_metrics.wal_appends.inc();
        self.timed_sync(&mut *be, false)?;
        drop(be);
        self.wal_metrics.syncs.inc();
        self.wal_metrics.sync_bytes.add(bytes.len() as u64);
        Ok(())
    }

    /// Write one committed page state to its frame, stamped with a
    /// fresh LSN. Durability point: the frame bytes can tear (growth
    /// happens first, like a file extended before the write).
    fn flush_frame(
        &self,
        st: &mut WalState,
        be: &mut dyn PageBackend,
        page: u64,
        fs: &FrameState,
    ) -> Result<()> {
        let lsn = st.next_lsn; // stamp frames with a fresh LSN
        st.next_lsn += 1;
        let frame = encode_frame(fs, lsn, self.page_size());
        let frame_size = FRAME_HEADER + self.page_size();
        let at = page as usize * frame_size;
        be.grow_frames(at + frame_size)?;
        if let Some(plan) = &self.cfg.plan {
            if let Some(tear) = plan.at_point(frame.len()) {
                be.write_frame(at, &frame[..tear.keep])?;
                return Err(self.die());
            }
        }
        be.write_frame(at, &frame)?;
        self.wal_metrics.frames_flushed.inc();
        self.backend_metrics.frame_writes.inc();
        Ok(())
    }

    /// Flush committed dirty pages to their frames, sync the frames,
    /// then truncate the log. Durability points: each frame write,
    /// then the truncate. The frame sync *before* the truncate is the
    /// file backend's ordering rule: a frame image (checkpoint flush or
    /// earlier cache writeback) must be durable before the log records
    /// covering it disappear.
    fn checkpoint_locked(&self, st: &mut WalState) -> Result<()> {
        self.sync_locked(st)?;
        let dirty = st.cache.drain_sorted();
        let mut be = self.disk.backend();
        for (page, fs) in dirty {
            self.flush_frame(st, &mut *be, page, &fs)?;
        }
        self.timed_sync(&mut *be, true)?;
        // Truncate the log. A tear here models an in-place truncate
        // caught midway: a valid prefix of already-applied records
        // survives, all older than the frame stamps written above, so
        // the LSN-gated replay skips every one of them.
        if let Some(plan) = &self.cfg.plan {
            let len = be.wal_len();
            if let Some(tear) = plan.at_point(len) {
                be.truncate_wal(tear.keep)?;
                drop(be);
                return Err(self.die());
            }
        }
        be.truncate_wal(0)?;
        self.timed_sync(&mut *be, false)?;
        drop(be);
        st.commits_since_ckpt = 0;
        self.wal_metrics.checkpoints.inc();
        Ok(())
    }

    /// Force a group-commit sync now (flush any buffered commits).
    pub fn sync(&self) -> Result<()> {
        self.check_alive()?;
        self.sync_locked(&mut self.state.lock())
    }

    /// Force a checkpoint now.
    pub fn checkpoint(&self) -> Result<()> {
        self.check_alive()?;
        self.checkpoint_locked(&mut self.state.lock())
    }

    // ----- PageStore-shaped surface ---------------------------------

    /// Allocate a page (logged).
    pub fn alloc(&self) -> Result<PageId> {
        self.check_alive()?;
        let page = self.cache.alloc()?;
        self.log_op(TxnOp::Alloc(page))?;
        Ok(page)
    }

    /// Deallocate a page (logged).
    pub fn dealloc(&self, page: PageId) -> Result<()> {
        self.check_alive()?;
        self.cache.dealloc(page)?;
        self.log_op(TxnOp::Dealloc(page))
    }

    /// Read a whole page — straight from the volatile cache; reads are
    /// not logged.
    pub fn read(&self, page: PageId, buf: &mut PageBuf) -> Result<()> {
        self.check_alive()?;
        self.cache.read(page, buf)
    }

    /// Write a whole page: redo record first, then the cache (same
    /// per-page atomicity contract as [`PageStore::write`]).
    pub fn write(&self, page: PageId, buf: &PageBuf) -> Result<()> {
        self.check_alive()?;
        self.log_op(TxnOp::Write(page, buf.to_vec()))?;
        self.cache.write(page, buf)
    }

    /// Currently allocated page ids (quiescent use only).
    pub fn allocated_page_ids(&self) -> Vec<PageId> {
        self.cache.allocated_page_ids()
    }

    // ----- recovery -------------------------------------------------

    /// Bring a medium back to life: verify checksums, quarantine torn
    /// frames, replay the committed log, rebuild the volatile cache,
    /// and persist the recovered state (so recovery itself is
    /// crash-consistent — a `cfg.plan` armed at a point reached during
    /// the final flush tears the medium again, and a second `recover`
    /// must land in the same place; the idempotence property test
    /// drives exactly that).
    pub fn recover(
        disk: &DiskHandle,
        cfg: DurableConfig,
        metrics: &MetricsHandle,
    ) -> Result<(Arc<Self>, RecoveryReport)> {
        let span = metrics.trace_begin(ceh_obs::TraceCtx::current(), "storage", "recover", 0, 0);
        let out = Self::recover_inner(disk, cfg, metrics);
        match &out {
            Ok((_, rep)) => metrics.trace_end(
                span,
                "storage",
                "recover",
                rep.redo_applied as u64,
                rep.torn as u64,
            ),
            Err(_) => metrics.trace_end(span, "storage", "recover", u64::MAX, 0),
        }
        out
    }

    fn recover_inner(
        disk: &DiskHandle,
        cfg: DurableConfig,
        metrics: &MetricsHandle,
    ) -> Result<(Arc<Self>, RecoveryReport)> {
        let image = disk.try_snapshot()?;
        if image.page_size != cfg.page.page_size {
            return Err(Error::Config(format!(
                "medium has {}-byte pages, config wants {}",
                image.page_size, cfg.page.page_size
            )));
        }
        let mut report = RecoveryReport::default();

        // 1. Classify frames. A trailing partial region (a crash during
        //    frame-array growth) cannot hold committed-only data —
        //    growth happens before the frame write whose redo is still
        //    logged — so it is treated as one torn frame.
        let frame_size = FRAME_HEADER + image.page_size;
        let nframes = image.frames.len().div_ceil(frame_size);
        report.frames = nframes;
        let mut slots: Vec<Slot> = (0..nframes)
            .map(|i| {
                let at = i * frame_size;
                let end = (at + frame_size).min(image.frames.len());
                classify_frame(&image.frames[at..end], frame_size)
            })
            .collect();
        report.live = slots
            .iter()
            .filter(|s| matches!(s, Slot::Live { .. }))
            .count();
        report.freed = slots
            .iter()
            .filter(|s| matches!(s, Slot::Free { .. }))
            .count();
        report.torn = slots.iter().filter(|s| matches!(s, Slot::Torn)).count();

        // 2. Parse the log's valid prefix and find the committed set.
        let (records, torn_tail) = parse_wal(&image.wal);
        report.wal_records = records.len();
        report.wal_torn_tail = torn_tail;
        let committed: HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn, .. } => Some(*txn),
                _ => None,
            })
            .collect();
        let all_txns: HashSet<u64> = records.iter().map(|r| r.txn()).collect();
        report.txns_committed = committed.len();
        report.txns_discarded = all_txns.len() - committed.len();

        // 3. Replay committed records in log order, LSN-gated: a record
        //    only applies over a frame whose stamp is older (see module
        //    docs — a torn truncate leaves newer frames than the
        //    surviving log prefix, and regressing them would tear
        //    committed multi-page transactions). Full-page images make
        //    the applied subset idempotent, and it is what rebuilds
        //    torn frames.
        let mut max_lsn = 0u64;
        let mut max_txn = 0u64;
        for rec in &records {
            max_lsn = max_lsn.max(rec.lsn());
            max_txn = max_txn.max(rec.txn());
            if !committed.contains(&rec.txn()) {
                continue;
            }
            check_redo_image(rec, image.page_size)?;
            let idx = match rec {
                WalRecord::PageWrite { page, .. }
                | WalRecord::Alloc { page, .. }
                | WalRecord::Dealloc { page, .. } => page.0 as usize,
                WalRecord::Commit { .. } => continue,
            };
            grow_slots(&mut slots, idx);
            if rec.lsn() < slots[idx].lsn() {
                continue; // the frame already holds a newer image
            }
            slots[idx] = match rec {
                WalRecord::PageWrite { bytes, lsn, .. } => Slot::Live {
                    bytes: bytes.clone(),
                    lsn: *lsn,
                },
                WalRecord::Alloc { lsn, .. } => Slot::Live {
                    bytes: vec![0; image.page_size],
                    lsn: *lsn,
                },
                WalRecord::Dealloc { lsn, .. } => Slot::Free { lsn: *lsn },
                WalRecord::Commit { .. } => unreachable!("handled above"),
            };
            report.redo_applied += 1;
        }

        // 4. Any torn frame the committed log does not cover is real
        //    corruption: the write ordering guarantees coverage, so
        //    this can only mean the medium rotted outside a crash.
        if let Some(i) = slots.iter().position(|s| matches!(s, Slot::Torn)) {
            return Err(Error::Corrupt(format!(
                "torn frame for p{i} has no committed redo image"
            )));
        }

        // 5. Rebuild the volatile cache with the exact allocation map.
        let pages: Vec<Option<PageBuf>> = slots
            .iter()
            .map(|s| match s {
                Slot::Live { bytes, .. } => {
                    let mut buf = PageBuf::zeroed(image.page_size);
                    buf.copy_from_slice(bytes);
                    Some(buf)
                }
                Slot::Free { .. } => None,
                Slot::Torn => unreachable!("torn frames rebuilt or rejected above"),
            })
            .collect();
        let cache = Arc::new(PageStore::restore(cfg.page.clone(), pages, metrics));

        let store = Arc::new(DurableStore {
            uid: NEXT_STORE_UID.fetch_add(1, Ordering::Relaxed),
            disk: disk.clone(),
            cache,
            state: Mutex::new(WalState::new(cfg.cache_pages, max_txn + 1, max_lsn + 1)),
            dead: AtomicBool::new(false),
            wal_metrics: WalMetrics::new(metrics),
            backend_metrics: BackendMetrics::new(metrics),
            cache_metrics: CacheMetrics::new(metrics),
            cfg,
        });

        // 6. Persist the recovered state: every slot becomes a clean
        //    frame and the log empties. This walks the same durability
        //    points as a normal checkpoint, so an armed plan can cut
        //    power *during recovery* — the double-crash case. Slots are
        //    seeded without hit/miss accounting (recovery isn't
        //    workload traffic) and regardless of cache capacity: the
        //    checkpoint drains them all immediately.
        {
            let mut st = store.state.lock();
            for (i, s) in slots.into_iter().enumerate() {
                let fs = match s {
                    Slot::Live { bytes, .. } => FrameState::Live(bytes),
                    Slot::Free { .. } => FrameState::Freed,
                    Slot::Torn => unreachable!(),
                };
                st.cache.seed(i as u64, fs);
            }
            store.checkpoint_locked(&mut st)?;
        }

        let h = metrics;
        h.counter("storage.recovery.runs").inc();
        h.counter("storage.recovery.redo_applied")
            .add(report.redo_applied as u64);
        h.counter("storage.recovery.torn_frames")
            .add(report.torn as u64);
        h.counter("storage.recovery.txns_discarded")
            .add(report.txns_discarded as u64);
        Ok((store, report))
    }
}

/// A frame's classification during recovery. Live and freed frames
/// carry their stamped LSN so replay can be gated: a redo record only
/// applies over a frame *older* than itself (never-written regions
/// report LSN 0, torn frames have no trustworthy stamp and accept any
/// committed image).
enum Slot {
    Live { bytes: Vec<u8>, lsn: u64 },
    Free { lsn: u64 },
    Torn,
}

impl Slot {
    /// The stamp replay compares record LSNs against.
    fn lsn(&self) -> u64 {
        match self {
            Slot::Live { lsn, .. } | Slot::Free { lsn } => *lsn,
            Slot::Torn => 0,
        }
    }
}

fn grow_slots(slots: &mut Vec<Slot>, idx: usize) {
    while slots.len() <= idx {
        slots.push(Slot::Free { lsn: 0 });
    }
}

fn encode_frame(fs: &FrameState, lsn: u64, page_size: usize) -> Vec<u8> {
    let (flags, payload): (u32, std::borrow::Cow<'_, [u8]>) = match fs {
        FrameState::Live(bytes) => (FLAG_LIVE, bytes.as_slice().into()),
        // Freed frames keep a poison payload so debris is recognizable
        // in hexdumps; correctness only needs the cleared flag.
        FrameState::Freed => (0, vec![crate::page::POISON_BYTE; page_size].into()),
    };
    let mut frame = Vec::with_capacity(FRAME_HEADER + page_size);
    frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    frame.extend_from_slice(&flags.to_le_bytes());
    frame.extend_from_slice(&lsn.to_le_bytes());
    // CRC over flags + lsn + payload (offsets 4..16 plus the body).
    let mut sum = Vec::with_capacity(12 + payload.len());
    sum.extend_from_slice(&flags.to_le_bytes());
    sum.extend_from_slice(&lsn.to_le_bytes());
    sum.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&sum).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn classify_frame(region: &[u8], frame_size: usize) -> Slot {
    if region.iter().all(|&b| b == 0) {
        // Never written (frame-array growth zero-fills).
        return Slot::Free { lsn: 0 };
    }
    if region.len() < frame_size {
        return Slot::Torn; // partial trailing region
    }
    let magic = u32::from_le_bytes(region[0..4].try_into().expect("slice len"));
    if magic != FRAME_MAGIC {
        return Slot::Torn;
    }
    let flags = u32::from_le_bytes(region[4..8].try_into().expect("slice len"));
    let lsn = u64::from_le_bytes(region[8..16].try_into().expect("slice len"));
    let crc = u32::from_le_bytes(region[16..20].try_into().expect("slice len"));
    let mut sum = Vec::with_capacity(region.len() - 8);
    sum.extend_from_slice(&region[4..16]);
    sum.extend_from_slice(&region[FRAME_HEADER..]);
    if crc32(&sum) != crc {
        return Slot::Torn;
    }
    if flags & FLAG_LIVE != 0 {
        Slot::Live {
            bytes: region[FRAME_HEADER..].to_vec(),
            lsn,
        }
    } else {
        Slot::Free { lsn }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(page_size: usize) -> DurableConfig {
        DurableConfig::small(page_size)
    }

    fn filled(store: &DurableStore, byte: u8) -> PageBuf {
        let mut b = store.new_buf();
        b.fill(byte);
        b
    }

    #[test]
    fn acked_singleton_write_survives_power_loss() {
        let s = DurableStore::new(cfg(64), &MetricsHandle::new());
        let p = s.alloc().unwrap();
        s.write(p, &filled(&s, 0xA1)).unwrap();
        s.power_off();
        assert_eq!(s.read(p, &mut s.new_buf()).unwrap_err(), Error::PowerLoss);

        let (r, rep) = DurableStore::recover(&s.disk(), cfg(64), &MetricsHandle::new()).unwrap();
        assert_eq!(rep.txns_committed, 2, "alloc + write singletons");
        let mut buf = r.new_buf();
        r.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xA1));
    }

    #[test]
    fn uncommitted_txn_leaves_no_durable_trace() {
        let s = DurableStore::new(cfg(64), &MetricsHandle::new());
        let p = s.alloc().unwrap(); // acked singleton
        s.write(p, &filled(&s, 0x11)).unwrap(); // acked
        let txn = s.begin_txn().unwrap();
        let q = s.alloc().unwrap(); // buffered
        s.write(q, &filled(&s, 0x22)).unwrap(); // buffered
        s.write(p, &filled(&s, 0x33)).unwrap(); // buffered overwrite
        drop(txn); // power dies before commit
        s.power_off();

        let (r, rep) = DurableStore::recover(&s.disk(), cfg(64), &MetricsHandle::new()).unwrap();
        let mut buf = r.new_buf();
        r.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x11), "overwrite not durable");
        assert_eq!(
            r.read(q, &mut r.new_buf()).unwrap_err(),
            Error::PageFault { page: q.0 },
            "uncommitted alloc not durable"
        );
        assert_eq!(rep.txns_discarded, 0, "aborted txn never reached the log");
    }

    #[test]
    fn committed_txn_is_atomic_across_recovery() {
        let s = DurableStore::new(cfg(64), &MetricsHandle::new());
        let p = s.alloc().unwrap();
        s.write(p, &filled(&s, 0x01)).unwrap();
        let txn = s.begin_txn().unwrap();
        let q = s.alloc().unwrap();
        s.write(q, &filled(&s, 0x02)).unwrap();
        s.write(p, &filled(&s, 0x03)).unwrap();
        txn.commit().unwrap();
        s.power_off();

        let (r, _) = DurableStore::recover(&s.disk(), cfg(64), &MetricsHandle::new()).unwrap();
        let mut buf = r.new_buf();
        r.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x03));
        r.read(q, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x02));
    }

    #[test]
    fn checkpoint_then_more_commits_then_recover() {
        let s = DurableStore::new(cfg(64), &MetricsHandle::new());
        let p = s.alloc().unwrap();
        let q = s.alloc().unwrap();
        s.write(p, &filled(&s, 0x0A)).unwrap();
        s.write(q, &filled(&s, 0x0B)).unwrap();
        s.checkpoint().unwrap();
        assert!(s.disk().snapshot().wal.is_empty(), "checkpoint truncates");
        s.write(p, &filled(&s, 0x0C)).unwrap(); // post-checkpoint commit
        s.dealloc(q).unwrap();
        s.power_off();

        let (r, rep) = DurableStore::recover(&s.disk(), cfg(64), &MetricsHandle::new()).unwrap();
        let mut buf = r.new_buf();
        r.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x0C));
        assert_eq!(
            r.read(q, &mut r.new_buf()).unwrap_err(),
            Error::PageFault { page: q.0 }
        );
        assert!(rep.live >= 1, "checkpointed frames found: {rep:?}");
    }

    #[test]
    fn dropping_the_store_is_a_power_cut() {
        let disk;
        let p;
        {
            let s = DurableStore::new(cfg(64), &MetricsHandle::new());
            p = s.alloc().unwrap();
            s.write(p, &filled(&s, 0x5A)).unwrap();
            disk = s.disk();
        } // volatile cache gone
        let (r, _) = DurableStore::recover(&disk, cfg(64), &MetricsHandle::new()).unwrap();
        let mut buf = r.new_buf();
        r.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn nested_begin_txn_defers_to_the_outer_one() {
        let s = DurableStore::new(cfg(64), &MetricsHandle::new());
        let outer = s.begin_txn().unwrap();
        let p = s.alloc().unwrap();
        {
            let inner = s.begin_txn().unwrap();
            s.write(p, &filled(&s, 0x77)).unwrap();
            inner.commit().unwrap(); // no-op: outer still open
        }
        s.power_off();
        drop(outer);
        let (r, _) = DurableStore::recover(&s.disk(), cfg(64), &MetricsHandle::new()).unwrap();
        assert_eq!(
            r.read(p, &mut r.new_buf()).unwrap_err(),
            Error::PageFault { page: p.0 },
            "everything was in the (never committed) outer txn"
        );
    }

    #[test]
    fn recovery_is_idempotent_even_when_it_crashes() {
        // Build a medium with a checkpoint + post-checkpoint commits.
        let s = DurableStore::new(cfg(64), &MetricsHandle::new());
        let p = s.alloc().unwrap();
        let q = s.alloc().unwrap();
        s.write(p, &filled(&s, 0x10)).unwrap();
        s.write(q, &filled(&s, 0x20)).unwrap();
        s.checkpoint().unwrap();
        s.write(p, &filled(&s, 0x30)).unwrap();
        s.power_off();
        let disk = s.disk();

        // Reference recovery (no crash).
        let (r0, _) = DurableStore::recover(&disk, cfg(64), &MetricsHandle::new()).unwrap();
        let mut want_p = r0.new_buf();
        r0.read(p, &mut want_p).unwrap();
        let mut want_q = r0.new_buf();
        r0.read(q, &mut want_q).unwrap();

        // Crash recovery's persist step at every reachable point, then
        // recover again — the final state must match the reference.
        for point in 1..32 {
            let crash_cfg = DurableConfig {
                plan: Some(CrashPlan::armed(9, point)),
                ..cfg(64)
            };
            match DurableStore::recover(&disk, crash_cfg, &MetricsHandle::new()) {
                Ok(_) => break, // past the last reachable point
                Err(Error::PowerLoss) => {}
                Err(e) => panic!("unexpected recovery error at point {point}: {e}"),
            }
            let (r, _) = DurableStore::recover(&disk, cfg(64), &MetricsHandle::new()).unwrap();
            let mut buf = r.new_buf();
            r.read(p, &mut buf).unwrap();
            assert_eq!(&*buf, &*want_p, "point {point}: p diverged");
            r.read(q, &mut buf).unwrap();
            assert_eq!(&*buf, &*want_q, "point {point}: q diverged");
        }
    }

    #[test]
    fn torn_frame_is_rebuilt_from_redo() {
        // Points: alloc sync = 1, write sync = 2, checkpoint frame
        // flush = 3, log truncate = 4. Arming point 3 tears the frame
        // mid-flush; the already-synced log still covers it.
        let crash_cfg = DurableConfig {
            plan: Some(CrashPlan::armed(3, 3)),
            ..cfg(64)
        };
        let s = DurableStore::new(crash_cfg, &MetricsHandle::new());
        let p = s.alloc().unwrap();
        let mut b = s.new_buf();
        b.fill(0xEE);
        s.write(p, &b).unwrap(); // acked before the crash point
        assert_eq!(s.checkpoint().unwrap_err(), Error::PowerLoss);
        let (r, _) = DurableStore::recover(&s.disk(), cfg(64), &MetricsHandle::new()).unwrap();
        let mut buf = r.new_buf();
        r.read(p, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0xEE), "acked write survived");
    }

    #[test]
    fn sweep_over_every_point_of_a_tiny_workload() {
        // Count, then crash at each point; every recovery must yield a
        // store whose acked pages read back exactly.
        let run = |plan: CrashPlan| -> (DiskHandle, Vec<(PageId, u8)>, CrashPlan) {
            let c = DurableConfig {
                plan: Some(plan.clone()),
                checkpoint_every: 2,
                ..cfg(64)
            };
            let s = DurableStore::new(c, &MetricsHandle::new());
            let mut acked = Vec::new();
            'work: for i in 0..6u8 {
                let Ok(p) = s.alloc() else { break 'work };
                let mut b = s.new_buf();
                b.fill(0x40 + i);
                if s.write(p, &b).is_err() {
                    break 'work;
                }
                acked.push((p, 0x40 + i));
            }
            (s.disk(), acked, plan)
        };
        let (_, _, counter) = run(CrashPlan::count_only(11));
        let total = counter.points();
        assert!(total > 4, "workload reaches several points: {total}");
        for point in 1..=total {
            let (disk, acked, plan) = run(CrashPlan::armed(11, point));
            assert!(plan.fired(), "point {point} must fire");
            let (r, _) = DurableStore::recover(&disk, cfg(64), &MetricsHandle::new()).unwrap();
            for (p, byte) in acked {
                let mut buf = r.new_buf();
                r.read(p, &mut buf)
                    .unwrap_or_else(|e| panic!("point {point}: acked {p} lost: {e}"));
                assert!(
                    buf.iter().all(|&x| x == byte),
                    "point {point}: acked {p} corrupted"
                );
            }
        }
    }

    #[test]
    fn wal_metrics_flow_into_the_shared_registry() {
        let h = MetricsHandle::new();
        let s = DurableStore::new(cfg(64), &h);
        let p = s.alloc().unwrap();
        s.write(p, &filled(&s, 1)).unwrap();
        s.checkpoint().unwrap();
        let m = h.snapshot();
        assert!(m.counter("storage.wal.records") >= 2);
        assert_eq!(m.counter("storage.wal.commits"), 2);
        assert!(m.counter("storage.wal.syncs") >= 1);
        assert_eq!(m.counter("storage.wal.checkpoints"), 1);
        assert!(m.counter("storage.wal.frames_flushed") >= 1);

        s.power_off();
        let h2 = MetricsHandle::new();
        let _ = DurableStore::recover(&s.disk(), cfg(64), &h2).unwrap();
        assert_eq!(h2.snapshot().counter("storage.recovery.runs"), 1);
    }
}
