//! # ceh-storage — the simulated disk
//!
//! The paper's algorithms assume that "buckets are assumed to occupy
//! physical pages on disk which are read and written as single operations"
//! (§2.1). That atomicity is **load-bearing**: ρ- and α-locks are
//! compatible, so a reader may `getbucket` a page *while* an inserter
//! `putbucket`s it, and the correctness arguments of §2.3/§2.5 ("a reader
//! will see either the old or the new bucket") only hold if page writes
//! are indivisible.
//!
//! [`PageStore`] provides exactly that substrate:
//!
//! * whole-page [`PageStore::read`] / [`PageStore::write`] (the paper's
//!   `getbucket`/`putbucket`), each atomic with respect to the other —
//!   implemented with a per-page latch held only for the duration of the
//!   copy, which models the disk controller's single-operation semantics
//!   without providing any synchronization beyond it;
//! * [`PageStore::alloc`] / [`PageStore::dealloc`] (`allocbucket` /
//!   `deallocbucket`) backed by a free list;
//! * **freed-page poisoning**: deallocated pages are filled with a poison
//!   byte and reads of unallocated pages return
//!   [`ceh_types::Error::PageFault`], so any locking-protocol violation
//!   that lets a process touch a reclaimed bucket trips immediately
//!   instead of silently reading stale data;
//! * [`IoStats`] counters and optional injected latency, used by the
//!   benchmark harness.
//!
//! On top of the volatile substrate sits the **durability layer** (see
//! [`durable`]): [`DurableStore`] wraps a `PageStore` with a redo
//! write-ahead log over a nonvolatile medium (CRC-guarded frames +
//! log), group commit, a fixed-capacity dirty-page buffer cache with
//! CLOCK writeback, checkpointing, seeded power-cut injection via
//! [`CrashPlan`], and crash recovery ([`DurableStore::recover`]).
//!
//! Where the medium's bytes live is the [`backend`] layer's choice
//! ([`PageBackend`]): the deterministic in-memory [`DiskImage`] the
//! chaos and crash fuzzers sweep, or a real file-backed medium
//! ([`FileBackend`]) with `pwrite`/`fsync` — byte-identical layouts,
//! so either recovers the other's disk.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
mod cache;
mod crash;
pub mod durable;
mod page;
mod stats;
mod store;
pub mod wal;

pub use backend::{BackendKind, DiskHandle, DiskImage, FileBackend, MemBackend, PageBackend};
pub use crash::{CrashPlan, Tear};
pub use durable::{DurableConfig, DurableStore, DurableTxn, RecoveryReport, FRAME_HEADER};
pub use page::{PageBuf, POISON_BYTE};
pub use stats::{IoStats, IoStatsSnapshot};
pub use store::{PageStore, PageStoreConfig};
pub use wal::{crc32, parse_wal, WalRecord};
