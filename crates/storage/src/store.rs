//! The page store.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ceh_types::{Error, PageId, Result};
use parking_lot::{Mutex, RwLock};

use crate::page::{PageBuf, POISON_BYTE};
use crate::stats::{IoStats, IoStatsSnapshot};

/// Configuration for a [`PageStore`].
#[derive(Debug, Clone)]
pub struct PageStoreConfig {
    /// Size of every page in bytes.
    pub page_size: usize,
    /// Number of page slots created eagerly.
    pub initial_pages: usize,
    /// Hard cap on the number of pages (None = grow without bound).
    pub max_pages: Option<usize>,
    /// Busy-wait latency injected into each read and write, in
    /// nanoseconds. Zero disables. Models disk access cost for the
    /// benchmark harness.
    pub io_latency_ns: u64,
    /// Fill freed pages with [`POISON_BYTE`] and fault on access to
    /// unallocated pages. On by default; the concurrency torture tests
    /// rely on it to catch protocol violations.
    pub poison_freed: bool,
}

impl Default for PageStoreConfig {
    fn default() -> Self {
        PageStoreConfig {
            page_size: 4096,
            initial_pages: 64,
            max_pages: None,
            io_latency_ns: 0,
            poison_freed: true,
        }
    }
}

impl PageStoreConfig {
    /// Small pages for tests that want to force splits cheaply.
    pub fn small(page_size: usize) -> Self {
        PageStoreConfig {
            page_size,
            ..Default::default()
        }
    }
}

/// One page's physical storage: a latch plus (for memory backing) the
/// bytes.
///
/// The latch is held only for the duration of a single whole-page copy; it
/// models the disk's "read and written as single operations" guarantee
/// (§2.1) and deliberately provides no other synchronization — the
/// *locking protocols* under test are responsible for everything else.
/// With file backing the box is empty and the latch guards the pread/
/// pwrite of the page's file region instead.
struct PageSlot {
    bytes: Mutex<Box<[u8]>>,
    allocated: AtomicBool,
}

/// Where page bytes physically live.
enum Backing {
    /// In each slot's box (the default simulation).
    Memory,
    /// In a real file, one page per `page_size` region, accessed with
    /// positioned reads/writes under the per-page latch. Same atomicity
    /// contract, real durability.
    File(std::fs::File),
}

/// Simulated (or file-backed) secondary storage holding fixed-size pages.
///
/// Cloneable handle semantics: wrap in [`Arc`] (or use
/// [`PageStore::new_shared`]) to share between the threads playing the
/// paper's "processes".
pub struct PageStore {
    cfg: PageStoreConfig,
    backing: Backing,
    /// Grow-only slot table. The outer `RwLock` is only write-locked when
    /// the store grows; steady-state accesses take the read lock, which is
    /// uncontended and cheap.
    slots: RwLock<Vec<Arc<PageSlot>>>,
    /// Free list of deallocated page ids, reused LIFO.
    free: Mutex<Vec<PageId>>,
    stats: IoStats,
    /// Current simulated per-I/O latency in nanoseconds (see
    /// [`PageStore::set_io_latency_ns`]).
    io_latency_ns: AtomicU64,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStore")
            .field("page_size", &self.cfg.page_size)
            .field("slots", &self.slots.read().len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl PageStore {
    /// Create an in-memory store with the given configuration and a
    /// private metrics registry.
    pub fn new(cfg: PageStoreConfig) -> Self {
        Self::with_metrics(cfg, &ceh_obs::MetricsHandle::default())
    }

    /// Create an in-memory store whose I/O statistics land in `metrics`'
    /// registry (under the `storage.` prefix), correlated with every
    /// other layer wired to the same handle.
    pub fn with_metrics(cfg: PageStoreConfig, metrics: &ceh_obs::MetricsHandle) -> Self {
        let slots = (0..cfg.initial_pages)
            .map(|_| Arc::new(Self::empty_slot(&cfg, true)))
            .collect();
        // Seed the free list with the initial pool, reversed so pages are
        // handed out in ascending order (stable figure goldens).
        let free = (0..cfg.initial_pages as u64).rev().map(PageId).collect();
        let io_latency_ns = AtomicU64::new(cfg.io_latency_ns);
        PageStore {
            backing: Backing::Memory,
            slots: RwLock::new(slots),
            free: Mutex::new(free),
            cfg,
            stats: IoStats::with_handle(metrics),
            io_latency_ns,
        }
    }

    /// Create an `Arc`-wrapped store (the common sharing pattern).
    pub fn new_shared(cfg: PageStoreConfig) -> Arc<Self> {
        Arc::new(Self::new(cfg))
    }

    /// `Arc`-wrapped [`PageStore::with_metrics`].
    pub fn new_shared_with_metrics(
        cfg: PageStoreConfig,
        metrics: &ceh_obs::MetricsHandle,
    ) -> Arc<Self> {
        Arc::new(Self::with_metrics(cfg, metrics))
    }

    /// Create (or truncate) a **file-backed** store at `path`. Pages live
    /// in the file, one `page_size` region each, read and written under
    /// the same per-page latch — the identical atomicity contract as the
    /// in-memory store, with real durability. `initial_pages` is ignored
    /// (the file grows on demand); simulated latency still applies on
    /// top of the real I/O if configured.
    pub fn create_file(path: impl AsRef<std::path::Path>, cfg: PageStoreConfig) -> Result<Self> {
        Self::create_file_with_metrics(path, cfg, &ceh_obs::MetricsHandle::default())
    }

    /// [`PageStore::create_file`] reporting into `metrics`' registry.
    pub fn create_file_with_metrics(
        path: impl AsRef<std::path::Path>,
        cfg: PageStoreConfig,
        metrics: &ceh_obs::MetricsHandle,
    ) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::Config(format!("cannot create backing file: {e}")))?;
        let io_latency_ns = AtomicU64::new(cfg.io_latency_ns);
        Ok(PageStore {
            backing: Backing::File(file),
            slots: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            cfg,
            stats: IoStats::with_handle(metrics),
            io_latency_ns,
        })
    }

    /// Open an **existing** file-backed store for recovery. Every page
    /// region present in the file is treated as allocated; callers (e.g.
    /// `ceh_sequential::SequentialHashFile::recover`) decide which pages
    /// hold live buckets (deallocated pages were poisoned and fail to
    /// decode) and return the rest via [`PageStore::dealloc`].
    ///
    /// A trailing **partial** page — the footprint of a crash that
    /// interrupted the file mid-growth — is truncated away: page writes
    /// always land at page-aligned offsets, so a short tail can only be
    /// an allocation that never completed a `putbucket`, and nothing in
    /// the directory can reference it.
    pub fn open_file(path: impl AsRef<std::path::Path>, cfg: PageStoreConfig) -> Result<Self> {
        Self::open_file_with_metrics(path, cfg, &ceh_obs::MetricsHandle::default())
    }

    /// [`PageStore::open_file`] reporting into `metrics`' registry.
    pub fn open_file_with_metrics(
        path: impl AsRef<std::path::Path>,
        cfg: PageStoreConfig,
        metrics: &ceh_obs::MetricsHandle,
    ) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| Error::Config(format!("cannot open backing file: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| Error::Config(format!("cannot stat backing file: {e}")))?
            .len() as usize;
        let npages = len / cfg.page_size;
        if len % cfg.page_size != 0 {
            file.set_len((npages * cfg.page_size) as u64)
                .map_err(|e| Error::Io(format!("truncating torn tail page: {e}")))?;
        }
        let slots = (0..npages)
            .map(|_| {
                let s = Self::empty_slot(&cfg, false);
                // ceh-lint: allow(relaxed-ordering) — recovery runs single-threaded before sharing
                s.allocated.store(true, Ordering::Relaxed);
                Arc::new(s)
            })
            .collect();
        let io_latency_ns = AtomicU64::new(cfg.io_latency_ns);
        Ok(PageStore {
            backing: Backing::File(file),
            slots: RwLock::new(slots),
            free: Mutex::new(Vec::new()),
            cfg,
            stats: IoStats::with_handle(metrics),
            io_latency_ns,
        })
    }

    /// Rebuild an in-memory store from recovered page images:
    /// `pages[i]` is `Some(bytes)` for an allocated page `i` with
    /// exactly those contents, `None` for a free slot. The allocation
    /// map is reproduced exactly, so page ids embedded in recovered
    /// buckets (directory entries, next/prev links) stay valid. Used by
    /// the durable layer's crash recovery.
    pub fn restore(
        cfg: PageStoreConfig,
        pages: Vec<Option<PageBuf>>,
        metrics: &ceh_obs::MetricsHandle,
    ) -> Self {
        let mut free = Vec::new();
        let slots: Vec<Arc<PageSlot>> = pages
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let slot = Self::empty_slot(&cfg, true);
                match p {
                    Some(buf) => {
                        assert_eq!(buf.len(), cfg.page_size, "restored page size mismatch");
                        slot.bytes.lock().copy_from_slice(&buf);
                        // ceh-lint: allow(relaxed-ordering) — recovery runs single-threaded before sharing
                        slot.allocated.store(true, Ordering::Relaxed);
                    }
                    None => {
                        if cfg.poison_freed {
                            slot.bytes.lock().fill(POISON_BYTE);
                        }
                        free.push(PageId(i as u64));
                    }
                }
                Arc::new(slot)
            })
            .collect();
        // LIFO free list, reversed so the lowest free id pops first
        // (matching the fresh-store allocation order).
        free.reverse();
        let io_latency_ns = AtomicU64::new(cfg.io_latency_ns);
        PageStore {
            backing: Backing::Memory,
            slots: RwLock::new(slots),
            free: Mutex::new(free),
            cfg,
            stats: IoStats::with_handle(metrics),
            io_latency_ns,
        }
    }

    /// Is this store file-backed?
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backing, Backing::File(_))
    }

    fn empty_slot(cfg: &PageStoreConfig, with_bytes: bool) -> PageSlot {
        let bytes = if with_bytes {
            vec![0u8; cfg.page_size].into_boxed_slice()
        } else {
            Box::default()
        };
        PageSlot {
            bytes: Mutex::new(bytes),
            allocated: AtomicBool::new(false),
        }
    }

    /// The configured page size.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.cfg.page_size
    }

    /// A fresh zeroed buffer of the right size for this store.
    pub fn new_buf(&self) -> PageBuf {
        PageBuf::zeroed(self.cfg.page_size)
    }

    /// The I/O counters.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// Reset the I/O counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    /// Number of page slots that currently exist (allocated or free).
    pub fn capacity(&self) -> usize {
        self.slots.read().len()
    }

    /// Number of currently allocated pages.
    pub fn allocated_pages(&self) -> usize {
        self.slots
            .read()
            .iter()
            // ceh-lint: allow(relaxed-ordering) — advisory census; alloc/free is guarded upstream
            .filter(|s| s.allocated.load(Ordering::Relaxed))
            .count()
    }

    fn slot(&self, page: PageId) -> Result<Arc<PageSlot>> {
        let slots = self.slots.read();
        slots
            .get(page.0 as usize)
            .cloned()
            .ok_or(Error::PageFault { page: page.0 })
    }

    /// Change the simulated per-I/O latency at runtime. The benchmark
    /// harness preloads with latency disabled, then enables it for the
    /// measured phase.
    pub fn set_io_latency_ns(&self, ns: u64) {
        // ceh-lint: allow(relaxed-ordering) — simulation knob; no data depends on it
        self.io_latency_ns.store(ns, Ordering::Relaxed);
    }

    /// The current simulated per-I/O latency.
    pub fn io_latency_ns(&self) -> u64 {
        // ceh-lint: allow(relaxed-ordering) — simulation knob; no data depends on it
        self.io_latency_ns.load(Ordering::Relaxed)
    }

    fn simulate_latency(&self) {
        // ceh-lint: allow(relaxed-ordering) — simulation knob; no data depends on it
        let ns = self.io_latency_ns.load(Ordering::Relaxed);
        if ns == 0 {
            return;
        }
        // The simulated cost *is* the I/O time; recording the configured
        // value (rather than measuring the spin/sleep) keeps the zero-
        // latency fast path free of clock reads.
        self.stats.record_io_ns(ns);
        if ns >= 10_000 {
            // Long latencies sleep: the thread yields its core, so
            // concurrent I/Os overlap like real disk requests do — which
            // is the effect the paper's protocols exist to exploit.
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        } else {
            // Sub-10µs latencies spin: OS sleep granularity (~60µs) would
            // distort them far more than burning the core does.
            let start = std::time::Instant::now();
            while (start.elapsed().as_nanos() as u64) < ns {
                std::hint::spin_loop();
            }
        }
    }

    /// Allocate a fresh page (`allocbucket`). The page's contents start
    /// zeroed (or poisoned garbage if it was previously freed — callers
    /// must write before reading, as the paper's `putbucket(newpage, …)`
    /// always does).
    pub fn alloc(&self) -> Result<PageId> {
        if let Some(p) = self.free.lock().pop() {
            let slot = self.slot(p)?;
            slot.allocated.store(true, Ordering::Release);
            self.stats.record_alloc();
            return Ok(p);
        }
        // Free list empty: grow the slot table. Every page id ever created
        // is either allocated or on the free list, so appending is the
        // only growth path.
        let mut slots = self.slots.write();
        if let Some(max) = self.cfg.max_pages {
            if slots.len() >= max {
                return Err(Error::OutOfPages);
            }
        }
        let slot = Arc::new(Self::empty_slot(
            &self.cfg,
            matches!(self.backing, Backing::Memory),
        ));
        slot.allocated.store(true, Ordering::Release);
        slots.push(slot);
        if let Backing::File(f) = &self.backing {
            // Guarantee the page's region exists so a read-before-write
            // (never done by the protocols, but defensively possible)
            // gets zeroes instead of a short read.
            f.set_len((slots.len() * self.cfg.page_size) as u64)
                .map_err(|e| Error::Io(format!("growing backing file: {e}")))?;
        }
        self.stats.record_alloc();
        Ok(PageId((slots.len() - 1) as u64))
    }

    /// Deallocate a page (`deallocbucket`). With poisoning enabled the
    /// page is overwritten with [`POISON_BYTE`] so later reads through a
    /// stale pointer decode as garbage, and direct reads fault — and, on
    /// file backing, so a later [`PageStore::open_file`] recovery can
    /// tell freed regions from live buckets.
    pub fn dealloc(&self, page: PageId) -> Result<()> {
        let slot = self.slot(page)?;
        if !slot.allocated.swap(false, Ordering::AcqRel) {
            self.stats.record_page_fault();
            return Err(Error::PageFault { page: page.0 });
        }
        if self.cfg.poison_freed {
            let mut bytes = slot.bytes.lock();
            match &self.backing {
                Backing::Memory => bytes.fill(POISON_BYTE),
                Backing::File(f) => {
                    use std::os::unix::fs::FileExt;
                    let poison = vec![POISON_BYTE; self.cfg.page_size];
                    f.write_all_at(&poison, page.0 * self.cfg.page_size as u64)
                        .map_err(|e| Error::Io(format!("poisoning {page}: {e}")))?;
                }
            }
        }
        self.free.lock().push(page);
        self.stats.record_dealloc();
        Ok(())
    }

    /// Read a whole page into `buf` (`getbucket(page, buffer)`). Atomic
    /// with respect to concurrent [`PageStore::write`]s of the same page.
    pub fn read(&self, page: PageId, buf: &mut PageBuf) -> Result<()> {
        assert_eq!(buf.len(), self.cfg.page_size, "buffer/page size mismatch");
        let slot = self.slot(page)?;
        if self.cfg.poison_freed && !slot.allocated.load(Ordering::Acquire) {
            self.stats.record_page_fault();
            return Err(Error::PageFault { page: page.0 });
        }
        self.simulate_latency();
        {
            let bytes = slot.bytes.lock();
            match &self.backing {
                Backing::Memory => buf.copy_from_slice(&bytes),
                Backing::File(f) => {
                    use std::os::unix::fs::FileExt;
                    f.read_exact_at(buf, page.0 * self.cfg.page_size as u64)
                        .map_err(|e| Error::Io(format!("reading {page}: {e}")))?;
                }
            }
        }
        self.stats.record_read();
        Ok(())
    }

    /// Write a whole page from `buf` (`putbucket(page, buffer)`). Atomic
    /// with respect to concurrent [`PageStore::read`]s of the same page.
    pub fn write(&self, page: PageId, buf: &PageBuf) -> Result<()> {
        assert_eq!(buf.len(), self.cfg.page_size, "buffer/page size mismatch");
        let slot = self.slot(page)?;
        if self.cfg.poison_freed && !slot.allocated.load(Ordering::Acquire) {
            self.stats.record_page_fault();
            return Err(Error::PageFault { page: page.0 });
        }
        self.simulate_latency();
        {
            let mut bytes = slot.bytes.lock();
            match &self.backing {
                Backing::Memory => bytes.copy_from_slice(buf),
                Backing::File(f) => {
                    use std::os::unix::fs::FileExt;
                    f.write_all_at(buf, page.0 * self.cfg.page_size as u64)
                        .map_err(|e| Error::Io(format!("writing {page}: {e}")))?;
                }
            }
        }
        self.stats.record_write();
        Ok(())
    }

    /// List all currently allocated page ids (quiescent use only — the
    /// invariant checker and the figure-golden tests).
    pub fn allocated_page_ids(&self) -> Vec<PageId> {
        self.slots
            .read()
            .iter()
            .enumerate()
            // ceh-lint: allow(relaxed-ordering) — advisory census; alloc/free is guarded upstream
            .filter(|(_, s)| s.allocated.load(Ordering::Relaxed))
            .map(|(i, _)| PageId(i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> PageStore {
        PageStore::new(PageStoreConfig {
            page_size: 64,
            initial_pages: 2,
            ..Default::default()
        })
    }

    #[test]
    fn alloc_write_read_roundtrip() {
        let s = store();
        let p = s.alloc().unwrap();
        let mut buf = s.new_buf();
        buf[0] = 0xAB;
        buf[63] = 0xCD;
        s.write(p, &buf).unwrap();
        let mut out = s.new_buf();
        s.read(p, &mut out).unwrap();
        assert_eq!(&*out, &*buf);
    }

    #[test]
    fn grows_past_initial_pages() {
        let s = store();
        let ids: Vec<_> = (0..10).map(|_| s.alloc().unwrap()).collect();
        // All distinct.
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(s.capacity() >= 10);
    }

    #[test]
    fn max_pages_enforced() {
        let s = PageStore::new(PageStoreConfig {
            page_size: 32,
            initial_pages: 0,
            max_pages: Some(3),
            ..Default::default()
        });
        for _ in 0..3 {
            s.alloc().unwrap();
        }
        assert_eq!(s.alloc().unwrap_err(), Error::OutOfPages);
    }

    #[test]
    fn dealloc_poisons_and_faults() {
        let s = store();
        let p = s.alloc().unwrap();
        let buf = s.new_buf();
        s.write(p, &buf).unwrap();
        s.dealloc(p).unwrap();
        let mut out = s.new_buf();
        assert_eq!(
            s.read(p, &mut out).unwrap_err(),
            Error::PageFault { page: p.0 }
        );
        assert_eq!(
            s.write(p, &buf).unwrap_err(),
            Error::PageFault { page: p.0 }
        );
        // Double free faults too.
        assert_eq!(s.dealloc(p).unwrap_err(), Error::PageFault { page: p.0 });
    }

    #[test]
    fn freed_pages_are_reused() {
        let s = store();
        let p = s.alloc().unwrap();
        s.dealloc(p).unwrap();
        let q = s.alloc().unwrap();
        assert_eq!(p, q, "LIFO free list should hand back the freed page");
        // Reused page is readable again (contents are poison garbage until
        // written, which is fine: allocbucket is always followed by
        // putbucket before any reader can reach the page).
        let mut buf = s.new_buf();
        s.read(q, &mut buf).unwrap();
    }

    #[test]
    fn stats_track_io() {
        let s = store();
        let p = s.alloc().unwrap();
        let buf = s.new_buf();
        s.write(p, &buf).unwrap();
        let mut out = s.new_buf();
        s.read(p, &mut out).unwrap();
        s.read(p, &mut out).unwrap();
        let snap = s.stats();
        assert_eq!(snap.allocs, 1);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.live_pages(), 1);
    }

    #[test]
    fn allocated_page_ids_lists_live_pages() {
        let s = store();
        let a = s.alloc().unwrap();
        let b = s.alloc().unwrap();
        s.dealloc(a).unwrap();
        assert_eq!(s.allocated_page_ids(), vec![b]);
    }

    #[test]
    fn file_backed_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("ceh-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.ceh");
        let cfg = PageStoreConfig {
            page_size: 128,
            initial_pages: 0,
            ..Default::default()
        };

        let (a, b);
        {
            let s = PageStore::create_file(&path, cfg.clone()).unwrap();
            assert!(s.is_file_backed());
            a = s.alloc().unwrap();
            b = s.alloc().unwrap();
            let mut buf = s.new_buf();
            buf.fill(0x11);
            s.write(a, &buf).unwrap();
            buf.fill(0x22);
            s.write(b, &buf).unwrap();
            // Free one page: poisoned on disk.
            s.dealloc(b).unwrap();
        }
        // Reopen: both regions exist; the freed one reads back poison.
        let s = PageStore::open_file(&path, cfg).unwrap();
        assert_eq!(s.capacity(), 2);
        let mut buf = s.new_buf();
        s.read(a, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0x11), "live page survived reopen");
        s.read(b, &mut buf).unwrap();
        assert!(buf.is_poisoned(), "freed page poisoned on disk");
        // Recovery-style dealloc of the poisoned page, then reuse it.
        s.dealloc(b).unwrap();
        let c = s.alloc().unwrap();
        assert_eq!(c, b, "freed region reused");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backed_pages_are_not_torn_either() {
        // The §2.1 atomicity contract must hold identically on the file
        // backing: readers never observe a mix of two writes.
        use std::sync::atomic::AtomicBool;
        let dir = std::env::temp_dir().join(format!("ceh-store-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let s = Arc::new(
            PageStore::create_file(
                dir.join("torn.ceh"),
                PageStoreConfig {
                    page_size: 256,
                    initial_pages: 0,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let p = s.alloc().unwrap();
        let mut a = s.new_buf();
        a.fill(0xAA);
        s.write(p, &a).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let (s, stop) = (Arc::clone(&s), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut b = PageBuf::zeroed(256);
                b.fill(0xBB);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    s.write(p, if i % 2 == 0 { &a } else { &b }).unwrap();
                    i += 1;
                }
            })
        };
        let reader = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut buf = PageBuf::zeroed(256);
                for _ in 0..5_000 {
                    s.read(p, &mut buf).unwrap();
                    let first = buf[0];
                    assert!(buf.iter().all(|&x| x == first), "torn file-backed read");
                }
            })
        };
        reader.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backed_truncates_torn_tail_page() {
        // A crash during file growth leaves a partial trailing page; a
        // reopen must discard exactly that tail and keep the whole pages.
        let dir = std::env::temp_dir().join(format!("ceh-store-mis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn-tail.ceh");
        std::fs::write(&path, vec![0x55u8; 64 + 30]).unwrap();
        let cfg = PageStoreConfig {
            page_size: 64,
            ..Default::default()
        };
        let s = PageStore::open_file(&path, cfg).unwrap();
        assert_eq!(s.capacity(), 1, "the one whole page survives");
        let mut buf = s.new_buf();
        s.read(PageId(0), &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0x55));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            64,
            "tail debris gone"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers_see_whole_pages() {
        // Torn-write detector: writers alternate between all-A and all-B
        // pages; readers must never observe a mix. This is the §2.1 page
        // atomicity assumption made testable.
        use std::sync::atomic::AtomicBool;
        let s = Arc::new(PageStore::new(PageStoreConfig {
            page_size: 256,
            initial_pages: 1,
            ..Default::default()
        }));
        let p = s.alloc().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let mut a_buf = s.new_buf();
        a_buf.fill(0xAA);
        s.write(p, &a_buf).unwrap();

        let writer = {
            let (s, stop) = (Arc::clone(&s), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut a = PageBuf::zeroed(256);
                a.fill(0xAA);
                let mut b = PageBuf::zeroed(256);
                b.fill(0xBB);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    s.write(p, if i % 2 == 0 { &a } else { &b }).unwrap();
                    i += 1;
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let (s, stop) = (Arc::clone(&s), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let mut buf = PageBuf::zeroed(256);
                    for _ in 0..20_000 {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        s.read(p, &mut buf).unwrap();
                        let first = buf[0];
                        assert!(
                            buf.iter().all(|&x| x == first),
                            "torn page read: starts {first:02x}"
                        );
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
    }
}
