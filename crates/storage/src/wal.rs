//! Write-ahead-log record codec and the CRC32 used by both the WAL and
//! the per-page frame headers.
//!
//! The log is a byte stream of self-describing records:
//!
//! ```text
//! [len u32][crc u32][kind u8][txn u64][lsn u64][kind-specific payload]
//! ```
//!
//! `len` counts the bytes after the `crc` field; `crc` covers exactly
//! those bytes. A crash can cut the stream anywhere — recovery walks
//! records from the front and stops at the first one whose length
//! overruns the remaining bytes or whose checksum fails: that is the
//! torn tail, and everything before it is exactly the durable prefix.

use ceh_types::{Error, PageId, Result};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the same
/// checksum ext4 and gzip use for integrity tags. Table-driven, built
/// at first use; no external dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Fixed prefix of every record: `len` + `crc`.
pub const REC_PREFIX: usize = 8;
/// Fixed body header: `kind` + `txn` + `lsn`.
pub const REC_HEADER: usize = 1 + 8 + 8;

const KIND_PAGE_WRITE: u8 = 1;
const KIND_ALLOC: u8 = 2;
const KIND_DEALLOC: u8 = 3;
const KIND_COMMIT: u8 = 4;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Redo image: the page's complete post-write contents.
    PageWrite {
        /// Transaction the write belongs to.
        txn: u64,
        /// Log sequence number of the write.
        lsn: u64,
        /// The page written.
        page: PageId,
        /// The full page image.
        bytes: Vec<u8>,
    },
    /// The page was allocated.
    Alloc {
        /// Transaction the allocation belongs to.
        txn: u64,
        /// Log sequence number.
        lsn: u64,
        /// The page allocated.
        page: PageId,
    },
    /// The page was deallocated.
    Dealloc {
        /// Transaction the deallocation belongs to.
        txn: u64,
        /// Log sequence number.
        lsn: u64,
        /// The page freed.
        page: PageId,
    },
    /// The transaction's durability point: all of its records are to be
    /// replayed iff this record made it to the durable log.
    Commit {
        /// The committing transaction.
        txn: u64,
        /// Log sequence number.
        lsn: u64,
    },
}

impl WalRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            WalRecord::PageWrite { txn, .. }
            | WalRecord::Alloc { txn, .. }
            | WalRecord::Dealloc { txn, .. }
            | WalRecord::Commit { txn, .. } => *txn,
        }
    }

    /// The record's log sequence number.
    pub fn lsn(&self) -> u64 {
        match self {
            WalRecord::PageWrite { lsn, .. }
            | WalRecord::Alloc { lsn, .. }
            | WalRecord::Dealloc { lsn, .. }
            | WalRecord::Commit { lsn, .. } => *lsn,
        }
    }

    /// Append the record's encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(REC_HEADER + 16);
        let (kind, txn, lsn) = match self {
            WalRecord::PageWrite { txn, lsn, .. } => (KIND_PAGE_WRITE, *txn, *lsn),
            WalRecord::Alloc { txn, lsn, .. } => (KIND_ALLOC, *txn, *lsn),
            WalRecord::Dealloc { txn, lsn, .. } => (KIND_DEALLOC, *txn, *lsn),
            WalRecord::Commit { txn, lsn } => (KIND_COMMIT, *txn, *lsn),
        };
        body.push(kind);
        body.extend_from_slice(&txn.to_le_bytes());
        body.extend_from_slice(&lsn.to_le_bytes());
        match self {
            WalRecord::PageWrite { page, bytes, .. } => {
                body.extend_from_slice(&page.0.to_le_bytes());
                body.extend_from_slice(bytes);
            }
            WalRecord::Alloc { page, .. } | WalRecord::Dealloc { page, .. } => {
                body.extend_from_slice(&page.0.to_le_bytes());
            }
            WalRecord::Commit { .. } => {}
        }
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
    }

    /// Decode one record starting at `bytes[offset..]`. Returns the
    /// record and the offset just past it, or `None` when the remaining
    /// bytes are not a whole, checksum-valid record (the torn tail).
    pub fn decode_at(bytes: &[u8], offset: usize) -> Option<(WalRecord, usize)> {
        let rest = bytes.get(offset..)?;
        if rest.len() < REC_PREFIX {
            return None;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("slice len")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("slice len"));
        if len < REC_HEADER || rest.len() < REC_PREFIX + len {
            return None;
        }
        let body = &rest[REC_PREFIX..REC_PREFIX + len];
        if crc32(body) != crc {
            return None;
        }
        let kind = body[0];
        let txn = u64::from_le_bytes(body[1..9].try_into().expect("slice len"));
        let lsn = u64::from_le_bytes(body[9..17].try_into().expect("slice len"));
        let payload = &body[REC_HEADER..];
        let page_of = |p: &[u8]| -> Option<PageId> {
            Some(PageId(u64::from_le_bytes(p.get(0..8)?.try_into().ok()?)))
        };
        let rec = match kind {
            KIND_PAGE_WRITE => WalRecord::PageWrite {
                txn,
                lsn,
                page: page_of(payload)?,
                bytes: payload.get(8..)?.to_vec(),
            },
            KIND_ALLOC => WalRecord::Alloc {
                txn,
                lsn,
                page: page_of(payload)?,
            },
            KIND_DEALLOC => WalRecord::Dealloc {
                txn,
                lsn,
                page: page_of(payload)?,
            },
            KIND_COMMIT => WalRecord::Commit { txn, lsn },
            _ => return None,
        };
        Some((rec, offset + REC_PREFIX + len))
    }
}

/// Parse a durable log: every whole, checksum-valid record from the
/// front, plus whether a torn tail (trailing bytes that do not form a
/// valid record) was cut off.
pub fn parse_wal(bytes: &[u8]) -> (Vec<WalRecord>, bool) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match WalRecord::decode_at(bytes, off) {
            Some((rec, next)) => {
                records.push(rec);
                off = next;
            }
            None => return (records, true),
        }
    }
    (records, false)
}

/// Validate that a page image decodes sanely for use as a redo target:
/// the payload must be exactly `page_size` bytes.
pub fn check_redo_image(rec: &WalRecord, page_size: usize) -> Result<()> {
    if let WalRecord::PageWrite { bytes, page, .. } = rec {
        if bytes.len() != page_size {
            return Err(Error::Corrupt(format!(
                "WAL redo image for {page} is {} bytes, page size is {page_size}",
                bytes.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_roundtrip() {
        let recs = vec![
            WalRecord::Alloc {
                txn: 1,
                lsn: 10,
                page: PageId(3),
            },
            WalRecord::PageWrite {
                txn: 1,
                lsn: 11,
                page: PageId(3),
                bytes: vec![0xAB; 64],
            },
            WalRecord::Dealloc {
                txn: 1,
                lsn: 12,
                page: PageId(2),
            },
            WalRecord::Commit { txn: 1, lsn: 13 },
        ];
        let mut buf = Vec::new();
        for r in &recs {
            r.encode_into(&mut buf);
        }
        let (parsed, torn) = parse_wal(&buf);
        assert!(!torn);
        assert_eq!(parsed, recs);
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let mut buf = Vec::new();
        WalRecord::Commit { txn: 7, lsn: 1 }.encode_into(&mut buf);
        let whole = buf.len();
        WalRecord::PageWrite {
            txn: 8,
            lsn: 2,
            page: PageId(0),
            bytes: vec![1; 32],
        }
        .encode_into(&mut buf);
        // Cut the second record anywhere (at least one stray byte must
        // remain for there to be a tail): the first still parses.
        for cut in whole + 1..buf.len() {
            let (parsed, torn) = parse_wal(&buf[..cut]);
            assert_eq!(parsed.len(), 1, "cut at {cut}");
            assert!(torn, "cut at {cut} must flag the tail");
        }
        let (parsed, torn) = parse_wal(&buf);
        assert_eq!(parsed.len(), 2);
        assert!(!torn);
    }

    #[test]
    fn corrupt_body_is_rejected() {
        let mut buf = Vec::new();
        WalRecord::Commit { txn: 7, lsn: 1 }.encode_into(&mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0xFF; // flip a body byte: crc mismatch
        let (parsed, torn) = parse_wal(&buf);
        assert!(parsed.is_empty());
        assert!(torn);
    }
}
