//! I/O accounting, recorded through the unified [`ceh_obs`] metrics
//! plane.
//!
//! Metric names (all under the `storage.` prefix): `storage.reads`,
//! `storage.writes`, `storage.allocs`, `storage.deallocs`,
//! `storage.page_faults`, and `storage.io_ns` — a histogram of
//! simulated per-I/O latency, populated only when the store's
//! `io_latency_ns` is non-zero (with latency disabled, page I/O is a
//! ~75ns memcpy and per-op timing would cost more than the operation).

use std::sync::Arc;

use ceh_obs::{Counter, Histogram, MetricsHandle};

/// I/O instruments maintained by a [`crate::PageStore`].
///
/// Counters are monotone; [`IoStats::snapshot`] takes a coherent-enough
/// copy for reporting (individual counters are exact, cross-counter skew
/// is bounded by in-flight operations).
#[derive(Debug)]
pub struct IoStats {
    reads: Arc<Counter>,
    writes: Arc<Counter>,
    allocs: Arc<Counter>,
    deallocs: Arc<Counter>,
    page_faults: Arc<Counter>,
    io_ns: Arc<Histogram>,
}

impl Default for IoStats {
    fn default() -> Self {
        Self::new()
    }
}

impl IoStats {
    /// Instruments in a fresh private registry (uncorrelated with any
    /// other layer — for standalone stores).
    pub fn new() -> Self {
        Self::with_handle(&MetricsHandle::default())
    }

    /// Instruments registered under `storage.` in `handle`'s registry.
    pub fn with_handle(handle: &MetricsHandle) -> Self {
        IoStats {
            reads: handle.counter("storage.reads"),
            writes: handle.counter("storage.writes"),
            allocs: handle.counter("storage.allocs"),
            deallocs: handle.counter("storage.deallocs"),
            page_faults: handle.counter("storage.page_faults"),
            io_ns: handle.histogram("storage.io_ns"),
        }
    }

    pub(crate) fn record_read(&self) {
        self.reads.inc();
    }

    pub(crate) fn record_write(&self) {
        self.writes.inc();
    }

    pub(crate) fn record_alloc(&self) {
        self.allocs.inc();
    }

    pub(crate) fn record_dealloc(&self) {
        self.deallocs.inc();
    }

    pub(crate) fn record_page_fault(&self) {
        self.page_faults.inc();
    }

    pub(crate) fn record_io_ns(&self, ns: u64) {
        self.io_ns.record(ns);
    }

    /// The simulated-I/O latency histogram (empty unless the store runs
    /// with `io_latency_ns > 0`).
    pub fn io_hist(&self) -> &Histogram {
        &self.io_ns
    }

    /// Copy out the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.get(),
            writes: self.writes.get(),
            allocs: self.allocs.get(),
            deallocs: self.deallocs.get(),
            page_faults: self.page_faults.get(),
        }
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        self.reads.reset();
        self.writes.reset();
        self.allocs.reset();
        self.deallocs.reset();
        self.page_faults.reset();
        self.io_ns.reset();
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    /// Whole-page reads (`getbucket` calls that succeeded).
    pub reads: u64,
    /// Whole-page writes (`putbucket` calls that succeeded).
    pub writes: u64,
    /// Successful page allocations.
    pub allocs: u64,
    /// Successful page deallocations.
    pub deallocs: u64,
    /// Accesses rejected because the page was not allocated.
    pub page_faults: u64,
}

impl IoStatsSnapshot {
    /// Total page I/O operations (reads + writes).
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// Pages currently live according to the counters.
    pub fn live_pages(&self) -> u64 {
        self.allocs.saturating_sub(self.deallocs)
    }

    /// Difference between two snapshots (self - earlier), for measuring an
    /// interval.
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
            deallocs: self.deallocs - earlier.deallocs,
            page_faults: self.page_faults - earlier.page_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_alloc();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.total_io(), 3);
        assert_eq!(snap.live_pages(), 1);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_read();
        let a = s.snapshot();
        s.record_read();
        s.record_write();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn shared_handle_sees_storage_metrics() {
        let handle = MetricsHandle::new();
        let s = IoStats::with_handle(&handle);
        s.record_read();
        s.record_write();
        s.record_io_ns(1000);
        let m = handle.snapshot();
        assert_eq!(m.counter("storage.reads"), 1);
        assert_eq!(m.counter("storage.writes"), 1);
        assert_eq!(m.hist("storage.io_ns").unwrap().sum, 1000);
    }
}
