//! I/O accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe I/O counters maintained by a [`crate::PageStore`].
///
/// Counters are monotone; [`IoStats::snapshot`] takes a coherent-enough
/// copy for reporting (individual counters are exact, cross-counter skew
/// is bounded by in-flight operations).
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    deallocs: AtomicU64,
    page_faults: AtomicU64,
}

impl IoStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_alloc(&self) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dealloc(&self) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_page_fault(&self) {
        self.page_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            page_faults: self.page_faults.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocs.store(0, Ordering::Relaxed);
        self.deallocs.store(0, Ordering::Relaxed);
        self.page_faults.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    /// Whole-page reads (`getbucket` calls that succeeded).
    pub reads: u64,
    /// Whole-page writes (`putbucket` calls that succeeded).
    pub writes: u64,
    /// Successful page allocations.
    pub allocs: u64,
    /// Successful page deallocations.
    pub deallocs: u64,
    /// Accesses rejected because the page was not allocated.
    pub page_faults: u64,
}

impl IoStatsSnapshot {
    /// Total page I/O operations (reads + writes).
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// Pages currently live according to the counters.
    pub fn live_pages(&self) -> u64 {
        self.allocs.saturating_sub(self.deallocs)
    }

    /// Difference between two snapshots (self - earlier), for measuring an
    /// interval.
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
            deallocs: self.deallocs - earlier.deallocs,
            page_faults: self.page_faults - earlier.page_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_alloc();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 2);
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.total_io(), 3);
        assert_eq!(snap.live_pages(), 1);
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = IoStats::new();
        s.record_read();
        let a = s.snapshot();
        s.record_read();
        s.record_write();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }
}
