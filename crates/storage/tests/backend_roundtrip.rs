//! Cross-backend interchange: the bytes a [`FileBackend`] puts on disk
//! and the bytes a [`MemBackend`] holds in its [`DiskImage`] are the
//! *same format*. A medium written by one backend must recover on the
//! other with an identical [`RecoveryReport`] and identical page
//! contents — that is what makes `DiskImage` the interchange format and
//! keeps every crash fixture meaningful on both media.

use std::path::PathBuf;

use ceh_obs::MetricsHandle;
use ceh_storage::{DiskHandle, DiskImage, DurableConfig, DurableStore, PageBuf, RecoveryReport};
use ceh_types::PageId;

const PAGE: usize = 64;

fn cfg() -> DurableConfig {
    DurableConfig {
        checkpoint_every: usize::MAX, // manual checkpoints only
        ..DurableConfig::small(PAGE)
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        TempDir(std::env::temp_dir().join(format!("ceh-rt-{tag}-{}", std::process::id())))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn filled(byte: u8) -> PageBuf {
    let mut b = PageBuf::zeroed(PAGE);
    b.fill(byte);
    b
}

/// A workload that leaves interesting state on *both* halves of the
/// medium: checkpointed frames (live and freed) plus an uncheckpointed
/// WAL suffix with a redo overwrite, a fresh page, and a dealloc.
fn build_workload(disk: &DiskHandle) -> Vec<PageId> {
    let metrics = MetricsHandle::new();
    let store = DurableStore::with_disk(disk.clone(), cfg(), &metrics).unwrap();
    let a = store.alloc().unwrap();
    store.write(a, &filled(0x11)).unwrap();
    let b = store.alloc().unwrap();
    store.write(b, &filled(0x22)).unwrap();
    store.checkpoint().unwrap(); // frames for a, b; log truncated
    store.write(a, &filled(0x33)).unwrap(); // redo over a checkpointed frame
    let c = store.alloc().unwrap();
    store.write(c, &filled(0x44)).unwrap(); // page with no frame yet
    store.dealloc(b).unwrap(); // freed marker pending in the log
    store.power_off();
    vec![a, b, c]
}

/// Recover a medium and pull out everything observable: the report and
/// each surviving page's bytes (dealloc'd pages read as errors).
fn observe(disk: &DiskHandle) -> (RecoveryReport, Vec<Option<Vec<u8>>>, DiskImage) {
    let metrics = MetricsHandle::new();
    let (store, report) = DurableStore::recover(disk, cfg(), &metrics).unwrap();
    let mut pages = Vec::new();
    for raw in 0..3u64 {
        let mut buf = PageBuf::zeroed(PAGE);
        match store.read(PageId(raw), &mut buf) {
            Ok(()) => pages.push(Some(buf.to_vec())),
            Err(_) => pages.push(None),
        }
    }
    store.power_off();
    (report, pages, disk.snapshot())
}

fn assert_expected_contents(pages: &[Option<Vec<u8>>]) {
    assert!(pages[0].as_ref().unwrap().iter().all(|&b| b == 0x33));
    assert!(pages[1].is_none(), "dealloc'd page stays gone");
    assert!(pages[2].as_ref().unwrap().iter().all(|&b| b == 0x44));
}

#[test]
fn a_file_backed_medium_recovers_identically_in_memory() {
    let tmp = TempDir::new("file-to-mem");
    let disk = DiskHandle::create_file(&tmp.0, PAGE).expect("create file backend");
    build_workload(&disk);
    let img = disk.snapshot();
    assert!(
        !img.frames.is_empty() && !img.wal.is_empty(),
        "both halves populated"
    );
    drop(disk);

    // Same bytes, two media: the files reopened cold, and an in-memory
    // image holding the snapshot.
    let file_disk = DiskHandle::open_file(&tmp.0, PAGE).expect("reopen");
    let mem_disk = DiskHandle::from_image(img);

    let (file_report, file_pages, file_after) = observe(&file_disk);
    let (mem_report, mem_pages, mem_after) = observe(&mem_disk);

    assert_eq!(file_report, mem_report, "identical recovery on both media");
    assert_eq!(file_pages, mem_pages, "identical surviving contents");
    assert_expected_contents(&file_pages);
    // Recovery re-persists; the post-recovery media are byte-identical
    // too, so a second hop in either direction changes nothing.
    assert_eq!(file_after, mem_after);
}

#[test]
fn an_in_memory_medium_recovers_identically_from_files() {
    let mem_src = DiskHandle::new(PAGE);
    build_workload(&mem_src);
    let img = mem_src.snapshot();
    assert!(
        !img.frames.is_empty() && !img.wal.is_empty(),
        "both halves populated"
    );

    // Transplant the image onto a real directory: restore_image rewrites
    // frames.ceh + wal.ceh, which is exactly what corrupt() does under
    // the hood with an identity mutation.
    let tmp = TempDir::new("mem-to-file");
    let file_disk = DiskHandle::create_file(&tmp.0, PAGE).expect("create file backend");
    let transplant = img.clone();
    file_disk.corrupt(move |slot| *slot = transplant);
    assert_eq!(file_disk.snapshot(), img, "transplanted bytes round-trip");

    let mem_disk = DiskHandle::from_image(img);
    let (file_report, file_pages, file_after) = observe(&file_disk);
    let (mem_report, mem_pages, mem_after) = observe(&mem_disk);

    assert_eq!(file_report, mem_report, "identical recovery on both media");
    assert_eq!(file_pages, mem_pages, "identical surviving contents");
    assert_expected_contents(&file_pages);
    assert_eq!(file_after, mem_after);
}
