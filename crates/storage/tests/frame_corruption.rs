//! Medium-corruption recovery tests on the frame-CRC path.
//!
//! The file-backed persistence suite (`tests/persistence.rs`) pins how
//! decode-based recovery handles torn tail pages and corrupt bucket
//! headers. These are the same crash shapes ported onto the durable
//! store's *checksum* verification: every frame on the medium carries a
//! `magic | flags | LSN | CRC32` header, so recovery detects damage
//! without interpreting the payload — a torn frame is quarantined and
//! rebuilt from its committed redo image in the WAL, and damage the log
//! cannot cover is reported as corruption, never silently served.

use ceh_obs::MetricsHandle;
use ceh_storage::{DiskHandle, DurableConfig, DurableStore, PageBuf, FRAME_HEADER};
use ceh_types::{Error, PageId};

const PAGE: usize = 64;
const FRAME: usize = FRAME_HEADER + PAGE;

fn cfg() -> DurableConfig {
    DurableConfig {
        // Keep checkpoints manual: tests decide what the WAL covers.
        checkpoint_every: usize::MAX,
        ..DurableConfig::small(PAGE)
    }
}

fn filled(byte: u8) -> PageBuf {
    let mut b = PageBuf::zeroed(PAGE);
    b.fill(byte);
    b
}

/// Build a medium with one page at `0xA1`, checkpointed, then updated
/// to `0xA2` so the (untruncated) WAL covers the page. Returns the
/// surviving disk and the page id.
fn medium_with_covered_page() -> (DiskHandle, PageId) {
    let metrics = MetricsHandle::new();
    let store = DurableStore::new(cfg(), &metrics);
    let disk = store.disk();
    let page = store.alloc().unwrap();
    store.write(page, &filled(0xA1)).unwrap();
    store.checkpoint().unwrap(); // frame on the medium, log truncated
    store.write(page, &filled(0xA2)).unwrap(); // redo in the log
    store.power_off();
    (disk, page)
}

fn recover_and_read(disk: &DiskHandle, page: PageId) -> (Vec<u8>, ceh_storage::RecoveryReport) {
    let metrics = MetricsHandle::new();
    let (store, report) = DurableStore::recover(disk, cfg(), &metrics).unwrap();
    let mut buf = PageBuf::zeroed(PAGE);
    store.read(page, &mut buf).unwrap();
    (buf.to_vec(), report)
}

#[test]
fn scribbled_payload_fails_the_frame_crc_and_is_rebuilt_from_redo() {
    // The persistence suite's "corrupt page" shape: the payload bytes
    // rot but the header survives. Decode-based recovery needs the
    // *bucket* codec to notice; here the frame CRC catches it directly.
    let (disk, page) = medium_with_covered_page();
    disk.corrupt(|img| {
        let at = page.0 as usize * FRAME + FRAME_HEADER;
        img.frames[at..at + 8].copy_from_slice(&[0xDE; 8]);
    });
    let (bytes, report) = recover_and_read(&disk, page);
    assert_eq!(report.torn, 1, "scribbled frame quarantined");
    assert!(
        bytes.iter().all(|&b| b == 0xA2),
        "rebuilt to committed image"
    );
}

#[test]
fn bad_magic_frame_is_debris_and_is_rebuilt_from_redo() {
    // persistence.rs: "an appended page of pure garbage (bad magic)".
    let (disk, page) = medium_with_covered_page();
    disk.corrupt(|img| {
        let at = page.0 as usize * FRAME;
        img.frames[at..at + 4].copy_from_slice(&[0xAA; 4]);
    });
    let (bytes, report) = recover_and_read(&disk, page);
    assert_eq!(report.torn, 1);
    assert!(bytes.iter().all(|&b| b == 0xA2));
}

#[test]
fn valid_magic_with_garbage_header_fields_is_still_caught() {
    // persistence.rs: "a subtler header tear — valid magic, garbage
    // fields". The CRC covers flags + LSN + payload, so a tear that
    // preserves the magic is still detected.
    let (disk, page) = medium_with_covered_page();
    disk.corrupt(|img| {
        let at = page.0 as usize * FRAME;
        img.frames[at + 4..at + 16].copy_from_slice(&[0xFF; 12]); // flags + LSN
    });
    let (bytes, report) = recover_and_read(&disk, page);
    assert_eq!(report.torn, 1);
    assert!(bytes.iter().all(|&b| b == 0xA2));
}

#[test]
fn trailing_partial_frame_region_is_one_torn_frame() {
    // persistence.rs: "a crash can interrupt file growth mid-write,
    // leaving a trailing partial page". Here: the frame array grew for
    // a freshly allocated page but the frame write never finished. The
    // alloc + write that forced the growth are committed in the WAL, so
    // recovery rebuilds the partial region instead of truncating it.
    let metrics = MetricsHandle::new();
    let store = DurableStore::new(cfg(), &metrics);
    let disk = store.disk();
    let page = store.alloc().unwrap();
    store.write(page, &filled(0xB7)).unwrap();
    store.power_off(); // no checkpoint: frames never written
    disk.corrupt(|img| {
        assert!(img.frames.is_empty(), "precondition: no frame flushed yet");
        img.frames.extend_from_slice(&[0xAA; FRAME / 2]); // partial growth
    });
    let (bytes, report) = recover_and_read(&disk, page);
    assert_eq!(report.torn, 1, "partial trailing region is one torn frame");
    assert!(bytes.iter().all(|&b| b == 0xB7));
}

#[test]
fn corruption_the_log_cannot_cover_is_an_error_not_silent_data() {
    // After a checkpoint the log is empty; damage to a frame now has no
    // redo image. Recovery must refuse loudly (the page's data is
    // gone), never hand back a zeroed or stale page as if committed.
    let metrics = MetricsHandle::new();
    let store = DurableStore::new(cfg(), &metrics);
    let disk = store.disk();
    let page = store.alloc().unwrap();
    store.write(page, &filled(0xC3)).unwrap();
    store.checkpoint().unwrap();
    store.power_off();
    disk.corrupt(|img| {
        let at = page.0 as usize * FRAME + FRAME_HEADER;
        img.frames[at] ^= 0xFF;
    });
    let err = DurableStore::recover(&disk, cfg(), &MetricsHandle::new()).unwrap_err();
    match err {
        Error::Corrupt(msg) => assert!(
            msg.contains("no committed redo image"),
            "diagnostic names the uncovered frame: {msg}"
        ),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn torn_wal_tail_ends_the_prefix_but_acked_history_survives() {
    // The log-side analog of the torn tail page: garbage appended where
    // the next record would have gone. The valid prefix replays, the
    // tail is discarded, and every previously acked write survives.
    let metrics = MetricsHandle::new();
    let store = DurableStore::new(cfg(), &metrics);
    let disk = store.disk();
    let page = store.alloc().unwrap();
    store.write(page, &filled(0xD4)).unwrap();
    store.power_off();
    disk.corrupt(|img| img.wal.extend_from_slice(&[0x5A; 11]));
    let (bytes, report) = recover_and_read(&disk, page);
    assert!(report.wal_torn_tail, "tail damage detected");
    assert!(bytes.iter().all(|&b| b == 0xD4), "acked write survived");
}

#[test]
fn recovered_store_keeps_working_after_corruption_repair() {
    // persistence.rs ends its corrupt-header test by continuing to use
    // the cluster; same contract here — the repaired store is fully
    // operational, including fresh allocation over the repaired region.
    let (disk, page) = medium_with_covered_page();
    disk.corrupt(|img| {
        let at = page.0 as usize * FRAME;
        img.frames[at..at + 4].copy_from_slice(&[0xAA; 4]);
    });
    let metrics = MetricsHandle::new();
    let (store, _) = DurableStore::recover(&disk, cfg(), &metrics).unwrap();
    let p2 = store.alloc().unwrap();
    let mut b = PageBuf::zeroed(PAGE);
    b.fill(0xE5);
    store.write(p2, &b).unwrap();
    store.checkpoint().unwrap();
    store.power_off();
    let (store2, _) = DurableStore::recover(&store.disk(), cfg(), &MetricsHandle::new()).unwrap();
    let mut buf = PageBuf::zeroed(PAGE);
    store2.read(page, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xA2));
    store2.read(p2, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0xE5));
}
