//! Medium-corruption recovery tests on the frame-CRC path.
//!
//! The file-backed persistence suite (`tests/persistence.rs`) pins how
//! decode-based recovery handles torn tail pages and corrupt bucket
//! headers. These are the same crash shapes ported onto the durable
//! store's *checksum* verification: every frame on the medium carries a
//! `magic | flags | LSN | CRC32` header, so recovery detects damage
//! without interpreting the payload — a torn frame is quarantined and
//! rebuilt from its committed redo image in the WAL, and damage the log
//! cannot cover is reported as corruption, never silently served.
//!
//! Every scenario runs against **both** [`PageBackend`] implementations
//! through the same harness: the deterministic in-memory image and the
//! real file backend (frames + WAL files in a temp dir). The corruption
//! itself is expressed once, as a [`DiskImage`] mutation — `corrupt()`
//! snapshots, mutates, and restores, so the identical byte damage lands
//! on whichever medium is under test.

use std::path::PathBuf;

use ceh_obs::MetricsHandle;
use ceh_storage::{BackendKind, DiskHandle, DurableConfig, DurableStore, PageBuf, FRAME_HEADER};
use ceh_types::{Error, PageId};

const PAGE: usize = 64;
const FRAME: usize = FRAME_HEADER + PAGE;

fn cfg() -> DurableConfig {
    DurableConfig {
        // Keep checkpoints manual: tests decide what the WAL covers.
        checkpoint_every: usize::MAX,
        ..DurableConfig::small(PAGE)
    }
}

fn filled(byte: u8) -> PageBuf {
    let mut b = PageBuf::zeroed(PAGE);
    b.fill(byte);
    b
}

/// RAII temp dir for the file-backend arm of each scenario.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        TempDir(std::env::temp_dir().join(format!("ceh-fc-{tag}-{}", std::process::id())))
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One backend under test: a fresh empty disk plus whatever cleanup it
/// needs. The scenario body is backend-blind — it only sees the handle.
struct Medium {
    kind: BackendKind,
    disk: DiskHandle,
    _tmp: Option<TempDir>,
}

/// Both backends, fresh and empty, tagged so parallel tests do not
/// share file-backend directories.
fn media(tag: &str) -> Vec<Medium> {
    let tmp = TempDir::new(tag);
    let file = DiskHandle::create_file(&tmp.0, PAGE).expect("create file backend");
    vec![
        Medium {
            kind: BackendKind::Memory,
            disk: DiskHandle::new(PAGE),
            _tmp: None,
        },
        Medium {
            kind: BackendKind::File,
            disk: file,
            _tmp: Some(tmp),
        },
    ]
}

/// Run `scenario` once per backend, labelling failures with the kind.
fn on_both(tag: &str, scenario: impl Fn(&DiskHandle)) {
    for m in media(tag) {
        eprintln!("-- {tag} on {} backend", m.kind);
        scenario(&m.disk);
    }
}

/// Build a medium with one page at `0xA1`, checkpointed, then updated
/// to `0xA2` so the (untruncated) WAL covers the page. Returns the
/// page id; the state lands on the passed disk.
fn cover_page(disk: &DiskHandle) -> PageId {
    let metrics = MetricsHandle::new();
    let store = DurableStore::with_disk(disk.clone(), cfg(), &metrics).unwrap();
    let page = store.alloc().unwrap();
    store.write(page, &filled(0xA1)).unwrap();
    store.checkpoint().unwrap(); // frame on the medium, log truncated
    store.write(page, &filled(0xA2)).unwrap(); // redo in the log
    store.power_off();
    page
}

fn recover_and_read(disk: &DiskHandle, page: PageId) -> (Vec<u8>, ceh_storage::RecoveryReport) {
    let metrics = MetricsHandle::new();
    let (store, report) = DurableStore::recover(disk, cfg(), &metrics).unwrap();
    let mut buf = PageBuf::zeroed(PAGE);
    store.read(page, &mut buf).unwrap();
    (buf.to_vec(), report)
}

#[test]
fn scribbled_payload_fails_the_frame_crc_and_is_rebuilt_from_redo() {
    // The persistence suite's "corrupt page" shape: the payload bytes
    // rot but the header survives. Decode-based recovery needs the
    // *bucket* codec to notice; here the frame CRC catches it directly.
    on_both("scribble", |disk| {
        let page = cover_page(disk);
        disk.corrupt(|img| {
            let at = page.0 as usize * FRAME + FRAME_HEADER;
            img.frames[at..at + 8].copy_from_slice(&[0xDE; 8]);
        });
        let (bytes, report) = recover_and_read(disk, page);
        assert_eq!(report.torn, 1, "scribbled frame quarantined");
        assert!(
            bytes.iter().all(|&b| b == 0xA2),
            "rebuilt to committed image"
        );
    });
}

#[test]
fn bad_magic_frame_is_debris_and_is_rebuilt_from_redo() {
    // persistence.rs: "an appended page of pure garbage (bad magic)".
    on_both("badmagic", |disk| {
        let page = cover_page(disk);
        disk.corrupt(|img| {
            let at = page.0 as usize * FRAME;
            img.frames[at..at + 4].copy_from_slice(&[0xAA; 4]);
        });
        let (bytes, report) = recover_and_read(disk, page);
        assert_eq!(report.torn, 1);
        assert!(bytes.iter().all(|&b| b == 0xA2));
    });
}

#[test]
fn valid_magic_with_garbage_header_fields_is_still_caught() {
    // persistence.rs: "a subtler header tear — valid magic, garbage
    // fields". The CRC covers flags + LSN + payload, so a tear that
    // preserves the magic is still detected.
    on_both("hdrfields", |disk| {
        let page = cover_page(disk);
        disk.corrupt(|img| {
            let at = page.0 as usize * FRAME;
            img.frames[at + 4..at + 16].copy_from_slice(&[0xFF; 12]); // flags + LSN
        });
        let (bytes, report) = recover_and_read(disk, page);
        assert_eq!(report.torn, 1);
        assert!(bytes.iter().all(|&b| b == 0xA2));
    });
}

#[test]
fn trailing_partial_frame_region_is_one_torn_frame() {
    // persistence.rs: "a crash can interrupt file growth mid-write,
    // leaving a trailing partial page". Here: the frame array grew for
    // a freshly allocated page but the frame write never finished. The
    // alloc + write that forced the growth are committed in the WAL, so
    // recovery rebuilds the partial region instead of truncating it.
    on_both("partial", |disk| {
        let metrics = MetricsHandle::new();
        let store = DurableStore::with_disk(disk.clone(), cfg(), &metrics).unwrap();
        let page = store.alloc().unwrap();
        store.write(page, &filled(0xB7)).unwrap();
        store.power_off(); // no checkpoint: frames never written
        disk.corrupt(|img| {
            assert!(img.frames.is_empty(), "precondition: no frame flushed yet");
            img.frames.extend_from_slice(&[0xAA; FRAME / 2]); // partial growth
        });
        let (bytes, report) = recover_and_read(disk, page);
        assert_eq!(report.torn, 1, "partial trailing region is one torn frame");
        assert!(bytes.iter().all(|&b| b == 0xB7));
    });
}

#[test]
fn corruption_the_log_cannot_cover_is_an_error_not_silent_data() {
    // After a checkpoint the log is empty; damage to a frame now has no
    // redo image. Recovery must refuse loudly (the page's data is
    // gone), never hand back a zeroed or stale page as if committed.
    on_both("uncovered", |disk| {
        let metrics = MetricsHandle::new();
        let store = DurableStore::with_disk(disk.clone(), cfg(), &metrics).unwrap();
        let page = store.alloc().unwrap();
        store.write(page, &filled(0xC3)).unwrap();
        store.checkpoint().unwrap();
        store.power_off();
        disk.corrupt(|img| {
            let at = page.0 as usize * FRAME + FRAME_HEADER;
            img.frames[at] ^= 0xFF;
        });
        let err = DurableStore::recover(disk, cfg(), &MetricsHandle::new()).unwrap_err();
        match err {
            Error::Corrupt(msg) => assert!(
                msg.contains("no committed redo image"),
                "diagnostic names the uncovered frame: {msg}"
            ),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    });
}

#[test]
fn torn_wal_tail_ends_the_prefix_but_acked_history_survives() {
    // The log-side analog of the torn tail page: garbage appended where
    // the next record would have gone. The valid prefix replays, the
    // tail is discarded, and every previously acked write survives.
    on_both("waltail", |disk| {
        let metrics = MetricsHandle::new();
        let store = DurableStore::with_disk(disk.clone(), cfg(), &metrics).unwrap();
        let page = store.alloc().unwrap();
        store.write(page, &filled(0xD4)).unwrap();
        store.power_off();
        disk.corrupt(|img| img.wal.extend_from_slice(&[0x5A; 11]));
        let (bytes, report) = recover_and_read(disk, page);
        assert!(report.wal_torn_tail, "tail damage detected");
        assert!(bytes.iter().all(|&b| b == 0xD4), "acked write survived");
    });
}

#[test]
fn recovered_store_keeps_working_after_corruption_repair() {
    // persistence.rs ends its corrupt-header test by continuing to use
    // the cluster; same contract here — the repaired store is fully
    // operational, including fresh allocation over the repaired region.
    on_both("repair", |disk| {
        let page = cover_page(disk);
        disk.corrupt(|img| {
            let at = page.0 as usize * FRAME;
            img.frames[at..at + 4].copy_from_slice(&[0xAA; 4]);
        });
        let metrics = MetricsHandle::new();
        let (store, _) = DurableStore::recover(disk, cfg(), &metrics).unwrap();
        let p2 = store.alloc().unwrap();
        let mut b = PageBuf::zeroed(PAGE);
        b.fill(0xE5);
        store.write(p2, &b).unwrap();
        store.checkpoint().unwrap();
        store.power_off();
        let (store2, _) =
            DurableStore::recover(&store.disk(), cfg(), &MetricsHandle::new()).unwrap();
        let mut buf = PageBuf::zeroed(PAGE);
        store2.read(page, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xA2));
        store2.read(p2, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xE5));
    });
}

#[test]
fn frames_file_truncated_mid_frame_on_disk_recovers_through_the_wal() {
    // The one shape that only exists on a real filesystem: the OS (or a
    // crashed copy) truncates `frames.ceh` partway through a frame. No
    // DiskImage mutation here — the file itself is cut with `set_len`
    // behind the handle's back, then the directory is reopened cold,
    // exactly as a restarted bucket manager would find it.
    let tmp = TempDir::new("truncated");
    let disk = DiskHandle::create_file(&tmp.0, PAGE).expect("create file backend");
    let page = cover_page(&disk);
    assert_eq!(disk.kind(), BackendKind::File);
    drop(disk); // close the handles: the damage happens "offline"

    let frames_path = tmp.0.join("frames.ceh");
    let len = std::fs::metadata(&frames_path).unwrap().len();
    assert_eq!(len as usize, FRAME, "one frame on disk after checkpoint");
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&frames_path)
        .unwrap();
    f.set_len((FRAME / 2) as u64).unwrap(); // cut mid-frame
    f.sync_data().unwrap();
    drop(f);

    let disk = DiskHandle::open_file(&tmp.0, PAGE).expect("reopen survives truncation");
    let (bytes, report) = recover_and_read(&disk, page);
    assert_eq!(report.torn, 1, "the cut frame is quarantined");
    assert!(
        bytes.iter().all(|&b| b == 0xA2),
        "rebuilt from the WAL's redo image"
    );
}
