//! Model-based property tests for the B-link tree.

use std::collections::BTreeMap;

use ceh_btree::{BLinkTree, BLinkTreeConfig};
use ceh_types::{DeleteOutcome, InsertOutcome, Key, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Find(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = 0u64..128;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Delete),
        key.prop_map(Op::Find),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap(
        fanout in 4usize..12,
        ops in proptest::collection::vec(arb_op(), 1..400),
    ) {
        let t = BLinkTree::new(BLinkTreeConfig { fanout });
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let out = t.insert(Key(k), Value(v)).unwrap();
                    let expected = if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k) {
                        e.insert(v);
                        InsertOutcome::Inserted
                    } else {
                        InsertOutcome::AlreadyPresent
                    };
                    prop_assert_eq!(out, expected);
                }
                Op::Delete(k) => {
                    let out = t.delete(Key(k)).unwrap();
                    let expected = if model.remove(&k).is_some() {
                        DeleteOutcome::Deleted
                    } else {
                        DeleteOutcome::NotFound
                    };
                    prop_assert_eq!(out, expected);
                }
                Op::Find(k) => {
                    prop_assert_eq!(t.find(Key(k)).unwrap().map(|v| v.0), model.get(&k).copied());
                }
            }
            prop_assert_eq!(t.len(), model.len());
        }
        t.check_invariants().unwrap();
        for (&k, &v) in &model {
            prop_assert_eq!(t.find(Key(k)).unwrap(), Some(Value(v)));
        }
    }
}
