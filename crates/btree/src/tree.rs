//! The concurrent B-link tree.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ceh_types::{DeleteOutcome, InsertOutcome, Key, Result, Value};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};

use crate::node::{Node, NodeId};

/// Tuning for a [`BLinkTree`].
#[derive(Debug, Clone)]
pub struct BLinkTreeConfig {
    /// Maximum keys per node before it splits. Comparable to the hash
    /// file's `bucket_capacity`.
    pub fanout: usize,
}

impl Default for BLinkTreeConfig {
    fn default() -> Self {
        BLinkTreeConfig { fanout: 64 }
    }
}

/// A concurrent B-link tree (Lehman & Yao 1981). See the crate docs for
/// design notes and fidelity statements.
///
/// ```
/// use ceh_btree::{BLinkTree, BLinkTreeConfig};
/// use ceh_types::{Key, Value};
///
/// let tree = BLinkTree::new(BLinkTreeConfig { fanout: 8 });
/// for k in 0..100 {
///     tree.insert(Key(k), Value(k))?;
/// }
/// assert_eq!(tree.find(Key(42))?, Some(Value(42)));
/// // Ordered range scans — the B-tree's edge over the hash file.
/// let range = tree.range(Key(10), Key(14));
/// assert_eq!(range.iter().map(|(k, _)| k.0).collect::<Vec<_>>(), vec![10, 11, 12, 13, 14]);
/// tree.check_invariants()?;
/// # Ok::<(), ceh_types::Error>(())
/// ```
pub struct BLinkTree {
    /// Grow-only node slab; a node's index is its identity (the "page
    /// address"). The outer lock is write-taken only to append.
    slab: RwLock<Vec<Arc<RwLock<Node>>>>,
    root: AtomicUsize,
    /// Serializes root growth only.
    root_growth: Mutex<()>,
    fanout: usize,
    len: AtomicUsize,
}

impl std::fmt::Debug for BLinkTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BLinkTree")
            .field("fanout", &self.fanout)
            .field("len", &self.len())
            .field("nodes", &self.slab.read().len())
            .finish()
    }
}

impl BLinkTree {
    /// Create an empty tree.
    pub fn new(cfg: BLinkTreeConfig) -> Self {
        assert!(cfg.fanout >= 4, "fanout below 4 cannot split meaningfully");
        let slab = vec![Arc::new(RwLock::new(Node::new_leaf()))];
        BLinkTree {
            slab: RwLock::new(slab),
            root: AtomicUsize::new(0),
            root_growth: Mutex::new(()),
            fanout: cfg.fanout,
            len: AtomicUsize::new(0),
        }
    }

    /// Number of records (exact at quiescence).
    pub fn len(&self) -> usize {
        // ceh-lint: allow(relaxed-ordering) — statistics counter, exact only at quiescence
        self.len.load(Ordering::Relaxed)
    }

    /// Is the tree empty (quiescent)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total nodes allocated (diagnostics).
    pub fn node_count(&self) -> usize {
        self.slab.read().len()
    }

    fn node(&self, id: NodeId) -> Arc<RwLock<Node>> {
        Arc::clone(&self.slab.read()[id])
    }

    fn alloc(&self, node: Node) -> NodeId {
        let mut slab = self.slab.write();
        slab.push(Arc::new(RwLock::new(node)));
        slab.len() - 1
    }

    /// Read-descend to the leaf that should hold `key`, with Lehman–Yao
    /// move-right at every level. No lock coupling: at most one read
    /// latch held at a time. Optionally records the descent stack of
    /// internal node ids (for insert's bottom-up split propagation).
    fn descend(&self, key: u64, stack: Option<&mut Vec<NodeId>>) -> NodeId {
        let mut stack = stack;
        let mut cur = self.root.load(Ordering::Acquire);
        loop {
            let arc = self.node(cur);
            let node = arc.read();
            if !node.covers(key) {
                cur = node.right.expect("high key bound implies a right sibling");
                continue; // move right; never recorded on the stack
            }
            if node.leaf {
                return cur;
            }
            if let Some(s) = stack.as_deref_mut() {
                s.push(cur);
            }
            cur = node.child_for(key);
        }
    }

    /// Write-latch `start`, moving right until the node covers `key`.
    fn latch_covering(&self, mut cur: NodeId, key: u64) -> (NodeId, ArcWriteGuard) {
        loop {
            let arc = self.node(cur);
            let guard = ArcWriteGuard::lock(arc);
            if guard.covers(key) {
                return (cur, guard);
            }
            cur = guard.right.expect("high key bound implies a right sibling");
        }
    }

    /// Look up a key.
    pub fn find(&self, key: Key) -> Result<Option<Value>> {
        let leaf = self.descend(key.0, None);
        // Latch the leaf for the read (the atomic page read); may still
        // need to move right if a split raced the descent.
        let mut cur = leaf;
        loop {
            let arc = self.node(cur);
            let node = arc.read();
            if !node.covers(key.0) {
                cur = node.right.expect("high key bound implies a right sibling");
                continue;
            }
            return Ok(node.leaf_find(key.0).map(|i| Value(node.vals[i])));
        }
    }

    /// Insert a key (add-if-absent, like the hash files).
    pub fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        let mut stack = Vec::new();
        let leaf = self.descend(key.0, Some(&mut stack));
        let (_cur, mut guard) = self.latch_covering(leaf, key.0);

        if guard.leaf_find(key.0).is_some() {
            return Ok(InsertOutcome::AlreadyPresent);
        }
        if guard.keys.len() < self.fanout {
            guard.leaf_insert(key.0, value.0);
            self.len.fetch_add(1, Ordering::Relaxed);
            return Ok(InsertOutcome::Inserted);
        }

        // Split the leaf, placing the new record in the proper half.
        let (mut new_node, sep) = guard.split();
        if key.0 <= sep {
            guard.leaf_insert(key.0, value.0);
        } else {
            new_node.leaf_insert(key.0, value.0);
        }
        let new_id = self.alloc(new_node);
        guard.right = Some(new_id);
        let split_level = guard.level;
        drop(guard);
        self.len.fetch_add(1, Ordering::Relaxed);

        // Propagate the separator upward.
        self.insert_into_parents(stack, split_level, sep, new_id);
        Ok(InsertOutcome::Inserted)
    }

    /// Bottom-up split propagation: insert `(sep, new_child)` into the
    /// parent level, splitting upward as needed; grow the root when the
    /// split node had no parent.
    fn insert_into_parents(
        &self,
        mut stack: Vec<NodeId>,
        mut split_level: u32,
        mut sep: u64,
        mut new_child: NodeId,
    ) {
        loop {
            let parent_start = match stack.pop() {
                Some(p) => p,
                None => {
                    // The node we split had no recorded parent: it was
                    // (or had become a right sibling of) the root when we
                    // descended. Ensure a parent level exists, then find
                    // the parent by a fresh partial descent.
                    self.ensure_parent_level(split_level);
                    self.find_at_level(sep, split_level + 1)
                }
            };
            let (_pid, mut guard) = self.latch_covering(parent_start, sep);
            guard.internal_insert(sep, new_child);
            if guard.keys.len() <= self.fanout {
                return;
            }
            let (new_node, s) = guard.split();
            let nid = self.alloc(new_node);
            guard.right = Some(nid);
            split_level = guard.level;
            drop(guard);
            sep = s;
            new_child = nid;
        }
    }

    /// Make sure the tree has at least one level above `level` (grow the
    /// root if the current root sits at `level`). Serialized by the root
    /// growth mutex; idempotent.
    fn ensure_parent_level(&self, level: u32) {
        let _g = self.root_growth.lock();
        let root_id = self.root.load(Ordering::Acquire);
        let root_level = self.node(root_id).read().level;
        if root_level > level {
            return; // someone else already grew it
        }
        debug_assert_eq!(root_level, level);
        // A one-child, zero-key internal node over the old root: searches
        // route through it unchanged, and the pending separator will be
        // inserted by the caller's normal parent-level pass.
        let new_root = Node::new_internal(level + 1, vec![root_id], Vec::new());
        let new_id = self.alloc(new_root);
        self.root.store(new_id, Ordering::Release);
    }

    /// Fresh descent from the current root down to `level`, returning a
    /// node at that level whose range may cover `key` (the caller still
    /// latches and moves right).
    fn find_at_level(&self, key: u64, level: u32) -> NodeId {
        let mut cur = self.root.load(Ordering::Acquire);
        loop {
            let arc = self.node(cur);
            let node = arc.read();
            if !node.covers(key) {
                cur = node.right.expect("high key bound implies a right sibling");
                continue;
            }
            if node.level == level {
                return cur;
            }
            debug_assert!(node.level > level, "descended past the target level");
            cur = node.child_for(key);
        }
    }

    /// Range scan: every `(key, value)` with `lo <= key <= hi`, in key
    /// order — the operation that separates the B-tree from the hash
    /// file (extendible hashing scatters adjacent keys across buckets,
    /// so its only "range scan" is a full sweep). Traverses the leaf
    /// chain left to right, latching one leaf at a time; concurrent
    /// splits are survived via the usual move-right rule, so the scan
    /// sees every key that was present for the whole scan (keys inserted
    /// or deleted mid-scan may or may not appear — standard latch-free
    /// scan semantics).
    pub fn range(&self, lo: Key, hi: Key) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        if lo.0 > hi.0 {
            return out;
        }
        let mut cur = self.descend(lo.0, None);
        loop {
            let arc = self.node(cur);
            let n = arc.read();
            for (i, &k) in n.keys.iter().enumerate() {
                if k >= lo.0 && k <= hi.0 {
                    out.push((Key(k), Value(n.vals[i])));
                }
            }
            // This node covers keys up to high_key (∞ when None): once
            // that reaches hi, everything in range has been seen.
            match n.high_key {
                None => break,
                Some(h) if h >= hi.0 => break,
                _ => {}
            }
            match n.right {
                Some(r) => cur = r,
                None => break,
            }
        }
        out
    }

    /// Delete a key. Lehman–Yao leave node merging out of scope, so this
    /// only removes from the leaf (leaves may become underfull or empty).
    pub fn delete(&self, key: Key) -> Result<DeleteOutcome> {
        let leaf = self.descend(key.0, None);
        let (_id, mut guard) = self.latch_covering(leaf, key.0);
        match guard.leaf_find(key.0) {
            Some(i) => {
                guard.keys.remove(i);
                guard.vals.remove(i);
                self.len.fetch_sub(1, Ordering::Relaxed);
                Ok(DeleteOutcome::Deleted)
            }
            None => Ok(DeleteOutcome::NotFound),
        }
    }

    /// Check structural invariants (quiescent): key order within nodes,
    /// high-key bounds, leaf-chain order across right links, and that
    /// every key is reachable from the root.
    pub fn check_invariants(&self) -> Result<()> {
        use ceh_types::Error;
        // Walk the leaf level left-to-right via right links.
        let mut cur = self.root.load(Ordering::Acquire);
        loop {
            let arc = self.node(cur);
            let n = arc.read();
            if n.leaf {
                break;
            }
            cur = n.children[0];
        }
        let mut total = 0usize;
        let mut last: Option<u64> = None;
        loop {
            let arc = self.node(cur);
            let (sample, right) = {
                let n = arc.read();
                for w in n.keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err(Error::Corrupt(format!("node {cur}: keys out of order")));
                    }
                }
                if let (Some(prev), Some(&first)) = (last, n.keys.first()) {
                    if first <= prev {
                        return Err(Error::Corrupt(format!(
                            "leaf chain order violated entering node {cur}"
                        )));
                    }
                }
                if let (Some(h), Some(&max)) = (n.high_key, n.keys.last()) {
                    if max > h {
                        return Err(Error::Corrupt(format!("node {cur}: key above high key")));
                    }
                }
                if let Some(&k) = n.keys.last() {
                    last = Some(k);
                }
                total += n.keys.len();
                (n.keys.first().copied(), n.right)
            };
            // One key per leaf must be findable from the root (sampling
            // keeps the sweep O(n log n)).
            if let Some(k) = sample {
                if self.find(Key(k))?.is_none() {
                    return Err(Error::Corrupt(format!("key {k} unreachable from root")));
                }
            }
            match right {
                Some(r) => cur = r,
                None => break,
            }
        }
        if total != self.len() {
            return Err(Error::Corrupt(format!(
                "leaf chain holds {total} keys, len() is {}",
                self.len()
            )));
        }
        Ok(())
    }
}

/// A write guard that owns its `Arc`, so it can outlive the borrow of the
/// slab (self-referential pair handled by keeping both together).
struct ArcWriteGuard {
    // Field order matters: guard drops before the arc it borrows.
    guard: RwLockWriteGuard<'static, Node>,
    _arc: Arc<RwLock<Node>>,
}

impl ArcWriteGuard {
    fn lock(arc: Arc<RwLock<Node>>) -> Self {
        // SAFETY: the guard borrows the RwLock inside `arc`; we keep the
        // Arc alive in the same struct for as long as the guard exists,
        // and declare drop order so the guard dies first.
        // ceh-lint: allow(unsafe-block) — lifetime extension sound per the SAFETY argument above; safe code can't name the self-referential lifetime
        let guard = unsafe {
            std::mem::transmute::<RwLockWriteGuard<'_, Node>, RwLockWriteGuard<'static, Node>>(
                arc.write(),
            )
        };
        ArcWriteGuard { guard, _arc: arc }
    }
}

impl std::ops::Deref for ArcWriteGuard {
    type Target = Node;
    fn deref(&self) -> &Node {
        &self.guard
    }
}

impl std::ops::DerefMut for ArcWriteGuard {
    fn deref_mut(&mut self) -> &mut Node {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(fanout: usize) -> BLinkTree {
        BLinkTree::new(BLinkTreeConfig { fanout })
    }

    #[test]
    fn crud_roundtrip() {
        let t = tree(4);
        assert_eq!(
            t.insert(Key(5), Value(50)).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(
            t.insert(Key(5), Value(99)).unwrap(),
            InsertOutcome::AlreadyPresent
        );
        assert_eq!(t.find(Key(5)).unwrap(), Some(Value(50)));
        assert_eq!(t.delete(Key(5)).unwrap(), DeleteOutcome::Deleted);
        assert_eq!(t.delete(Key(5)).unwrap(), DeleteOutcome::NotFound);
        assert!(t.is_empty());
    }

    #[test]
    fn grows_through_many_splits() {
        let t = tree(4);
        for k in 0..1000u64 {
            t.insert(Key(k), Value(k * 2)).unwrap();
        }
        t.check_invariants().unwrap();
        for k in 0..1000u64 {
            assert_eq!(t.find(Key(k)).unwrap(), Some(Value(k * 2)), "key {k}");
        }
        assert_eq!(t.find(Key(5000)).unwrap(), None);
        assert!(
            t.node_count() > 250,
            "fanout 4 with 1000 keys needs many nodes"
        );
    }

    #[test]
    fn reverse_and_random_orders() {
        for order in 0..3 {
            let t = tree(6);
            let keys: Vec<u64> = match order {
                0 => (0..500).rev().collect(),
                1 => (0..500).collect(),
                _ => (0..500).map(|i| (i * 2654435761) % 10000).collect(),
            };
            for &k in &keys {
                t.insert(Key(k), Value(k)).unwrap();
            }
            t.check_invariants().unwrap();
            for &k in &keys {
                assert_eq!(t.find(Key(k)).unwrap(), Some(Value(k)));
            }
        }
    }

    #[test]
    fn delete_leaves_tree_searchable() {
        let t = tree(4);
        for k in 0..300u64 {
            t.insert(Key(k), Value(k)).unwrap();
        }
        for k in (0..300u64).step_by(2) {
            assert_eq!(t.delete(Key(k)).unwrap(), DeleteOutcome::Deleted);
        }
        t.check_invariants().unwrap();
        for k in 0..300u64 {
            let expect = if k % 2 == 0 { None } else { Some(Value(k)) };
            assert_eq!(t.find(Key(k)).unwrap(), expect, "key {k}");
        }
    }

    #[test]
    fn range_scans_are_ordered_and_complete() {
        let t = tree(5);
        for k in (0..500u64).step_by(3) {
            t.insert(Key(k), Value(k * 2)).unwrap();
        }
        // Full range.
        let all = t.range(Key(0), Key(1000));
        assert_eq!(all.len(), 167);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "ordered");
        // Interior range.
        let mid = t.range(Key(100), Key(200));
        assert_eq!(
            mid.iter().map(|(k, _)| k.0).collect::<Vec<_>>(),
            (100..=200).filter(|k| k % 3 == 0).collect::<Vec<_>>()
        );
        for (k, v) in mid {
            assert_eq!(v.0, k.0 * 2);
        }
        // Empty and inverted ranges.
        assert!(t.range(Key(1), Key(2)).is_empty());
        assert!(t.range(Key(10), Key(5)).is_empty());
        // Single-point range.
        assert_eq!(t.range(Key(9), Key(9)), vec![(Key(9), Value(18))]);
    }

    #[test]
    fn range_scan_during_concurrent_inserts_sees_stable_keys() {
        let t = Arc::new(tree(5));
        // Stable keys: evens in 0..1000. Concurrent writers add odds.
        for k in (0..1000u64).step_by(2) {
            t.insert(Key(k), Value(k)).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let (t, stop) = (Arc::clone(&t), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut k = 1u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    t.insert(Key(k % 1000), Value(k)).unwrap();
                    k += 2;
                }
            })
        };
        for _ in 0..50 {
            let got = t.range(Key(0), Key(999));
            let evens: Vec<u64> = got
                .iter()
                .map(|(k, _)| k.0)
                .filter(|k| k % 2 == 0)
                .collect();
            assert_eq!(
                evens,
                (0..1000u64).step_by(2).collect::<Vec<_>>(),
                "stable keys all seen"
            );
            assert!(
                got.windows(2).all(|w| w[0].0 < w[1].0),
                "ordered despite racing splits"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }

    #[test]
    fn concurrent_inserts_and_finds() {
        let t = Arc::new(tree(8));
        let handles: Vec<_> = (0..8u64)
            .map(|th| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = i * 8 + th;
                        t.insert(Key(k), Value(k)).unwrap();
                        assert_eq!(t.find(Key(k)).unwrap(), Some(Value(k)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 4000);
        t.check_invariants().unwrap();
        for k in 0..4000u64 {
            assert_eq!(t.find(Key(k)).unwrap(), Some(Value(k)), "key {k}");
        }
    }

    #[test]
    fn concurrent_mixed_workload() {
        let t = Arc::new(tree(6));
        let handles: Vec<_> = (0..6u64)
            .map(|th| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand::rngs::StdRng::seed_from_u64(th);
                    let mut mine = std::collections::HashMap::new();
                    for i in 0..2000u64 {
                        let k = rng.random_range(0..128u64) * 6 + th;
                        match rng.random_range(0..3) {
                            0 => {
                                let out = t.insert(Key(k), Value(i)).unwrap();
                                assert_eq!(out == InsertOutcome::Inserted, !mine.contains_key(&k));
                                mine.entry(k).or_insert(i);
                            }
                            1 => {
                                let out = t.delete(Key(k)).unwrap();
                                assert_eq!(
                                    out == DeleteOutcome::Deleted,
                                    mine.remove(&k).is_some()
                                );
                            }
                            _ => {
                                assert_eq!(
                                    t.find(Key(k)).unwrap().map(|v| v.0),
                                    mine.get(&k).copied()
                                );
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        t.check_invariants().unwrap();
    }
}
