//! B-link tree nodes.

/// Index of a node in the tree's slab.
pub(crate) type NodeId = usize;

/// A B-link node. Leaves hold `(key, value)` pairs; internal nodes hold
/// separator keys and children.
///
/// Layout invariants:
/// * `keys` is strictly sorted ascending;
/// * leaf: `vals.len() == keys.len()`, `children` empty;
/// * internal: `children.len() == keys.len() + 1`; child `i` covers keys
///   `≤ keys[i]` (for `i < keys.len()`) and the last child covers the
///   rest up to `high_key`;
/// * `high_key == None` means +∞ (the rightmost node on its level);
///   otherwise every key in the subtree is `≤ high_key`;
/// * `right` is the Lehman–Yao right link (`None` on the rightmost node).
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub leaf: bool,
    /// Height above the leaves (leaf = 0); used to find a split node's
    /// parent level after root growth.
    pub level: u32,
    pub keys: Vec<u64>,
    pub vals: Vec<u64>,
    pub children: Vec<NodeId>,
    pub high_key: Option<u64>,
    pub right: Option<NodeId>,
}

impl Node {
    pub fn new_leaf() -> Self {
        Node {
            leaf: true,
            level: 0,
            keys: Vec::new(),
            vals: Vec::new(),
            children: Vec::new(),
            high_key: None,
            right: None,
        }
    }

    pub fn new_internal(level: u32, children: Vec<NodeId>, keys: Vec<u64>) -> Self {
        debug_assert_eq!(children.len(), keys.len() + 1);
        Node {
            leaf: false,
            level,
            keys,
            vals: Vec::new(),
            children,
            high_key: None,
            right: None,
        }
    }

    /// Does `key` belong in this node (or must the searcher move right)?
    #[inline]
    pub fn covers(&self, key: u64) -> bool {
        match self.high_key {
            None => true,
            Some(h) => key <= h,
        }
    }

    /// Leaf: position of `key` if present.
    pub fn leaf_find(&self, key: u64) -> Option<usize> {
        debug_assert!(self.leaf);
        self.keys.binary_search(&key).ok()
    }

    /// Leaf: insert `(key, value)` keeping order. Caller checked absence
    /// and capacity.
    pub fn leaf_insert(&mut self, key: u64, value: u64) {
        debug_assert!(self.leaf);
        let pos = self.keys.binary_search(&key).unwrap_err();
        self.keys.insert(pos, key);
        self.vals.insert(pos, value);
    }

    /// Internal: the child to descend into for `key`.
    pub fn child_for(&self, key: u64) -> NodeId {
        debug_assert!(!self.leaf);
        // keys[i] is the max key of children[i].
        let pos = match self.keys.binary_search(&key) {
            Ok(i) => i, // key == separator → left child holds it (≤)
            Err(i) => i,
        };
        self.children[pos]
    }

    /// Internal: insert a separator/child pair after a child split.
    /// `sep` is the max key remaining in the split child; `new_child` is
    /// its new right sibling.
    pub fn internal_insert(&mut self, sep: u64, new_child: NodeId) {
        debug_assert!(!self.leaf);
        let pos = self.keys.binary_search(&sep).unwrap_err();
        self.keys.insert(pos, sep);
        self.children.insert(pos + 1, new_child);
    }

    /// Split the upper half into a returned new node; `self` keeps the
    /// lower half and gets `high_key`/`right` updated (the caller links
    /// `right` to the new node's id afterwards). Returns
    /// `(new_node, separator)` where `separator` is the max key kept by
    /// `self`.
    pub fn split(&mut self) -> (Node, u64) {
        let mid = self.keys.len() / 2;
        debug_assert!(mid >= 1);
        let mut new = Node {
            leaf: self.leaf,
            level: self.level,
            keys: self.keys.split_off(mid),
            vals: if self.leaf {
                self.vals.split_off(mid)
            } else {
                Vec::new()
            },
            children: Vec::new(),
            high_key: self.high_key,
            right: self.right,
        };
        if !self.leaf {
            // Internal split: the middle key moves *up*, not right.
            // After split_off, new.keys starts with the separator.
            let sep_up = new.keys.remove(0);
            new.children = self.children.split_off(mid + 1);
            debug_assert_eq!(new.children.len(), new.keys.len() + 1);
            let sep = sep_up;
            self.high_key = Some(sep);
            return (new, sep);
        }
        let sep = *self.keys.last().expect("non-empty lower half");
        self.high_key = Some(sep);
        (new, sep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_insert_keeps_order() {
        let mut n = Node::new_leaf();
        for k in [5u64, 1, 3, 2, 4] {
            n.leaf_insert(k, k * 10);
        }
        assert_eq!(n.keys, vec![1, 2, 3, 4, 5]);
        assert_eq!(n.vals, vec![10, 20, 30, 40, 50]);
        assert_eq!(n.leaf_find(3), Some(2));
        assert_eq!(n.leaf_find(9), None);
    }

    #[test]
    fn leaf_split_halves_and_links() {
        let mut n = Node::new_leaf();
        for k in 1..=6u64 {
            n.leaf_insert(k, k);
        }
        n.right = Some(99);
        let (new, sep) = n.split();
        assert_eq!(n.keys, vec![1, 2, 3]);
        assert_eq!(new.keys, vec![4, 5, 6]);
        assert_eq!(sep, 3);
        assert_eq!(n.high_key, Some(3));
        assert_eq!(new.high_key, None);
        assert_eq!(new.right, Some(99), "new node inherits the old right link");
    }

    #[test]
    fn internal_split_promotes_separator() {
        // children c0..c4 with separators 10,20,30,40.
        let mut n = Node::new_internal(1, vec![0, 1, 2, 3, 4], vec![10, 20, 30, 40]);
        let (new, sep) = n.split();
        assert_eq!(sep, 30, "middle separator moves up");
        assert_eq!(n.keys, vec![10, 20]);
        assert_eq!(n.children, vec![0, 1, 2]);
        assert_eq!(new.keys, vec![40]);
        assert_eq!(new.children, vec![3, 4]);
        assert_eq!(n.high_key, Some(30));
    }

    #[test]
    fn child_routing() {
        let n = Node::new_internal(1, vec![100, 101, 102], vec![10, 20]);
        assert_eq!(n.child_for(5), 100);
        assert_eq!(n.child_for(10), 100, "separator key goes left (≤)");
        assert_eq!(n.child_for(11), 101);
        assert_eq!(n.child_for(20), 101);
        assert_eq!(n.child_for(99), 102);
    }

    #[test]
    fn covers_respects_high_key() {
        let mut n = Node::new_leaf();
        assert!(n.covers(u64::MAX));
        n.high_key = Some(10);
        assert!(n.covers(10));
        assert!(!n.covers(11));
    }
}
