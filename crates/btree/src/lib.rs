//! # ceh-btree — a Lehman–Yao B-link tree
//!
//! The paper positions its protocols against "proposals for concurrency
//! in B-tree variants" and promises to "evaluate the performance of these
//! algorithms and comparable B-tree solutions" (§4). This crate is that
//! comparator: a concurrent B-link tree per Lehman & Yao, *Efficient
//! Locking for Concurrent Operations on B-Trees* (TODS 1981) — the very
//! solution whose link-pointer technique the paper borrows for its `next`
//! fields ("The approach is similar to the use of link pointers in Lehman
//! and Yao's Blink-tree solution", §2.1).
//!
//! Faithful to Lehman–Yao's design points:
//!
//! * every node carries a **high key** and a **right link**; a process
//!   that reaches a node whose high key is below its search key simply
//!   *moves right* — the recovery path for racing splits, exactly like
//!   the hash file's `next` chase;
//! * readers take **no lock coupling**: one node is read-latched at a
//!   time (the latch stands in for Lehman–Yao's atomic page read, the
//!   same substrate assumption as `getbucket`);
//! * writers latch only the leaf they modify, splitting bottom-up with at
//!   most one latch per level held at a time;
//! * **deletion does not rebalance** — Lehman & Yao explicitly leave
//!   underflow handling out of scope ("we have not considered the
//!   problem of merging nodes"), so deletes just remove from the leaf.
//!
//! [`BLinkTree`] exposes the same find/insert/delete surface as the hash
//! files so the benchmark harness can swap them interchangeably.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod node;
mod tree;

pub use tree::{BLinkTree, BLinkTreeConfig};
