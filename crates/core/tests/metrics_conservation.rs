//! Metrics-correctness under concurrency: the unified plane must not
//! lose or invent counts.
//!
//! * Conservation: every operation issued by every thread shows up in
//!   exactly one of the `core.*` outcome counters.
//! * Monotonicity: snapshots taken *while* writers are mutating only
//!   ever move forward — a later snapshot never shows a smaller counter
//!   than an earlier one (the sharded counters are increment-only).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ceh_core::{ConcurrentHashFile, Solution1, Solution2};
use ceh_types::{HashFileConfig, Key, Value};

const THREADS: u64 = 4;
const OPS_PER_THREAD: u64 = 2_000;

/// Run a deterministic mixed workload and return (finds, inserts,
/// deletes) issued.
fn hammer(file: &Arc<dyn ConcurrentHashFile>) -> (u64, u64, u64) {
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let file = Arc::clone(file);
            std::thread::spawn(move || {
                let (mut finds, mut inserts, mut deletes) = (0u64, 0u64, 0u64);
                for i in 0..OPS_PER_THREAD {
                    // Overlapping key space across threads so some
                    // operations hit, some miss, some race.
                    let k = Key((t * OPS_PER_THREAD / 2 + i) % 1024);
                    match i % 4 {
                        0 | 1 => {
                            file.insert(k, Value(i)).expect("insert");
                            inserts += 1;
                        }
                        2 => {
                            file.find(k).expect("find");
                            finds += 1;
                        }
                        _ => {
                            file.delete(k).expect("delete");
                            deletes += 1;
                        }
                    }
                }
                (finds, inserts, deletes)
            })
        })
        .collect();
    let mut total = (0, 0, 0);
    for h in handles {
        let (f, i, d) = h.join().expect("worker");
        total.0 += f;
        total.1 += i;
        total.2 += d;
    }
    total
}

fn check_conservation(file: Arc<dyn ConcurrentHashFile>) {
    let (finds, inserts, deletes) = hammer(&file);
    let m = file.metrics().snapshot();
    assert_eq!(
        m.counter("core.finds_hit") + m.counter("core.finds_miss"),
        finds,
        "find outcomes conserve"
    );
    assert_eq!(
        m.counter("core.inserts") + m.counter("core.inserts_duplicate"),
        inserts,
        "insert outcomes conserve"
    );
    assert_eq!(
        m.counter("core.deletes") + m.counter("core.deletes_miss"),
        deletes,
        "delete outcomes conserve"
    );
    // The same totals must be visible through the layers below: every
    // operation acquired at least one lock, and grants == releases at
    // quiescence.
    assert!(m.counter("locks.grants.rho") > 0, "lock layer recorded");
    // A conversion is an *additional* grant in the new mode that the
    // owner later releases separately, so at quiescence every grant has
    // exactly one matching release.
    assert_eq!(
        m.counter("locks.grants.rho")
            + m.counter("locks.grants.alpha")
            + m.counter("locks.grants.xi"),
        m.counter("locks.releases"),
        "every grant released"
    );
    assert!(m.counter("storage.reads") > 0, "storage layer recorded");
}

#[test]
fn solution1_ops_issued_equal_ops_counted() {
    let f = Solution1::new(HashFileConfig::tiny().with_bucket_capacity(8)).unwrap();
    check_conservation(Arc::new(f));
}

#[test]
fn solution2_ops_issued_equal_ops_counted() {
    let f = Solution2::new(HashFileConfig::tiny().with_bucket_capacity(8)).unwrap();
    check_conservation(Arc::new(f));
}

#[test]
fn snapshots_are_monotone_under_concurrent_mutation() {
    let file: Arc<dyn ConcurrentHashFile> =
        Arc::new(Solution2::new(HashFileConfig::tiny().with_bucket_capacity(8)).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let file = Arc::clone(&file);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = Key((t * 5000 + i) % 2048);
                    let _ = file.insert(k, Value(i));
                    let _ = file.find(k);
                    if i % 3 == 0 {
                        let _ = file.delete(k);
                    }
                    i += 1;
                }
            })
        })
        .collect();

    let handle = file.metrics();
    let mut prev = handle.snapshot();
    for _ in 0..50 {
        let cur = handle.snapshot();
        for (name, &earlier) in &prev.counters {
            let later = cur.counter(name);
            assert!(
                later >= earlier,
                "counter {name} went backwards: {earlier} -> {later}"
            );
        }
        for (name, h) in &prev.hists {
            let later = cur.hist(name).expect("histogram persists");
            assert!(
                later.count >= h.count,
                "histogram {name} lost samples: {} -> {}",
                h.count,
                later.count
            );
        }
        prev = cur;
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().expect("writer");
    }
}
