//! Concurrency torture tests for Solutions 1 and 2.
//!
//! Every test runs many threads of mixed operations over tiny buckets
//! (maximizing splits, merges, doublings, halvings, and wrong-bucket
//! recoveries), with the lock manager's deadlock watchdog armed and
//! freed-page poisoning on. At quiescence we check the full structural
//! invariant set and compare the surviving key set against a
//! single-threaded model replay.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ceh_core::{
    invariants::check_concurrent_file, ConcurrentHashFile, FileCore, Solution1, Solution2,
};
use ceh_locks::{LockManager, LockManagerConfig};
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, HashFileConfig, Key, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn watchdog_core(cfg: HashFileConfig) -> FileCore {
    let store = PageStore::new_shared(PageStoreConfig {
        page_size: Bucket::page_size_for(cfg.bucket_capacity),
        ..Default::default()
    });
    let locks = Arc::new(LockManager::new(LockManagerConfig {
        watchdog: Some(Duration::from_secs(20)),
        ..Default::default()
    }));
    FileCore::with_parts(cfg, store, locks, hash_key).unwrap()
}

/// Per-key ownership partition: thread t owns keys ≡ t (mod T), so every
/// operation's outcome is deterministic per thread and we can maintain an
/// exact per-thread model even under full concurrency.
fn torture<F: ConcurrentHashFile + 'static>(
    file: Arc<F>,
    threads: u64,
    ops_per_thread: usize,
    seed: u64,
) {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let file = Arc::clone(&file);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ t);
                let mut model: HashMap<u64, u64> = HashMap::new();
                for i in 0..ops_per_thread {
                    // Keys owned exclusively by this thread.
                    let k = rng.random_range(0..64u64) * threads + t;
                    match rng.random_range(0..10) {
                        0..=3 => {
                            let v = i as u64;
                            let out = file.insert(Key(k), Value(v)).unwrap();
                            let expect_inserted = !model.contains_key(&k);
                            assert_eq!(
                                out == ceh_types::InsertOutcome::Inserted,
                                expect_inserted,
                                "thread {t} insert {k}"
                            );
                            model.entry(k).or_insert(v);
                        }
                        4..=6 => {
                            let out = file.delete(Key(k)).unwrap();
                            let expect_deleted = model.remove(&k).is_some();
                            assert_eq!(
                                out == ceh_types::DeleteOutcome::Deleted,
                                expect_deleted,
                                "thread {t} delete {k}"
                            );
                        }
                        _ => {
                            let got = file.find(Key(k)).unwrap().map(|v| v.0);
                            assert_eq!(got, model.get(&k).copied(), "thread {t} find {k}");
                        }
                    }
                }
                model
            })
        })
        .collect();

    let mut surviving: HashMap<u64, u64> = HashMap::new();
    for h in handles {
        surviving.extend(h.join().unwrap());
    }
    // Quiescent equivalence with the union of the per-thread models.
    assert_eq!(file.len(), surviving.len(), "len at quiescence");
    for (&k, &v) in &surviving {
        assert_eq!(
            file.find(Key(k)).unwrap(),
            Some(Value(v)),
            "surviving key {k}"
        );
    }
}

#[test]
fn solution1_torture() {
    let f = Arc::new(Solution1::from_core(watchdog_core(HashFileConfig::tiny())));
    torture(Arc::clone(&f), 8, 1500, 0x51);
    check_concurrent_file(f.core()).unwrap();
    let s = f.core().stats().snapshot();
    assert!(
        s.splits > 0 && s.merges > 0,
        "torture must exercise restructuring: {s:?}"
    );
}

#[test]
fn solution2_torture() {
    let f = Arc::new(Solution2::from_core(watchdog_core(HashFileConfig::tiny())));
    torture(Arc::clone(&f), 8, 1500, 0x52);
    check_concurrent_file(f.core()).unwrap();
    let s = f.core().stats().snapshot();
    assert!(
        s.splits > 0 && s.merges > 0,
        "torture must exercise restructuring: {s:?}"
    );
    assert_eq!(s.gc_phases, s.merges);
}

#[test]
fn solution1_torture_larger_buckets() {
    let f = Arc::new(Solution1::from_core(watchdog_core(
        HashFileConfig::tiny().with_bucket_capacity(8),
    )));
    torture(Arc::clone(&f), 6, 2000, 0x151);
    check_concurrent_file(f.core()).unwrap();
}

#[test]
fn solution2_torture_larger_buckets() {
    let f = Arc::new(Solution2::from_core(watchdog_core(
        HashFileConfig::tiny().with_bucket_capacity(8),
    )));
    torture(Arc::clone(&f), 6, 2000, 0x152);
    check_concurrent_file(f.core()).unwrap();
}

#[test]
fn solution2_torture_with_merge_threshold() {
    // merge_threshold 2 makes merges far more frequent, stressing the
    // label-A paths and tombstone GC.
    let f = Arc::new(Solution2::from_core(watchdog_core(
        HashFileConfig::tiny()
            .with_bucket_capacity(6)
            .with_merge_threshold(2),
    )));
    torture(Arc::clone(&f), 8, 1500, 0x252);
    check_concurrent_file(f.core()).unwrap();
}

/// §2.3's update-serialization obligation, explicit: N threads all
/// insert the *same* key — exactly one wins; all delete it — exactly one
/// wins. (The torture tests avoid key collisions by construction, so
/// this is the one place contended same-key updates are pinned.)
#[test]
fn same_key_updates_serialize() {
    for make in [
        |c| Box::new(Solution1::from_core(c)) as Box<dyn ConcurrentHashFile>,
        |c| Box::new(Solution2::from_core(c)) as Box<dyn ConcurrentHashFile>,
    ] {
        let f: Arc<dyn ConcurrentHashFile> = Arc::from(make(watchdog_core(HashFileConfig::tiny())));
        for round in 0..20u64 {
            let key = Key(round * 1000 + 7);
            let inserted: usize = (0..8u64)
                .map(|t| {
                    let f = Arc::clone(&f);
                    std::thread::spawn(move || {
                        matches!(
                            f.insert(key, Value(t)).unwrap(),
                            ceh_types::InsertOutcome::Inserted
                        ) as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum();
            assert_eq!(inserted, 1, "{}: exactly one insert wins", f.name());
            // The stored value is one of the contenders' (no torn blend).
            let v = f.find(key).unwrap().expect("key present");
            assert!(v.0 < 8, "{}: value {v:?} written by a contender", f.name());

            let deleted: usize = (0..8u64)
                .map(|_| {
                    let f = Arc::clone(&f);
                    std::thread::spawn(move || {
                        matches!(f.delete(key).unwrap(), ceh_types::DeleteOutcome::Deleted) as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum();
            assert_eq!(deleted, 1, "{}: exactly one delete wins", f.name());
            assert_eq!(f.find(key).unwrap(), None);
        }
    }
}

#[test]
fn readers_run_against_update_storm() {
    // Dedicated readers sweep the key space while updaters churn; readers
    // must always see a coherent bucket (the §2.3 reader/updater
    // argument). Outcome values are checked for self-consistency: a hit
    // must return the value written for that key.
    let f = Arc::new(Solution2::from_core(watchdog_core(HashFileConfig::tiny())));
    for k in 0..128u64 {
        f.insert(Key(k), Value(k * 1000)).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let updaters: Vec<_> = (0..4u64)
        .map(|t| {
            let f = Arc::clone(&f);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                // Churn keys outside the readers' range.
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let k = 1000 + rng.random_range(0..64u64) * 4 + t;
                    if rng.random_bool(0.5) {
                        let _ = f.insert(Key(k), Value(k * 1000)).unwrap();
                    } else {
                        let _ = f.delete(Key(k)).unwrap();
                    }
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    for k in 0..128u64 {
                        // Keys 0..128 are never touched by updaters.
                        assert_eq!(f.find(Key(k)).unwrap(), Some(Value(k * 1000)), "key {k}");
                    }
                }
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for u in updaters {
        u.join().unwrap();
    }
    check_concurrent_file(f.core()).unwrap();
}
