//! Directed tests for the Solution-2 validation branches of Figure 9.
//!
//! The torture tests hit these branches statistically; these tests hit
//! them *deterministically* by choreographing the interleavings with the
//! lock manager itself: a saboteur thread holds a ξ-lock on the page the
//! deleter will need, mutates the structure while the deleter is parked
//! on that lock, and releases — steering the deleter into exactly the
//! re-validation path under test.
//!
//! Shared setup (identity pseudokeys, capacity 2): inserting
//! `[00, 10, 01, 11, 100, 101]` yields the four depth-2 buckets
//! `00:{00,100}`, `10:{10}`, `01:{01,101}`, `11:{11}`.

use std::sync::Arc;
use std::time::Duration;

use ceh_core::{invariants, ConcurrentHashFile, FileCore, Solution2};
use ceh_locks::{LockId, LockManager, LockMode};
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{identity_pseudokey, DeleteOutcome, HashFileConfig, Key, PageId, Value};

fn build_file() -> Solution2 {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(2);
    let store = PageStore::new_shared(PageStoreConfig {
        page_size: Bucket::page_size_for(2),
        ..Default::default()
    });
    let core = FileCore::with_parts(
        cfg,
        store,
        Arc::new(LockManager::default()),
        identity_pseudokey,
    )
    .unwrap();
    let f = Solution2::from_core(core);
    for k in [0b00u64, 0b10, 0b01, 0b11, 0b100, 0b101] {
        f.insert(Key(k), Value(k)).unwrap();
    }
    assert_eq!(
        f.core().dir().depth(),
        2,
        "setup must reach the four-bucket state"
    );
    f
}

/// Page currently holding the given bit pattern.
fn page_of(f: &Solution2, pattern: u64) -> PageId {
    f.core().dir().index(pattern)
}

/// Deleting the lone key of a "1" partner (pattern 10) forces the
/// release-and-relock dance. The saboteur holds the "0" partner (00)
/// ξ-locked; while the deleter waits, it *refills* the target bucket by
/// writing a second record into it directly — so the deleter's
/// revalidation finds the bucket no longer empty and takes the
/// remove-without-merge path (Figure 9's "more data inserted into
/// oldpage so it is no longer empty").
#[test]
fn second_of_pair_refilled_while_waiting() {
    let f = Arc::new(build_file());
    let zero_page = page_of(&f, 0b00);
    let target_page = page_of(&f, 0b10);

    let saboteur_owner = f.core().locks().new_owner();
    f.core()
        .locks()
        .lock(saboteur_owner, LockId::Page(zero_page), LockMode::Xi);

    let deleter = {
        let f = Arc::clone(&f);
        std::thread::spawn(move || f.delete(Key(0b10)).unwrap())
    };
    // Give the deleter time to walk to bucket 10, release it, and block
    // on our ξ-lock of bucket 00.
    std::thread::sleep(Duration::from_millis(50));

    // Refill bucket 10 while the deleter is parked (the deleter released
    // its ξ on this page before requesting the pair in order, so this
    // insert acquires it freely).
    {
        let mut buf = f.core().new_buf();
        assert_eq!(
            f.core().getbucket(target_page, &mut buf).unwrap().count(),
            1
        );
    }
    f.insert(Key(0b110), Value(99)).unwrap();

    f.core()
        .locks()
        .unlock(saboteur_owner, LockId::Page(zero_page), LockMode::Xi);
    assert_eq!(deleter.join().unwrap(), DeleteOutcome::Deleted);

    // No merge happened: the refilled record survived in place.
    assert_eq!(f.find(Key(0b110)).unwrap(), Some(Value(99)));
    assert_eq!(f.find(Key(0b10)).unwrap(), None);
    let s = f.core().stats().snapshot();
    assert_eq!(s.merges, 0, "refill must have prevented the merge");
    invariants::check_concurrent_file(f.core()).unwrap();
}

/// While the deleter waits for the "0" partner, the target bucket fills
/// and splits, moving the victim key to a different page — the deleter's
/// `owns` revalidation fails ("Z no longer belongs in oldpage … it may
/// have filled up and split, moving z") and the whole delete retries
/// against the relocated key.
#[test]
fn second_of_pair_key_moves_while_waiting() {
    let f = Arc::new(build_file());
    // Rearrange bucket 10 to hold exactly {110}: the victim key whose
    // bit 3 is set, so a localdepth-3 split moves it to the new page.
    f.insert(Key(0b110), Value(0b110)).unwrap(); // 10: {10, 110}
    f.delete(Key(0b10)).unwrap(); // count 2 → plain remove; 10: {110}

    let zero_page = page_of(&f, 0b00);
    let saboteur_owner = f.core().locks().new_owner();
    f.core()
        .locks()
        .lock(saboteur_owner, LockId::Page(zero_page), LockMode::Xi);

    let deleter = {
        let f = Arc::clone(&f);
        std::thread::spawn(move || f.delete(Key(0b110)).unwrap())
    };
    std::thread::sleep(Duration::from_millis(50));

    // Refill and split bucket 10 under the parked deleter: after the
    // split, half1 (cb 010) keeps {010, 1010} on the old page and half2
    // (cb 110) takes {110} to a fresh page.
    f.insert(Key(0b010), Value(2)).unwrap();
    f.insert(Key(0b1010), Value(10)).unwrap(); // forces the split
    assert!(f.core().stats().snapshot().splits >= 1);

    f.core()
        .locks()
        .unlock(saboteur_owner, LockId::Page(zero_page), LockMode::Xi);
    assert_eq!(deleter.join().unwrap(), DeleteOutcome::Deleted);
    assert_eq!(
        f.find(Key(0b110)).unwrap(),
        None,
        "the moved key was still deleted"
    );
    assert_eq!(f.find(Key(0b010)).unwrap(), Some(Value(2)));
    assert_eq!(f.find(Key(0b1010)).unwrap(), Some(Value(10)));
    let s = f.core().stats().snapshot();
    assert!(
        s.delete_retries >= 1,
        "the owns revalidation must have retried: {s:?}"
    );
    invariants::check_concurrent_file(f.core()).unwrap();
}

/// Two deleters race on the (01, 11) pair: whichever reaches the merge
/// first wins; the other revalidates (bucket refitted, pair already
/// merged, or key simply removable) and still deletes its key. Repeated
/// to shake schedules.
#[test]
fn racing_deleters_on_one_pair() {
    for _ in 0..20 {
        let f = Arc::new(build_file());
        let d1 = {
            let f = Arc::clone(&f);
            std::thread::spawn(move || f.delete(Key(0b01)).unwrap())
        };
        let d2 = {
            let f = Arc::clone(&f);
            std::thread::spawn(move || f.delete(Key(0b11)).unwrap())
        };
        assert_eq!(d1.join().unwrap(), DeleteOutcome::Deleted);
        assert_eq!(d2.join().unwrap(), DeleteOutcome::Deleted);
        assert_eq!(f.find(Key(0b01)).unwrap(), None);
        assert_eq!(f.find(Key(0b11)).unwrap(), None);
        assert_eq!(
            f.find(Key(0b101)).unwrap(),
            Some(Value(0b101)),
            "bystander survives"
        );
        invariants::check_concurrent_file(f.core()).unwrap();
    }
}

/// Solution 2's case-1 merge ("z in first of pair"), deterministic
/// outcome check: the "0" partner's page survives with the partner's
/// records, the "1" partner's page is tombstoned and then collected by
/// the GC phase, and the chain is spliced correctly.
#[test]
fn second_solution_first_of_pair_merge_outcome() {
    let f = build_file();
    // Slim the (01, 11) pair: 01:{01}, 11:{11}.
    f.delete(Key(0b101)).unwrap();
    let zero_page = page_of(&f, 0b01);
    let one_page = page_of(&f, 0b11);
    let pages_before = f.core().store().allocated_pages();

    // 0b01 has bit 2 clear → first of pair → partner via next, merged
    // down into the "0" page; GC runs inline afterwards.
    assert_eq!(f.delete(Key(0b01)).unwrap(), DeleteOutcome::Deleted);

    let mut buf = f.core().new_buf();
    let survivor = f.core().getbucket(zero_page, &mut buf).unwrap();
    assert_eq!(survivor.localdepth, 1);
    assert_eq!(survivor.commonbits, 0b1);
    assert_eq!(survivor.records.len(), 1);
    assert_eq!(survivor.records[0].key, Key(0b11));
    assert_eq!(
        f.core().store().allocated_pages(),
        pages_before - 1,
        "the tombstone page was garbage-collected"
    );
    assert_eq!(page_of(&f, 0b01), zero_page);
    assert_eq!(page_of(&f, 0b11), zero_page);
    let _ = one_page;
    let s = f.core().stats().snapshot();
    assert_eq!(s.merges, 1);
    assert_eq!(s.gc_phases, 1);
    invariants::check_concurrent_file(f.core()).unwrap();
}

/// A reader parked on a bucket that gets merged away (tombstoned) under
/// it recovers through the tombstone's next link — the §2.5 claim that
/// "obsolete directory entries … always point to a bucket from which the
/// correct bucket is reachable via next links", at bucket granularity.
#[test]
fn reader_recovers_through_tombstone() {
    let f = Arc::new(build_file());
    // Slim bucket 01 down to {01} so the hand merge below fits capacity.
    f.delete(Key(0b101)).unwrap(); // count 2 → plain remove
    let one_page = page_of(&f, 0b01);
    let target_page = page_of(&f, 0b11); // bucket 11: {11}

    let saboteur_owner = f.core().locks().new_owner();
    f.core()
        .locks()
        .lock(saboteur_owner, LockId::Page(target_page), LockMode::Xi);

    // Reader heads for 0b111, which routes to bucket 11; it blocks on
    // our ξ-lock.
    let reader = {
        let f = Arc::clone(&f);
        std::thread::spawn(move || f.find(Key(0b111)).unwrap())
    };
    std::thread::sleep(Duration::from_millis(50));

    // Merge 11 into 01 by hand, exactly as a Figure-9 merge would (we
    // hold the deleter's ξ-locks).
    let partner_owner = f.core().locks().new_owner();
    f.core()
        .locks()
        .lock(partner_owner, LockId::Page(one_page), LockMode::Xi);
    let mut buf = f.core().new_buf();
    let mut survivor = f.core().getbucket(one_page, &mut buf).unwrap();
    let victim = f.core().getbucket(target_page, &mut buf).unwrap();
    survivor.localdepth -= 1;
    survivor.commonbits &= ceh_types::mask(survivor.localdepth);
    survivor.records.extend(victim.records.iter().copied());
    survivor.next = victim.next;
    f.core().putbucket(one_page, &survivor, &mut buf).unwrap();
    let mut tomb = Bucket::new(0, 0);
    tomb.mark_deleted();
    tomb.next = one_page;
    f.core().putbucket(target_page, &tomb, &mut buf).unwrap();
    f.core()
        .dir()
        .update_one_side(one_page, 2, ceh_types::Pseudokey(0b11));
    f.core().dir().add_depthcount(-2);
    f.core()
        .locks()
        .unlock(partner_owner, LockId::Page(one_page), LockMode::Xi);

    // Release the reader: it reads the tombstone, chases next to the
    // survivor, and concludes correctly.
    f.core()
        .locks()
        .unlock(saboteur_owner, LockId::Page(target_page), LockMode::Xi);
    assert_eq!(reader.join().unwrap(), None, "0b111 was never inserted");
    assert_eq!(
        f.find(Key(0b11)).unwrap(),
        Some(Value(0b11)),
        "merged key reachable"
    );
    let s = f.core().stats().snapshot();
    assert!(
        s.wrong_bucket_recoveries >= 1,
        "the reader must have recovered: {s:?}"
    );
}
