//! Directed tests for Figure 7's two merge cases in Solution 1, with
//! the exact structural outcomes pinned: who survives, which page is
//! deallocated, how the chain is re-threaded, and what happens to the
//! directory.
//!
//! Setup (identity pseudokeys, capacity 2): inserting
//! `[00, 10, 01, 11, 100, 101]` yields depth-2 buckets `00:{00,100}`,
//! `10:{10}`, `01:{01,101}`, `11:{11}`.

use std::sync::Arc;

use ceh_core::{invariants, ConcurrentHashFile, FileCore, Solution1};
use ceh_locks::LockManager;
use ceh_storage::{PageStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{identity_pseudokey, DeleteOutcome, HashFileConfig, Key, PageId, Value};

fn build_file() -> Solution1 {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(2);
    let store = PageStore::new_shared(PageStoreConfig {
        page_size: Bucket::page_size_for(2),
        ..Default::default()
    });
    let core = FileCore::with_parts(
        cfg,
        store,
        Arc::new(LockManager::default()),
        identity_pseudokey,
    )
    .unwrap();
    let f = Solution1::from_core(core);
    for k in [0b00u64, 0b10, 0b01, 0b11, 0b100, 0b101] {
        f.insert(Key(k), Value(k)).unwrap();
    }
    assert_eq!(f.core().dir().depth(), 2);
    f
}

fn page_of(f: &Solution1, pattern: u64) -> PageId {
    f.core().dir().index(pattern)
}

fn bucket_at(f: &Solution1, page: PageId) -> Bucket {
    let mut buf = f.core().new_buf();
    f.core().getbucket(page, &mut buf).unwrap()
}

/// Case 1 — "z goes in first of pair": deleting the lone key of the
/// "0" partner. The partner is found via `next`; the *"0" partner's
/// page* survives holding the partner's records; the "1" partner's page
/// is deallocated.
#[test]
fn delete_from_first_of_pair_merges_down() {
    let f = build_file();
    // Make bucket 01 ("0" partner of the (01,11) pair wrt bit 2) hold
    // only its key: 01:{01}, 11:{11}.
    f.delete(Key(0b101)).unwrap();
    let zero_page = page_of(&f, 0b01);
    let one_page = page_of(&f, 0b11);
    assert_ne!(zero_page, one_page);
    let pages_before = f.core().store().allocated_pages();

    // Key 0b01 has bit 2 clear → first of pair → partner via next.
    assert_eq!(f.delete(Key(0b01)).unwrap(), DeleteOutcome::Deleted);

    // The "0" page survived and now holds the "1" partner's records at
    // localdepth 1.
    let survivor = bucket_at(&f, zero_page);
    assert_eq!(survivor.localdepth, 1);
    assert_eq!(survivor.commonbits, 0b1);
    assert_eq!(survivor.records.len(), 1);
    assert_eq!(survivor.records[0].key, Key(0b11));
    // The "1" page is gone, and the directory routes both patterns to
    // the survivor.
    assert_eq!(f.core().store().allocated_pages(), pages_before - 1);
    assert_eq!(page_of(&f, 0b01), zero_page);
    assert_eq!(page_of(&f, 0b11), zero_page);
    let s = f.core().stats().snapshot();
    assert_eq!(s.merges, 1);
    invariants::check_concurrent_file(f.core()).unwrap();
}

/// Case 2 — "z goes in second of pair": deleting the lone key of the
/// "1" partner. The partner is found via the directory; the deleter
/// releases and re-locks in next-link order; the "0" partner's page
/// survives, absorbing nothing (the victim's only record was z), and is
/// spliced past the deleted bucket.
#[test]
fn delete_from_second_of_pair_merges_up() {
    let f = build_file();
    let zero_page = page_of(&f, 0b00); // 00:{00,100}
    let one_page = page_of(&f, 0b10); // 10:{10}
    let chain_after = bucket_at(&f, one_page).next; // whatever followed 10
    let pages_before = f.core().store().allocated_pages();

    // Key 0b10 has bit 2 set → second of pair.
    assert_eq!(f.delete(Key(0b10)).unwrap(), DeleteOutcome::Deleted);

    let survivor = bucket_at(&f, zero_page);
    assert_eq!(survivor.localdepth, 1);
    assert_eq!(survivor.commonbits, 0b0);
    let mut keys: Vec<u64> = survivor.records.iter().map(|r| r.key.0).collect();
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec![0b00, 0b100],
        "the survivor keeps its own records"
    );
    assert_eq!(
        survivor.next, chain_after,
        "chain spliced past the deleted bucket"
    );
    assert_eq!(f.core().store().allocated_pages(), pages_before - 1);
    assert_eq!(page_of(&f, 0b00), zero_page);
    assert_eq!(page_of(&f, 0b10), zero_page);
    invariants::check_concurrent_file(f.core()).unwrap();
}

/// Unmergeable because the partner is deeper: the delete degrades to a
/// plain removal (Figure 7's "not possible to merge these two").
#[test]
fn deeper_partner_prevents_merge() {
    let f = build_file();
    // Split the (01,101) bucket once more: 01 → 001:{01,101... wait both
    // have bit3 differing} — insert keys to force 01's split to depth 3.
    f.insert(Key(0b1001), Value(9)).unwrap(); // 01 full → splits to ld 3
    assert!(f.core().dir().depth() >= 3);
    // Now bucket 11 (ld 2) has a partner region that split deeper.
    let eleven_page = page_of(&f, 0b011);
    assert_eq!(bucket_at(&f, eleven_page).localdepth, 2);
    let pages_before = f.core().store().allocated_pages();

    assert_eq!(f.delete(Key(0b11)).unwrap(), DeleteOutcome::Deleted);
    assert_eq!(
        f.core().store().allocated_pages(),
        pages_before,
        "no merge: localdepths differ, the bucket just empties"
    );
    assert_eq!(f.core().stats().snapshot().merges, 0);
    invariants::check_concurrent_file(f.core()).unwrap();
}

/// Merging cascades into directory halving when the merged pair were the
/// last buckets at full depth (Figure 7's `if (depthcount == 0)
/// halvedirectory()`).
#[test]
fn merge_at_full_depth_halves_directory() {
    let f = build_file();
    // Deepen one pair to depth 3: only those two sit at full depth.
    f.insert(Key(0b1001), Value(9)).unwrap();
    assert_eq!(f.core().dir().depth(), 3);
    assert_eq!(f.core().dir().depthcount(), 2);

    // Empty the deep pair and delete from it: merge → depthcount 0 → halve.
    f.delete(Key(0b101)).unwrap(); // deep bucket 101:{101,1001}? remove one
    f.delete(Key(0b1001)).unwrap();
    f.delete(Key(0b01)).unwrap();
    assert!(
        f.core().dir().depth() < 3,
        "directory halved after the full-depth merge"
    );
    invariants::check_concurrent_file(f.core()).unwrap();
    // Everything else still reachable.
    for k in [0b00u64, 0b10, 0b11, 0b100] {
        assert_eq!(f.find(Key(k)).unwrap(), Some(Value(k)), "key {k:b}");
    }
}
