//! Single-threaded model equivalence for the concurrent implementations.
//!
//! Concurrency aside, Solutions 1 and 2 must behave exactly like a map —
//! and their structures must satisfy every invariant after each
//! operation. Property-testing them single-threaded pins the protocol
//! *logic* (split/merge/double/halve/tombstone bookkeeping)
//! deterministically, which the nondeterministic torture tests cannot.

use std::collections::BTreeMap;

use ceh_core::{invariants::check_concurrent_file, ConcurrentHashFile, Solution1, Solution2};
use ceh_types::{DeleteOutcome, HashFileConfig, InsertOutcome, Key, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Find(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = 0u64..48;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Delete),
        key.prop_map(Op::Find),
    ]
}

fn run<F: ConcurrentHashFile>(file: &F, core: &ceh_core::FileCore, ops: &[Op]) {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let out = file.insert(Key(k), Value(v)).unwrap();
                let expected = if let std::collections::btree_map::Entry::Vacant(e) = model.entry(k)
                {
                    e.insert(v);
                    InsertOutcome::Inserted
                } else {
                    InsertOutcome::AlreadyPresent
                };
                assert_eq!(out, expected, "insert {k}");
            }
            Op::Delete(k) => {
                let out = file.delete(Key(k)).unwrap();
                let expected = if model.remove(&k).is_some() {
                    DeleteOutcome::Deleted
                } else {
                    DeleteOutcome::NotFound
                };
                assert_eq!(out, expected, "delete {k}");
            }
            Op::Find(k) => {
                assert_eq!(
                    file.find(Key(k)).unwrap().map(|v| v.0),
                    model.get(&k).copied(),
                    "find {k}"
                );
            }
        }
        check_concurrent_file(core).unwrap();
    }
    assert_eq!(file.len(), model.len());
    for (&k, &v) in &model {
        assert_eq!(file.find(Key(k)).unwrap(), Some(Value(v)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solution1_matches_model(ops in proptest::collection::vec(arb_op(), 1..250)) {
        let f = Solution1::new(HashFileConfig::tiny()).unwrap();
        run(&f, f.core(), &ops);
    }

    #[test]
    fn solution2_matches_model(ops in proptest::collection::vec(arb_op(), 1..250)) {
        let f = Solution2::new(HashFileConfig::tiny()).unwrap();
        run(&f, f.core(), &ops);
    }

    #[test]
    fn solution1_matches_model_with_threshold(ops in proptest::collection::vec(arb_op(), 1..250)) {
        let cfg = HashFileConfig::tiny().with_bucket_capacity(4).with_merge_threshold(1);
        let f = Solution1::new(cfg).unwrap();
        run(&f, f.core(), &ops);
    }

    #[test]
    fn solution2_matches_model_with_threshold(ops in proptest::collection::vec(arb_op(), 1..250)) {
        let cfg = HashFileConfig::tiny().with_bucket_capacity(4).with_merge_threshold(1);
        let f = Solution2::new(cfg).unwrap();
        run(&f, f.core(), &ops);
    }

    /// The two solutions agree with each other operation-for-operation.
    #[test]
    fn solutions_agree(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let f1 = Solution1::new(HashFileConfig::tiny()).unwrap();
        let f2 = Solution2::new(HashFileConfig::tiny()).unwrap();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(
                        f1.insert(Key(k), Value(v)).unwrap(),
                        f2.insert(Key(k), Value(v)).unwrap()
                    );
                }
                Op::Delete(k) => {
                    prop_assert_eq!(f1.delete(Key(k)).unwrap(), f2.delete(Key(k)).unwrap());
                }
                Op::Find(k) => {
                    prop_assert_eq!(f1.find(Key(k)).unwrap(), f2.find(Key(k)).unwrap());
                }
            }
        }
        prop_assert_eq!(f1.len(), f2.len());
    }
}
