//! Durability as a property: for *any* operation sequence, power loss
//! followed by WAL recovery yields a file equal to the model — and
//! recovery is **idempotent**: crashing *during* recovery and
//! recovering again lands in the same state.

use std::collections::BTreeMap;
use std::sync::Arc;

use ceh_core::{invariants::check_concurrent_file, ConcurrentHashFile, FileCore, Solution2};
use ceh_locks::LockManager;
use ceh_obs::MetricsHandle;
use ceh_storage::{CrashPlan, DiskHandle, DurableConfig, DurableStore, PageStoreConfig};
use ceh_types::bucket::Bucket;
use ceh_types::{hash_key, Error, HashFileConfig, Key, Value};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let key = 0u64..64;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.prop_map(Op::Delete),
    ]
}

fn durable_cfg(cap: usize) -> DurableConfig {
    DurableConfig {
        page: PageStoreConfig {
            page_size: Bucket::page_size_for(cap),
            ..Default::default()
        },
        // Small interval so the property runs cross checkpoints too.
        checkpoint_every: 8,
        ..Default::default()
    }
}

fn durable_file(cap: usize) -> Solution2 {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(cap);
    let wal = DurableStore::new(durable_cfg(cap), &MetricsHandle::new());
    let locks = Arc::new(LockManager::default());
    let core =
        FileCore::with_durable_metrics(cfg, wal, locks, hash_key, &MetricsHandle::new()).unwrap();
    Solution2::from_core(core)
}

fn recover_file(
    cap: usize,
    disk: &DiskHandle,
    plan: Option<CrashPlan>,
) -> Result<Solution2, Error> {
    let cfg = HashFileConfig::tiny().with_bucket_capacity(cap);
    let dcfg = DurableConfig {
        plan,
        ..durable_cfg(cap)
    };
    let locks = Arc::new(LockManager::default());
    let (core, _report) =
        FileCore::recover_durable_metrics(cfg, disk, dcfg, locks, hash_key, &MetricsHandle::new())?;
    Ok(Solution2::from_core(core))
}

fn assert_matches_model(file: &Solution2, model: &BTreeMap<u64, u64>) {
    assert_eq!(file.core().len(), model.len());
    for k in 0..64u64 {
        assert_eq!(
            file.find(Key(k)).unwrap().map(|v| v.0),
            model.get(&k).copied(),
            "key {k}"
        );
    }
    check_concurrent_file(file.core()).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// power-off → recover ≡ model; and crash-during-recovery →
    /// recover again ≡ the same model (replay idempotence).
    #[test]
    fn recovery_is_lossless_and_idempotent(
        cap in 2usize..5,
        ops in proptest::collection::vec(arb_op(), 1..120),
        crash_point in 1u64..24,
    ) {
        let file = durable_file(cap);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    file.insert(Key(k), Value(v)).unwrap();
                    model.entry(k).or_insert(v);
                }
                Op::Delete(k) => {
                    file.delete(Key(k)).unwrap();
                    model.remove(&k);
                }
            }
        }
        file.flush_gc();
        let wal = file.core().wal().unwrap();
        let disk = wal.disk();
        wal.power_off(); // every op above was acked before the cut
        drop(file);

        // First recovery: the whole acked state is there.
        let r1 = recover_file(cap, &disk, None).unwrap();
        assert_matches_model(&r1, &model);
        r1.core().wal().unwrap().power_off();
        drop(r1);

        // Crash *during* recovery (the armed plan fires while recovery
        // persists its result), then recover again: same state. Points
        // beyond recovery's reach mean the armed run completed — fine.
        match recover_file(cap, &disk, Some(CrashPlan::armed(7, crash_point))) {
            Ok(r) => {
                assert_matches_model(&r, &model);
                r.core().wal().unwrap().power_off();
            }
            Err(Error::PowerLoss) => {
                let r2 = recover_file(cap, &disk, None).unwrap();
                assert_matches_model(&r2, &model);
                r2.core().wal().unwrap().power_off();
            }
            Err(e) => panic!("unexpected recovery error: {e}"),
        }
    }
}
