//! The concurrent directory vs. a plain-vector model: the atomic-entry
//! `Directory` (with its Release/Acquire publication dance) must compute
//! exactly the same entry table as a naive single-threaded directory
//! under any legal sequence of doublings and one-side updates.

use ceh_core::Directory;
use ceh_types::{mask, partner_bit, PageId, Pseudokey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The obvious model.
struct ModelDir {
    entries: Vec<u64>,
    depth: u32,
}

impl ModelDir {
    fn new(root: u64) -> Self {
        ModelDir {
            entries: vec![root],
            depth: 0,
        }
    }

    fn double(&mut self) {
        let copy = self.entries.clone();
        self.entries.extend(copy);
        self.depth += 1;
    }

    fn update_one_side(&mut self, page: u64, d: u32, pk: u64) {
        let pattern = (pk & mask(d - 1)) | partner_bit(d);
        let step = 1usize << d;
        let mut i = pattern as usize;
        while i < self.entries.len() {
            self.entries[i] = page;
            i += step;
        }
    }
}

/// A legal operation script: splits of simulated buckets, tracked just
/// enough to produce valid (page, localdepth, pseudokey) update triples.
fn run_script(seed: u64, steps: usize) -> (Vec<PageId>, Vec<u64>, u32) {
    #[derive(Clone)]
    struct B {
        pattern: u64,
        ld: u32,
        page: u64,
    }
    let dir = Directory::new(10, PageId(0)).unwrap();
    let mut model = ModelDir::new(0);
    let mut buckets = vec![B {
        pattern: 0,
        ld: 0,
        page: 0,
    }];
    let mut next_page = 1u64;
    let mut rng = StdRng::seed_from_u64(seed);

    for _ in 0..steps {
        let i = rng.random_range(0..buckets.len());
        if buckets[i].ld >= 9 {
            continue;
        }
        let old = buckets[i].clone();
        // Double first if the bucket is at full depth (the Figure 6/8
        // order).
        if old.ld == model.depth {
            dir.double().unwrap();
            model.double();
        }
        let d = old.ld + 1;
        let new_page = next_page;
        next_page += 1;
        // Any pseudokey belonging to the split bucket works; pick a
        // random extension of its pattern.
        let pk = old.pattern | (rng.random::<u64>() << d);
        dir.update_one_side(PageId(new_page), d, Pseudokey(pk));
        model.update_one_side(new_page, d, pk);
        buckets[i] = B {
            pattern: old.pattern,
            ld: d,
            page: old.page,
        };
        buckets.push(B {
            pattern: old.pattern | partner_bit(d),
            ld: d,
            page: new_page,
        });
    }
    (dir.entries_snapshot(), model.entries, model.depth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn atomic_directory_matches_model(seed in any::<u64>(), steps in 1usize..60) {
        let (atomic, model, depth) = run_script(seed, steps);
        prop_assert_eq!(atomic.len(), 1usize << depth);
        let model_pages: Vec<PageId> = model.into_iter().map(PageId).collect();
        prop_assert_eq!(atomic, model_pages);
    }
}

/// Readers racing doublings and updates observe only values that some
/// prefix of the writer's script could have produced (publication via
/// depth is atomic): concretely, every looked-up page must be one the
/// writer has already installed for that suffix at some depth.
#[test]
fn racing_readers_see_only_installed_pages() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let dir = Arc::new(Directory::new(12, PageId(0)).unwrap());
    let max_installed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..3)
        .map(|_| {
            let dir = Arc::clone(&dir);
            let max_installed = Arc::clone(&max_installed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checks = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (_, page) = dir.lookup(Pseudokey(0xF0F0_F0F0));
                    assert!(!page.is_null(), "unpublished entry leaked");
                    assert!(
                        page.0 <= max_installed.load(Ordering::Relaxed),
                        "page {page} was never installed"
                    );
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    // Writer: split the bucket covering the probe suffix repeatedly.
    let mut pattern = 0u64;
    for d in 1..=12u32 {
        if d - 1 == dir.depth() {
            dir.double().unwrap();
        }
        // Install BEFORE updating the directory, like putbucket-then-
        // updatedirectory does.
        max_installed.fetch_add(1, Ordering::Relaxed);
        let page = PageId(d as u64);
        dir.update_one_side(page, d, Pseudokey(0xF0F0_F0F0));
        pattern |= 0xF0F0_F0F0 & partner_bit(d);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let _ = pattern;
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
}
