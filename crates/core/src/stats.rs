//! Per-operation counters for the concurrent files.
//!
//! These are the observables the evaluation harness reports: how often
//! searches landed on the wrong bucket (E4), how long the recovery chains
//! were, how many structure modifications of each kind happened, and how
//! often optimistic updaters had to retry.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! op_stats {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Thread-safe operation counters.
        #[derive(Debug, Default)]
        pub struct OpStats {
            $($(#[$doc])* $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`OpStats`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct OpStatsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl OpStats {
            /// New zeroed counters.
            pub fn new() -> Self { Self::default() }

            $(
                pub(crate) fn $name(&self) {
                    self.$name.fetch_add(1, Ordering::Relaxed);
                }
            )+

            /// Copy out the current values.
            pub fn snapshot(&self) -> OpStatsSnapshot {
                OpStatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Zero all counters.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl OpStatsSnapshot {
            /// Difference (self - earlier) for interval measurement.
            pub fn since(&self, e: &OpStatsSnapshot) -> OpStatsSnapshot {
                OpStatsSnapshot {
                    $($name: self.$name - e.$name,)+
                }
            }
        }
    };
}

op_stats! {
    /// Completed find operations that located the key.
    finds_hit,
    /// Completed find operations that did not.
    finds_miss,
    /// Inserts that added a key.
    inserts,
    /// Inserts that found the key already present.
    inserts_duplicate,
    /// Deletes that removed a key.
    deletes,
    /// Deletes that found nothing to remove.
    deletes_miss,
    /// Operations that landed on the wrong bucket and recovered via
    /// `next` links (one count per operation, however long the chain).
    wrong_bucket_recoveries,
    /// Total `next`-link hops taken during recovery.
    chain_hops,
    /// Bucket splits performed.
    splits,
    /// Bucket merges performed.
    merges,
    /// Directory doublings.
    doublings,
    /// Directory halvings (cascaded halvings count once each).
    halvings,
    /// Insert attempts restarted after an unproductive split
    /// ("if (!done) insert (z)").
    insert_retries,
    /// Delete attempts restarted by a Solution-2 validation failure
    /// (label A and friends in Figure 9).
    delete_retries,
    /// Garbage-collection phases run (Solution 2).
    gc_phases,
}

impl OpStatsSnapshot {
    /// Total completed operations.
    pub fn total_ops(&self) -> u64 {
        self.finds_hit
            + self.finds_miss
            + self.inserts
            + self.inserts_duplicate
            + self.deletes
            + self.deletes_miss
    }

    /// Mean chain length among recoveries (0 when none).
    pub fn mean_recovery_hops(&self) -> f64 {
        if self.wrong_bucket_recoveries == 0 {
            0.0
        } else {
            self.chain_hops as f64 / self.wrong_bucket_recoveries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshot() {
        let s = OpStats::new();
        s.finds_hit();
        s.finds_hit();
        s.inserts();
        s.wrong_bucket_recoveries();
        s.chain_hops();
        s.chain_hops();
        s.chain_hops();
        let snap = s.snapshot();
        assert_eq!(snap.finds_hit, 2);
        assert_eq!(snap.total_ops(), 3);
        assert!((snap.mean_recovery_hops() - 3.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.snapshot(), OpStatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = OpStats::new();
        s.inserts();
        let a = s.snapshot();
        s.inserts();
        s.splits();
        let d = s.snapshot().since(&a);
        assert_eq!(d.inserts, 1);
        assert_eq!(d.splits, 1);
    }
}
