//! Per-operation counters for the concurrent files, recorded through
//! the unified [`ceh_obs`] metrics plane.
//!
//! These are the observables the evaluation harness reports: how often
//! searches landed on the wrong bucket (E4), how long the recovery chains
//! were, how many structure modifications of each kind happened, and how
//! often optimistic updaters had to retry.
//!
//! Each counter is registered as `core.<name>` (`core.splits`,
//! `core.wrong_bucket_recoveries`, …) so a [`ceh_obs::RunReport`] over a
//! shared handle carries them alongside the `locks.`/`storage.` metrics
//! of the same run.

use std::sync::Arc;

use ceh_obs::{Counter, MetricsHandle};

macro_rules! op_stats {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Thread-safe operation counters.
        #[derive(Debug)]
        pub struct OpStats {
            $($(#[$doc])* $name: Arc<Counter>,)+
        }

        /// A point-in-time copy of [`OpStats`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct OpStatsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl Default for OpStats {
            fn default() -> Self { Self::new() }
        }

        impl OpStats {
            /// Counters in a fresh private registry.
            pub fn new() -> Self {
                Self::with_handle(&MetricsHandle::default())
            }

            /// Counters registered as `core.<name>` in `handle`'s
            /// registry.
            pub fn with_handle(handle: &MetricsHandle) -> Self {
                OpStats {
                    $($name: handle.counter(concat!("core.", stringify!($name))),)+
                }
            }

            $(
                pub(crate) fn $name(&self) {
                    self.$name.inc();
                }
            )+

            /// Copy out the current values.
            pub fn snapshot(&self) -> OpStatsSnapshot {
                OpStatsSnapshot {
                    $($name: self.$name.get(),)+
                }
            }

            /// Zero all counters.
            pub fn reset(&self) {
                $(self.$name.reset();)+
            }
        }

        impl OpStatsSnapshot {
            /// Difference (self - earlier) for interval measurement.
            pub fn since(&self, e: &OpStatsSnapshot) -> OpStatsSnapshot {
                OpStatsSnapshot {
                    $($name: self.$name - e.$name,)+
                }
            }
        }
    };
}

op_stats! {
    /// Completed find operations that located the key.
    finds_hit,
    /// Completed find operations that did not.
    finds_miss,
    /// Inserts that added a key.
    inserts,
    /// Inserts that found the key already present.
    inserts_duplicate,
    /// Deletes that removed a key.
    deletes,
    /// Deletes that found nothing to remove.
    deletes_miss,
    /// Operations that landed on the wrong bucket and recovered via
    /// `next` links (one count per operation, however long the chain).
    wrong_bucket_recoveries,
    /// Total `next`-link hops taken during recovery.
    chain_hops,
    /// Bucket splits performed.
    splits,
    /// Bucket merges performed.
    merges,
    /// Directory doublings.
    doublings,
    /// Directory halvings (cascaded halvings count once each).
    halvings,
    /// Insert attempts restarted after an unproductive split
    /// ("if (!done) insert (z)").
    insert_retries,
    /// Delete attempts restarted by a Solution-2 validation failure
    /// (label A and friends in Figure 9).
    delete_retries,
    /// Garbage-collection phases run (Solution 2).
    gc_phases,
}

impl OpStatsSnapshot {
    /// Total completed operations.
    pub fn total_ops(&self) -> u64 {
        self.finds_hit
            + self.finds_miss
            + self.inserts
            + self.inserts_duplicate
            + self.deletes
            + self.deletes_miss
    }

    /// Mean chain length among recoveries (0 when none).
    pub fn mean_recovery_hops(&self) -> f64 {
        if self.wrong_bucket_recoveries == 0 {
            0.0
        } else {
            self.chain_hops as f64 / self.wrong_bucket_recoveries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_snapshot() {
        let s = OpStats::new();
        s.finds_hit();
        s.finds_hit();
        s.inserts();
        s.wrong_bucket_recoveries();
        s.chain_hops();
        s.chain_hops();
        s.chain_hops();
        let snap = s.snapshot();
        assert_eq!(snap.finds_hit, 2);
        assert_eq!(snap.total_ops(), 3);
        assert!((snap.mean_recovery_hops() - 3.0).abs() < 1e-12);
        s.reset();
        assert_eq!(s.snapshot(), OpStatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = OpStats::new();
        s.inserts();
        let a = s.snapshot();
        s.inserts();
        s.splits();
        let d = s.snapshot().since(&a);
        assert_eq!(d.inserts, 1);
        assert_eq!(d.splits, 1);
    }

    #[test]
    fn shared_handle_sees_core_metrics() {
        let handle = MetricsHandle::new();
        let s = OpStats::with_handle(&handle);
        s.splits();
        s.finds_hit();
        let m = handle.snapshot();
        assert_eq!(m.counter("core.splits"), 1);
        assert_eq!(m.counter("core.finds_hit"), 1);
        assert_eq!(m.counter("core.merges"), 0);
    }
}
