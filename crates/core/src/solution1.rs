//! **Solution 1** — the top-down locking protocol of §2.2, Figures 5–7.
//!
//! "A lock is placed on each level of the structure (in this case there
//! are only two levels, the directory then a bucket) and held until it is
//! found to be no longer needed."
//!
//! * `find` (Figure 5): ρ on the directory, then hand-over-hand ρ along
//!   buckets; recovery from concurrent splits via `next`.
//! * `insert` (Figure 6): α on the directory held for the whole
//!   operation; readers proceed (ρ/α compatible), other updaters wait.
//! * `delete` (Figure 7): ξ on the directory for the whole operation —
//!   deleters exclude everyone, because a reader racing a merge could
//!   chase a pointer into a deallocated bucket.
//!
//! Updaters never see a wrong bucket here: their directory lock excludes
//! every process that could restructure underneath them.

use ceh_locks::LockId;
use ceh_types::bits::{mask, partner_bit, partner_commonbits};
use ceh_types::{DeleteOutcome, HashFileConfig, InsertOutcome, Key, ManagerId, Result, Value};

use crate::common::{try_or_release, FileCore};
use crate::traits::ConcurrentHashFile;

/// Tuning knobs for [`Solution1`].
#[derive(Debug, Clone, Default)]
pub struct Solution1Options {
    /// Run `find` in the "more pessimistic approach" §2.2 mentions and
    /// rejects: hold the directory ρ-lock until the right bucket is
    /// locked. The A1 ablation measures what that costs.
    pub pessimistic_find: bool,
}

/// The Solution-1 concurrent extendible hash file.
///
/// ```
/// use ceh_core::{ConcurrentHashFile, Solution1};
/// use ceh_types::{DeleteOutcome, HashFileConfig, Key, Value};
///
/// let file = Solution1::new(HashFileConfig::tiny())?;
/// file.insert(Key(7), Value(70))?;
/// assert_eq!(file.find(Key(7))?, Some(Value(70)));
/// assert_eq!(file.delete(Key(7))?, DeleteOutcome::Deleted);
/// assert!(file.is_empty());
/// # Ok::<(), ceh_types::Error>(())
/// ```
pub struct Solution1 {
    core: FileCore,
    opts: Solution1Options,
}

impl std::fmt::Debug for Solution1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solution1")
            .field("core", &self.core)
            .finish()
    }
}

impl Solution1 {
    /// Create a file with default options.
    pub fn new(cfg: HashFileConfig) -> Result<Self> {
        Ok(Solution1 {
            core: FileCore::new(cfg)?,
            opts: Solution1Options::default(),
        })
    }

    /// Create a file with explicit options.
    pub fn with_options(cfg: HashFileConfig, opts: Solution1Options) -> Result<Self> {
        Ok(Solution1 {
            core: FileCore::new(cfg)?,
            opts,
        })
    }

    /// Create a file over a prebuilt core (tests inject substrates).
    pub fn from_core(core: FileCore) -> Self {
        Solution1 {
            core,
            opts: Solution1Options::default(),
        }
    }

    /// The shared core (stats, store, directory — for tests and benches).
    pub fn core(&self) -> &FileCore {
        &self.core
    }

    /// Figure 6, the insertion algorithm.
    fn insert_impl(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        let core = &self.core;
        let _op = core.op_span("insert", key.0);
        let cap = core.config().bucket_capacity;
        let pk = (core.hasher())(key);
        let mut buf = core.new_buf();
        // "if (!done) insert (z)" — the recursion is this loop.
        loop {
            let owner = core.locks().new_owner();
            core.alpha_lock(owner, LockId::Directory);
            let (_depth, oldpage) = core.dir().lookup(pk);
            core.alpha_lock(owner, LockId::Page(oldpage));
            let current = try_or_release!(core, owner, core.getbucket(oldpage, &mut buf));
            debug_assert!(
                current.owns(pk),
                "a Solution-1 updater can never have the wrong bucket: its α on the \
                 directory excludes every restructurer"
            );

            if current.search(key).is_some() {
                /* z is already there */
                core.un_alpha_lock(owner, LockId::Directory);
                core.un_alpha_lock(owner, LockId::Page(oldpage));
                core.stats().inserts_duplicate();
                return Ok(InsertOutcome::AlreadyPresent);
            }

            if current.count() != cap {
                /* current bucket not full */
                core.un_alpha_lock(owner, LockId::Directory);
                let mut current = current;
                current.add(ceh_types::Record { key, value });
                try_or_release!(core, owner, core.putbucket(oldpage, &current, &mut buf));
                core.un_alpha_lock(owner, LockId::Page(oldpage));
                core.len_inc();
                core.stats().inserts();
                return Ok(InsertOutcome::Inserted);
            }

            /* current is full */
            let split_span = core.trace_begin("split", oldpage.0, 0);
            if current.localdepth == core.dir().depth() {
                try_or_release!(core, owner, core.dir().double());
                core.stats().doublings();
            }
            // The split's page effects are one logged transaction: if
            // power dies before the commit record is durable, recovery
            // sees either the whole split or none of it.
            let txn = try_or_release!(core, owner, core.begin_txn());
            let newpage = try_or_release!(core, owner, core.alloc_page());
            let (half1, half2, done) = current.split(
                key,
                value,
                cap,
                core.hasher(),
                oldpage,
                ManagerId::NONE,
                newpage,
                ManagerId::NONE,
            );
            // "The second half of the pair is written first in a newly
            // allocated disk page and then the old bucket is replaced by
            // the first half" — this order is what makes the split look
            // atomic to concurrent readers (§2.3).
            try_or_release!(core, owner, core.putbucket(newpage, &half2, &mut buf));
            try_or_release!(core, owner, core.putbucket(oldpage, &half1, &mut buf));
            try_or_release!(core, owner, txn.commit());
            core.un_alpha_lock(owner, LockId::Page(oldpage));
            core.dir().update_one_side(newpage, half1.localdepth, pk);
            if half1.localdepth == core.dir().depth() {
                // "Splitting a bucket of localdepth = depth-1 would add
                // two" (§2.2).
                core.dir().add_depthcount(2);
            }
            core.stats().splits();
            core.trace_end(split_span, "split", oldpage.0, newpage.0);
            core.un_alpha_lock(owner, LockId::Directory);
            if done {
                core.len_inc();
                core.stats().inserts();
                return Ok(InsertOutcome::Inserted);
            }
            core.stats().insert_retries();
        }
    }

    /// Figure 7, the deletion algorithm.
    fn delete_impl(&self, key: Key) -> Result<DeleteOutcome> {
        let core = &self.core;
        let _op = core.op_span("delete", key.0);
        let threshold = core.config().merge_threshold;
        let cap = core.config().bucket_capacity;
        let pk = (core.hasher())(key);
        let mut buf = core.new_buf();
        let owner = core.locks().new_owner();

        core.xi_lock(owner, LockId::Directory);
        let depth = core.dir().depth();
        let selectedbits = pk.low_bits(depth);
        let oldpage = core.dir().index(selectedbits);
        core.xi_lock(owner, LockId::Page(oldpage));
        let mut current = try_or_release!(core, owner, core.getbucket(oldpage, &mut buf));
        debug_assert!(
            current.owns(pk),
            "ξ on the directory: no wrong buckets possible"
        );

        // DEVIATION: check presence before considering a merge. Figure 7's
        // merge path never searches for z; at merge_threshold 0 the lone
        // record in a too-empty bucket is silently assumed to be z, and a
        // delete of an absent key would discard an innocent record. (The
        // Figure 9 version of the same code adds exactly this check.)
        if current.search(key).is_none() {
            core.un_xi_lock(owner, LockId::Directory);
            core.un_xi_lock(owner, LockId::Page(oldpage));
            core.stats().deletes_miss();
            return Ok(DeleteOutcome::NotFound);
        }

        let too_empty = current.count() <= threshold + 1 && current.localdepth > 1;
        if !too_empty {
            /* current not too empty */
            core.un_xi_lock(owner, LockId::Directory);
            current.remove(key);
            try_or_release!(core, owner, core.putbucket(oldpage, &current, &mut buf));
            core.un_xi_lock(owner, LockId::Page(oldpage));
            core.len_dec();
            core.stats().deletes();
            return Ok(DeleteOutcome::Deleted);
        }

        // Merge attempt. Identify the partner with respect to localdepth.
        let m = partner_bit(current.localdepth);
        let (brother, newpage, merged_page, garbage_page) = if pk.0 & m != m {
            /* z goes in first of pair: the partner follows via next */
            let newpage = current.next;
            if newpage.is_null() {
                // Defensive: a "0" bucket of localdepth ≥ 2 always has a
                // next under the protocols; treat a missing one as
                // unmergeable rather than corrupting the chain.
                return self.finish_unmergeable(owner, key, oldpage, current, buf);
            }
            core.xi_lock(owner, LockId::Page(newpage));
            let brother = try_or_release!(core, owner, core.getbucket(newpage, &mut buf));
            (brother, newpage, oldpage, newpage)
        } else {
            /* z goes in second of pair: the "0" partner via the directory */
            let newpage = core.dir().index(selectedbits & !m);
            // Lock in next-link order to avoid deadlock with readers
            // "following next links from C to B" (§2.2): release B,
            // request C then B.
            core.un_xi_lock(owner, LockId::Page(oldpage));
            core.xi_lock(owner, LockId::Page(newpage));
            core.xi_lock(owner, LockId::Page(oldpage));
            let brother = try_or_release!(core, owner, core.getbucket(newpage, &mut buf));
            // No re-validation needed, unlike Figure 9: our ξ on the
            // directory never left, so nothing can have changed while
            // oldpage was unlocked (readers don't write).
            (brother, newpage, newpage, oldpage)
        };

        let mergeable = current.localdepth == brother.localdepth
            && current.count() - 1 + brother.count() <= cap;
        if !mergeable {
            /* not possible to merge these two */
            core.un_xi_lock(owner, LockId::Page(newpage));
            return self.finish_unmergeable(owner, key, oldpage, current, buf);
        }
        debug_assert_eq!(
            brother.commonbits,
            partner_commonbits(current.commonbits, current.localdepth),
            "next/directory led somewhere other than the partner"
        );

        /* mergeable */
        let merge_span = core.trace_begin("merge", oldpage.0, 0);
        let old_ld = brother.localdepth;
        if old_ld == depth {
            // "Merging two buckets of localdepth = depth would subtract
            // two" (§2.2).
            core.dir().add_depthcount(-2);
        }
        let mut merged = brother;
        merged.localdepth -= 1;
        merged.commonbits &= mask(merged.localdepth);
        if garbage_page == oldpage {
            // z's bucket is the "1" partner: unlink it from the chain.
            merged.next = current.next;
            merged.next_mgr = current.next_mgr;
        }
        // Move the survivors of z's bucket across (none at the paper's
        // merge_threshold = 0).
        current.remove(key);
        merged.records.extend(current.records.iter().copied());
        merged.version = merged.version.max(current.version) + 1;
        // Merge = one logged transaction: the survivor's rewrite and the
        // garbage page's deallocation land atomically or not at all.
        let txn = try_or_release!(core, owner, core.begin_txn());
        try_or_release!(core, owner, core.putbucket(merged_page, &merged, &mut buf));
        if core.dir().depthcount() == 0 {
            core.dir().halve();
            core.stats().halvings();
        } else {
            core.dir().update_one_side(merged_page, old_ld, pk);
        }
        try_or_release!(core, owner, core.dealloc_page(garbage_page));
        try_or_release!(core, owner, txn.commit());
        core.stats().merges();
        core.trace_end(merge_span, "merge", merged_page.0, garbage_page.0);
        core.un_xi_lock(owner, LockId::Page(newpage));
        core.un_xi_lock(owner, LockId::Page(oldpage));
        core.un_xi_lock(owner, LockId::Directory);
        core.len_dec();
        core.stats().deletes();
        Ok(DeleteOutcome::Deleted)
    }

    /// Shared tail: remove the key without merging and release everything
    /// (the "not possible to merge these two" path of Figure 7).
    fn finish_unmergeable(
        &self,
        owner: ceh_locks::OwnerId,
        key: Key,
        oldpage: ceh_types::PageId,
        mut current: ceh_types::bucket::Bucket,
        mut buf: ceh_storage::PageBuf,
    ) -> Result<DeleteOutcome> {
        let core = &self.core;
        let removed = current.remove(key);
        debug_assert!(removed, "presence was checked under ξ");
        try_or_release!(core, owner, core.putbucket(oldpage, &current, &mut buf));
        core.un_xi_lock(owner, LockId::Page(oldpage));
        core.un_xi_lock(owner, LockId::Directory);
        core.len_dec();
        core.stats().deletes();
        Ok(DeleteOutcome::Deleted)
    }
}

impl ConcurrentHashFile for Solution1 {
    fn find(&self, key: Key) -> Result<Option<Value>> {
        let t = self.core.hist_invoke(ceh_obs::HistKind::Find, key, 0);
        let r = self.core.find_impl(key, self.opts.pessimistic_find);
        self.core.hist_ret(t, crate::traits::hist_find_result(&r));
        r
    }

    fn insert(&self, key: Key, value: Value) -> Result<InsertOutcome> {
        let t = self
            .core
            .hist_invoke(ceh_obs::HistKind::Insert, key, value.0);
        let r = self.insert_impl(key, value);
        self.core.hist_ret(t, crate::traits::hist_insert_result(&r));
        r
    }

    fn delete(&self, key: Key) -> Result<DeleteOutcome> {
        let t = self.core.hist_invoke(ceh_obs::HistKind::Delete, key, 0);
        let r = self.delete_impl(key);
        self.core.hist_ret(t, crate::traits::hist_delete_result(&r));
        r
    }

    fn len(&self) -> usize {
        self.core.len()
    }

    fn name(&self) -> &'static str {
        if self.opts.pessimistic_find {
            "solution1-pessimistic"
        } else {
            "solution1"
        }
    }

    fn set_io_latency_ns(&self, ns: u64) {
        self.core.store().set_io_latency_ns(ns);
    }

    fn metrics(&self) -> ceh_obs::MetricsHandle {
        self.core.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::check_concurrent_file;
    use ceh_types::Error;

    fn file() -> Solution1 {
        Solution1::new(HashFileConfig::tiny()).unwrap()
    }

    #[test]
    fn single_thread_crud() {
        let f = file();
        assert_eq!(
            f.insert(Key(1), Value(10)).unwrap(),
            InsertOutcome::Inserted
        );
        assert_eq!(
            f.insert(Key(1), Value(20)).unwrap(),
            InsertOutcome::AlreadyPresent
        );
        assert_eq!(f.find(Key(1)).unwrap(), Some(Value(10)));
        assert_eq!(f.delete(Key(1)).unwrap(), DeleteOutcome::Deleted);
        assert_eq!(f.delete(Key(1)).unwrap(), DeleteOutcome::NotFound);
        assert_eq!(f.find(Key(1)).unwrap(), None);
        assert_eq!(f.core().locks().total_granted(), 0);
    }

    #[test]
    fn grow_and_shrink_preserves_structure() {
        let f = file();
        for k in 0..300u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        check_concurrent_file(f.core()).unwrap();
        assert!(f.core().dir().depth() >= 5);
        for k in 0..300u64 {
            assert_eq!(f.find(Key(k)).unwrap(), Some(Value(k)), "key {k}");
        }
        for k in 0..300u64 {
            assert_eq!(f.delete(Key(k)).unwrap(), DeleteOutcome::Deleted, "key {k}");
        }
        assert!(f.is_empty());
        check_concurrent_file(f.core()).unwrap();
        assert_eq!(f.core().locks().total_granted(), 0);
    }

    #[test]
    fn stats_track_splits_and_merges() {
        let f = file();
        for k in 0..50u64 {
            f.insert(Key(k), Value(k)).unwrap();
        }
        for k in 0..50u64 {
            f.delete(Key(k)).unwrap();
        }
        let s = f.core().stats().snapshot();
        assert!(s.splits > 0);
        assert!(s.merges > 0);
        assert!(s.doublings > 0);
        assert!(s.halvings > 0);
        assert_eq!(s.inserts, 50);
        assert_eq!(s.deletes, 50);
    }

    #[test]
    fn directory_full_releases_locks() {
        let cfg = HashFileConfig::tiny()
            .with_bucket_capacity(1)
            .with_max_depth(2);
        let f = Solution1::new(cfg).unwrap();
        let mut got_err = false;
        for k in 0..64u64 {
            match f.insert(Key(k), Value(k)) {
                Ok(_) => {}
                Err(Error::DirectoryFull { .. }) => {
                    got_err = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(got_err);
        assert_eq!(
            f.core().locks().total_granted(),
            0,
            "error path released all locks"
        );
        // The file keeps working after the failure.
        let present = (0..64u64)
            .filter(|&k| f.find(Key(k)).unwrap().is_some())
            .count();
        assert!(present > 0);
    }

    #[test]
    fn pessimistic_find_option_works() {
        let f = Solution1::with_options(
            HashFileConfig::tiny(),
            Solution1Options {
                pessimistic_find: true,
            },
        )
        .unwrap();
        for k in 0..100u64 {
            f.insert(Key(k), Value(k + 1)).unwrap();
        }
        for k in 0..100u64 {
            assert_eq!(f.find(Key(k)).unwrap(), Some(Value(k + 1)));
        }
        assert_eq!(f.name(), "solution1-pessimistic");
    }
}
