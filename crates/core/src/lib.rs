//! # ceh-core — concurrent extendible hashing (the paper's contribution)
//!
//! Two locking protocols for concurrent `find` / `insert` / `delete` on a
//! shared extendible hash file, transliterated from the paper's listings:
//!
//! * [`Solution1`] — §2.2, Figures 5–7. A *top-down* protocol: updaters
//!   hold their directory lock (α for inserts, ξ for deletes) for the
//!   whole operation, serializing updates against each other while ρ/α
//!   compatibility lets readers run under inserters. Buckets carry `next`
//!   links and `commonbits` so readers recover from concurrent splits.
//! * [`Solution2`] — §2.4, Figures 8–9. An *optimistic* protocol: updaters
//!   search like readers and α-lock the directory only when it will
//!   actually change. Merges leave a *tombstone* (bucket marked deleted,
//!   `next` pointing at the survivor) as a recovery path; tombstone
//!   deallocation and directory halving happen in a separate ξ-locked
//!   garbage-collection phase.
//! * [`GlobalLockFile`] — the naive baseline: one readers-writer lock over
//!   the sequential file. What every concurrency protocol is measured
//!   against.
//!
//! All three implement [`ConcurrentHashFile`], and all store buckets
//! through the same page codec on a [`ceh_storage::PageStore`], with
//! locking by [`ceh_locks::LockManager`]. Structural self-checks live in
//! [`invariants`], per-operation counters in [`OpStats`].
//!
//! ## Shape of the transliteration
//!
//! Each protocol function follows its figure step by step, with the
//! figure's lock calls as explicit `lock`/`unlock` pairs (the paper
//! releases locks in non-nested orders, so RAII guards would obscure the
//! correspondence). Comments quote the figures' own annotations — e.g.
//! `/* WRONG BUCKET */` — at the matching control-flow points. Deviations
//! from the listings (all small) are marked `DEVIATION:` with a
//! justification.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod common;
mod directory;
mod global_lock;
pub mod invariants;
mod solution1;
mod solution2;
mod stats;
mod traits;

pub use common::FileCore;
pub use directory::Directory;
pub use global_lock::GlobalLockFile;
pub use solution1::{Solution1, Solution1Options};
pub use solution2::{GcStrategy, Solution2, Solution2Options};
pub use stats::{OpStats, OpStatsSnapshot};
pub use traits::ConcurrentHashFile;
